//! Offline stand-in for `serde`.
//!
//! See `vendor/serde_derive/src/lib.rs` for the rationale. This stub keeps
//! the *names* the codebase imports — `serde::Serialize`, `serde::Deserialize`
//! as both traits and derive macros — so that `use serde::{Deserialize,
//! Serialize}` and `#[derive(Serialize, Deserialize)]` compile unchanged.
//! The traits are blanket-implemented markers; the derives expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
