//! Offline stand-in for `serde_derive`.
//!
//! The build environment for this repository has no access to crates.io, so
//! the real serde cannot be fetched. The codebase uses serde purely for
//! `#[derive(Serialize, Deserialize)]` annotations on report types — nothing
//! actually serializes through serde's data model (the one JSON emitter in
//! `spice-bench` writes JSON by hand). These derives therefore expand to
//! nothing: the marker traits in the sibling `serde` stub are blanket
//! implemented, so bounds keep working while the derive is a no-op.
//!
//! Swapping the real serde back in is a two-line `Cargo.toml` change once a
//! registry is reachable; no source edits are required.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
