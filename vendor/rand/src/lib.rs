//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! exact API surface the workspace uses — `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, `Rng::gen_range` over integer ranges and `Rng::gen_bool`
//! — backed by the public-domain xoshiro256++ generator seeded through
//! SplitMix64. Output differs from the real `StdRng` (which is ChaCha12),
//! but every consumer in this repository only needs *deterministic*
//! pseudo-randomness for reproducible workload drivers, which this supplies.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can serve as a `gen_range` argument: a half-open or inclusive
/// integer range.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 random bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_below(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i32, i64, u32, u64, usize);

/// Uniform value in `[0, span)` by rejection sampling (avoids modulo bias).
fn uniform_below(rng: &mut dyn RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span fits in u64 for every range this workspace uses (i64/usize spans).
    let span64 = u64::try_from(span).expect("range span exceeds u64");
    let zone = u64::MAX - (u64::MAX % span64);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return u128::from(v % span64);
        }
    }
}

/// Generators shipped with the crate.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-20..=20i64);
            assert!((-20..=20).contains(&v));
            let u = r.gen_range(0..17usize);
            assert!(u < 17);
            let w = r.gen_range(5..6i64);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
