//! The `spice-lint` binary: compiler-style diagnostics for workload IR.
//!
//! For every selected workload the tool builds the kernel, verifies the
//! untransformed program, reports the static dependence pre-screen for the
//! target loop, applies the Spice transformation at each requested thread
//! count, and runs structural verification plus the full speculation-safety
//! lint stack on the transformed program — rendering any diagnostic against
//! the offending function/block/instruction.
//!
//! ```text
//! cargo run -p spice-lint -- [--small] [--threads N,N] [bench ...]
//! ```
//!
//! Exit status: 0 when everything is clean, 1 when any verification or lint
//! fails, 2 on a usage error.

use spice_bench::experiments::all_workload_factories;
use spice_core::analysis::LoopAnalysis;
use spice_core::predictor::PredictorOptions;
use spice_core::transform::{SpiceOptions, SpiceTransform, TransformError};
use spice_ir::exec::ConflictPolicy;
use spice_ir::lint::lint_spice;
use spice_ir::verify::verify_program;
use spice_workloads::workload_load_options;

const USAGE: &str = "usage: spice-lint [--small] [--threads N,N] [bench ...]
  lints every workload (or just the named ones) pre- and post-transform
flags:
  --small        use the reduced-size workload configurations
  --threads N,N  thread counts to transform at (default 2,4)";

fn fail(msg: &str) -> ! {
    eprintln!("spice-lint: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn policy_name(p: ConflictPolicy) -> &'static str {
    match p {
        ConflictPolicy::Detect => "detect",
        ConflictPolicy::AssumeIndependent => "assume-independent",
    }
}

/// Lints one workload at one thread count; returns the number of
/// diagnostics printed.
fn lint_workload(
    name: &str,
    factory: &dyn Fn() -> Box<dyn spice_workloads::SpiceWorkload>,
    threads: usize,
) -> usize {
    let mut workload = factory();
    let built = workload.build();
    let options = workload_load_options(&*workload, &built);
    let mut diagnostics = 0usize;

    if let Err(errs) = verify_program(&built.program) {
        for e in &errs {
            eprint!("{}", e.render(&built.program));
        }
        println!(
            "{name}: pre-transform verify FAILED ({} errors)",
            errs.len()
        );
        return errs.len();
    }

    let analysis = match options.loop_header {
        Some(h) => LoopAnalysis::analyze(&built.program, built.kernel, h),
        None => LoopAnalysis::analyze_outermost(&built.program, built.kernel),
    };
    let analysis = match analysis {
        Ok(a) => a,
        Err(e) => {
            println!("{name}: loop analysis failed: {e}");
            return 1;
        }
    };
    let dep = &analysis.dependence;
    println!(
        "{name}: threads={threads} policy={} dependence={} \
         (stores={} loads={} pairs: {} disjoint / {} unknown / {} dependent{}) \
         recommends={}",
        policy_name(options.conflict_policy),
        dep.class,
        dep.stores,
        dep.loads,
        dep.disjoint_pairs,
        dep.unknown_pairs,
        dep.dependent_pairs,
        if dep.has_calls { ", has calls" } else { "" },
        policy_name(analysis.recommended_policy()),
    );

    let mut predictor = PredictorOptions::default();
    if predictor.initial_work_estimate.is_none() {
        predictor.initial_work_estimate = options.work_estimate;
    }
    let mut program = built.program.clone();
    let spice = SpiceTransform::new(SpiceOptions {
        threads,
        predictor,
        conflict_policy: options.conflict_policy,
    })
    .apply(&mut program, &analysis);
    let spice = match spice {
        Ok(s) => s,
        Err(TransformError::Lint(errs)) => {
            // The transform's own gate fired: the rewrite left `program` in
            // the state the lints rejected, so diagnostics render against it.
            for e in &errs {
                eprint!("{}", e.render(&program));
            }
            println!(
                "{name}: post-transform lint FAILED inside the transform ({} errors)",
                errs.len()
            );
            return errs.len();
        }
        Err(e) => {
            println!("{name}: transform failed: {e}");
            return 1;
        }
    };

    if let Err(errs) = verify_program(&program) {
        for e in &errs {
            eprint!("{}", e.render(&program));
        }
        diagnostics += errs.len();
    }
    if let Err(errs) = lint_spice(&program, &spice.protocol()) {
        for e in &errs {
            eprint!("{}", e.render(&program));
        }
        diagnostics += errs.len();
    }
    println!(
        "{name}: post-transform verify + {} speculation-safety lint checks: {}",
        if spice.conflict_detection {
            "conflict-detecting"
        } else {
            "detection-free"
        },
        if diagnostics == 0 { "ok" } else { "FAILED" },
    );
    diagnostics
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let small = match args.iter().position(|a| a == "--small") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    let threads: Vec<usize> = match args.iter().position(|a| a == "--threads") {
        Some(i) => {
            let Some(raw) = args.get(i + 1).cloned() else {
                fail("missing --threads value");
            };
            args.drain(i..=i + 1);
            raw.split(',')
                .map(|t| {
                    t.parse()
                        .unwrap_or_else(|_| fail(&format!("bad thread count {t:?}")))
                })
                .collect()
        }
        None => vec![2, 4],
    };
    if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
        fail(&format!("unknown flag {flag:?}"));
    }

    let factories = all_workload_factories(small);
    let selected: Vec<_> = if args.is_empty() {
        factories
    } else {
        for want in &args {
            if !factories.iter().any(|(n, _)| n == want) {
                let names: Vec<&str> = factories.iter().map(|(n, _)| *n).collect();
                fail(&format!(
                    "unknown benchmark {want:?} (have: {})",
                    names.join(", ")
                ));
            }
        }
        factories
            .into_iter()
            .filter(|(n, _)| args.iter().any(|w| w == n))
            .collect()
    };

    let mut diagnostics = 0usize;
    let mut runs = 0usize;
    for (name, factory) in &selected {
        for &t in &threads {
            diagnostics += lint_workload(name, factory.as_ref(), t);
            runs += 1;
        }
    }
    println!("spice-lint: {runs} workload/thread combinations, {diagnostics} diagnostics");
    if diagnostics > 0 {
        std::process::exit(1);
    }
}
