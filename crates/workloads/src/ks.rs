//! The `ks` workload: the inner loop of Kernighan–Lin graph partitioning
//! (`FindMaxGpAndSwap`), the paper's best-performing benchmark (98% hotness,
//! 157% speedup at 4 threads).
//!
//! The kernel scans the linked list of not-yet-swapped modules of one
//! partition and finds the module with the maximum swap gain with respect to
//! a fixed candidate module `a`: `gain = Da + Db − 2·cost(a, b)`. The gain
//! tracking is a MAX reduction with the module pointer as payload; the list
//! pointer is the one loop-carried live-in Spice must speculate.
//!
//! The driver mimics one Kernighan–Lin pass: after every invocation the
//! selected module is removed from the candidate list (it has been swapped)
//! and a few `D` values are updated; when the list runs low the pass ends
//! and the list is rebuilt to full size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spice_ir::builder::FunctionBuilder;
use spice_ir::interp::FlatMemory;
use spice_ir::{BinOp, Operand, Program};

use crate::arena::{ListMirror, RecordArena};
use crate::{BuiltKernel, SpiceWorkload};

const DVAL: i64 = 0;
const COST_TO_A: i64 = 1;
const NEXT: i64 = 2;
const RECORD_WORDS: i64 = 3;

/// Configuration of the ks workload.
#[derive(Debug, Clone)]
pub struct KsConfig {
    /// Modules per partition at the start of a pass.
    pub modules: usize,
    /// Number of kernel invocations to drive.
    pub invocations: usize,
    /// How many `D` values are refreshed between invocations.
    pub d_updates_per_invocation: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KsConfig {
    fn default() -> Self {
        KsConfig {
            modules: 500,
            invocations: 40,
            d_updates_per_invocation: 4,
            seed: 0x6b73,
        }
    }
}

/// The Kernighan–Lin `FindMaxGpAndSwap` inner-loop workload.
#[derive(Debug, Clone)]
pub struct KsWorkload {
    config: KsConfig,
    arena: Option<RecordArena>,
    list: ListMirror,
    out_addr: i64,
    d_a: i64,
    rng: StdRng,
}

impl KsWorkload {
    /// Creates the workload with the given configuration.
    #[must_use]
    pub fn new(config: KsConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        KsWorkload {
            config,
            arena: None,
            list: ListMirror::new(NEXT),
            out_addr: 0,
            d_a: 0,
            rng,
        }
    }

    fn capacity(&self) -> usize {
        self.config.modules + 4
    }

    fn arena(&self) -> &RecordArena {
        self.arena.as_ref().expect("build() must be called first")
    }

    fn args(&self) -> Vec<i64> {
        vec![self.list.head_addr(self.arena()), self.d_a, self.out_addr]
    }

    fn fill_list(&mut self, mem: &mut FlatMemory) {
        let n = self.config.modules;
        let mut specs = Vec::with_capacity(n);
        for _ in 0..n {
            specs.push((self.rng.gen_range(-500..=500), self.rng.gen_range(0..=64)));
        }
        let arena = self.arena.as_mut().expect("built");
        for (d, cost) in specs {
            let slot = arena.alloc().expect("capacity");
            arena.write(mem, slot, DVAL, d).expect("in bounds");
            arena.write(mem, slot, COST_TO_A, cost).expect("in bounds");
            self.list.insert_at(usize::MAX, slot);
        }
        self.list.relink(self.arena(), mem).expect("in bounds");
    }

    /// The maximum gain currently available on the list.
    #[must_use]
    pub fn reference_max_gain(&self, mem: &FlatMemory) -> i64 {
        let arena = self.arena();
        self.list
            .order
            .iter()
            .map(|&s| {
                let d = arena.read(mem, s, DVAL).expect("in bounds");
                let c = arena.read(mem, s, COST_TO_A).expect("in bounds");
                self.d_a + d - 2 * c
            })
            .max()
            .unwrap_or(i64::MIN)
    }
}

impl SpiceWorkload for KsWorkload {
    fn name(&self) -> &'static str {
        "ks"
    }

    fn description(&self) -> &'static str {
        "Kernighan-Lin graph partitioning"
    }

    fn loop_name(&self) -> &'static str {
        "FindMaxGpAndSwap (inner loop)"
    }

    fn paper_hotness(&self) -> f64 {
        0.98
    }

    fn conflict_policy(&self) -> spice_ir::exec::ConflictPolicy {
        // The gain scan is read-only inside the loop (its store sits in the
        // exit block, executed by the main thread after the merge), so
        // chunks carry no cross-chunk memory flow by construction.
        spice_ir::exec::ConflictPolicy::AssumeIndependent
    }

    fn build(&mut self) -> BuiltKernel {
        let mut program = Program::new();
        let arena_base = program.add_global(
            "ks.modules",
            RecordArena::words_needed(RECORD_WORDS, self.capacity()),
        );
        self.out_addr = program.add_global("ks.best_out", 1);
        let mut arena = RecordArena::new(arena_base, RECORD_WORDS, self.capacity());
        // Module records are heap-allocated during graph construction; their
        // list order does not match their allocation order.
        arena.scatter(self.config.seed);
        self.arena = Some(arena);

        // find_max_gp(head, d_a, out) -> max gain; *out = argmax module.
        let mut b = FunctionBuilder::new("find_max_gp_and_swap");
        let head = b.param();
        let d_a = b.param();
        let out = b.param();
        let pre = b.new_labeled_block("preheader");
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let exit = b.new_labeled_block("exit");
        let c = b.copy(head);
        let best = b.copy(i64::MIN);
        let best_mod = b.copy(0i64);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let d_b = b.load(c, DVAL);
        let cost = b.load(c, COST_TO_A);
        let partial = b.binop(BinOp::Add, d_a, d_b);
        let twice = b.binop(BinOp::Mul, cost, 2i64);
        let gain = b.binop(BinOp::Sub, partial, twice);
        let better = b.binop(BinOp::Gt, gain, best);
        let new_best = b.select(better, gain, best);
        b.copy_into(best, new_best);
        let new_mod = b.select(better, c, best_mod);
        b.copy_into(best_mod, new_mod);
        let next = b.load(c, NEXT);
        b.copy_into(c, next);
        b.br(header);
        b.switch_to(exit);
        b.store(best_mod, out, 0);
        b.ret(Some(Operand::Reg(best)));
        let kernel = program.add_func(b.finish());

        BuiltKernel {
            program,
            kernel,
            loop_header_hint: None,
        }
    }

    fn init(&mut self, mem: &mut FlatMemory) -> Vec<i64> {
        self.d_a = self.rng.gen_range(-200..=200);
        self.fill_list(mem);
        self.args()
    }

    fn next_invocation(&mut self, mem: &mut FlatMemory, invocation: usize) -> Option<Vec<i64>> {
        if invocation + 1 >= self.config.invocations {
            return None;
        }
        // The previous invocation's winner is swapped out of this partition.
        let chosen = mem.read(self.out_addr).expect("out cell in bounds");
        if let Some(slot) = self.arena().slot_of(chosen) {
            if let Some(pos) = self.list.position_of(slot) {
                let removed = self.list.remove_at(pos);
                self.arena.as_mut().expect("built").release(removed);
            }
        }
        // Swapping changes some D values of the remaining modules.
        for _ in 0..self.config.d_updates_per_invocation {
            if self.list.is_empty() {
                break;
            }
            let idx = self.rng.gen_range(0..self.list.len());
            let slot = self.list.order[idx];
            let delta: i64 = self.rng.gen_range(-40..=40);
            let old = self.arena().read(mem, slot, DVAL).expect("in bounds");
            self.arena()
                .write(mem, slot, DVAL, old + delta)
                .expect("in bounds");
        }
        // A new candidate module `a` is considered each step.
        self.d_a = self.rng.gen_range(-200..=200);
        // End of pass: rebuild the partition list.
        if self.list.len() < self.config.modules / 2 {
            let slots: Vec<usize> = self.list.order.clone();
            let arena = self.arena.as_mut().expect("built");
            for s in slots {
                arena.release(s);
            }
            self.list = ListMirror::new(NEXT);
            self.fill_list(mem);
        } else {
            self.list.relink(self.arena(), mem).expect("in bounds");
        }
        Some(self.args())
    }

    fn expected_result(&self, mem: &FlatMemory) -> Option<i64> {
        Some(self.reference_max_gain(mem))
    }

    fn expected_iterations(&self) -> u64 {
        self.list.len().max(1) as u64
    }

    fn invocations(&self) -> usize {
        self.config.invocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::interp::run_function;

    #[test]
    fn sequential_kernel_matches_reference_across_invocations() {
        let mut wl = KsWorkload::new(KsConfig {
            modules: 60,
            invocations: 10,
            d_updates_per_invocation: 3,
            seed: 11,
        });
        let built = wl.build();
        let mut mem = FlatMemory::for_program(&built.program, 64 * 1024);
        let mut args = wl.init(&mut mem);
        for inv in 0.. {
            let expected = wl.expected_result(&mem).unwrap();
            let out = run_function(&built.program, built.kernel, &args, &mut mem).unwrap();
            assert_eq!(out.return_value, Some(expected), "invocation {inv}");
            match wl.next_invocation(&mut mem, inv) {
                Some(a) => args = a,
                None => break,
            }
        }
    }

    #[test]
    fn pass_rebuilds_list_when_it_runs_low() {
        let mut wl = KsWorkload::new(KsConfig {
            modules: 8,
            invocations: 30,
            d_updates_per_invocation: 1,
            seed: 3,
        });
        let built = wl.build();
        let mut mem = FlatMemory::for_program(&built.program, 16 * 1024);
        let mut args = wl.init(&mut mem);
        let mut min_len = usize::MAX;
        let mut rebuilt = false;
        for inv in 0..20 {
            run_function(&built.program, built.kernel, &args, &mut mem).unwrap();
            match wl.next_invocation(&mut mem, inv) {
                Some(a) => args = a,
                None => break,
            }
            min_len = min_len.min(wl.list.len());
            if wl.list.len() == 8 && inv > 0 {
                rebuilt = true;
            }
        }
        assert!(min_len >= 4, "list never drops below half");
        assert!(rebuilt, "pass never rebuilt the list");
        assert_eq!(wl.paper_hotness(), 0.98);
    }
}
