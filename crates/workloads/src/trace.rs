//! Recorded-behaviour traces and their replay as first-class workloads.
//!
//! A [`WorkloadTrace`] is the portable record of what a loop *did*: per
//! invocation, the ordered sequence of live-in tuples its profile hook
//! observed (the paper's §6 signal), plus optional fuzzer-injected forward
//! stores. Three consumers share the type:
//!
//! * the **recorder** (`spice-profiler::record_workload_trace`) fills one
//!   from an instrumented sequential run of a real driver;
//! * the **replay workload** ([`TraceReplayWorkload`]) turns any trace back
//!   into a runnable [`SpiceWorkload`] — a linked-list walk whose node
//!   addresses reproduce the recorded cross-invocation live-in overlap, so
//!   profiling the replay measures (approximately) the predictability the
//!   original run exhibited;
//! * the **fuzzer** ([`fuzz_trace`]) derives seeded mutants — allocation
//!   churn, re-linked traversal order, spliced forward writes — making any
//!   recording an unbounded scenario generator for the conflict subsystem.
//!
//! ## Replay mapping
//!
//! Each distinct `(live-in tuple, occurrence-within-invocation)` pair is
//! assigned one arena slot, in first-appearance order over the whole trace.
//! The mapping is injective and stable, so a tuple that repeats across
//! consecutive invocations revisits the *same address*, and a fresh tuple
//! (allocation churn in the original program) lands on a *new address* —
//! exactly the signal the §6 analyzer hashes. Two small distortions are
//! inherent and documented in DESIGN.md: set-membership of duplicated
//! tuples, and the replay loop's own final header visit (key `[0]`).
//!
//! Serialization lives in `spice_bench::tracefile` (the workloads crate
//! stays JSON-free); this module owns the data model, validation, replay
//! and mutation semantics.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spice_ir::builder::FunctionBuilder;
use spice_ir::interp::FlatMemory;
use spice_ir::{BinOp, Operand, Program};

use crate::arena::RecordArena;
use crate::{BuiltKernel, SpiceWorkload};

const VALUE: i64 = 0;
const NEXT: i64 = 1;
const TARGET: i64 = 2;
const RECORD_WORDS: i64 = 3;

/// One recorded loop iteration: the live-in tuple the profile hook saw, and
/// (for fuzzed traces) an optional forward store.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceIteration {
    /// The recorded live-in tuple (never empty in a valid trace).
    pub key: Vec<i64>,
    /// Fuzzer-injected splice: store this node's value into the node
    /// `write` iterations *ahead* in the same invocation's walk. `None`
    /// for recorded (non-mutated) traces.
    pub write: Option<u32>,
}

/// One loop invocation: its iterations in traversal order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceInvocation {
    /// Iterations in the order the loop executed them.
    pub iterations: Vec<TraceIteration>,
}

/// A recorded (or fuzzed) workload behaviour trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadTrace {
    /// Name of the originating workload (artifact label, not an identity).
    pub name: String,
    /// Name of the recorded loop.
    pub loop_name: String,
    /// Profile-hook site id the keys were recorded from.
    pub site: u32,
    /// The recorded invocations.
    pub invocations: Vec<TraceInvocation>,
}

/// Why a trace is malformed. Every path is a typed error — corrupted trace
/// files must never panic downstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The trace records no invocations at all.
    NoInvocations,
    /// An iteration has an empty live-in tuple.
    EmptyKey {
        /// Invocation index.
        invocation: usize,
        /// Iteration index within the invocation.
        iteration: usize,
    },
    /// A splice write points at or past the end of its invocation.
    WriteOutOfRange {
        /// Invocation index.
        invocation: usize,
        /// Iteration index within the invocation.
        iteration: usize,
        /// The offending forward distance.
        write: u32,
    },
    /// The trace name is empty.
    EmptyName,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::NoInvocations => write!(f, "trace records no invocations"),
            TraceError::EmptyKey {
                invocation,
                iteration,
            } => write!(
                f,
                "invocation {invocation} iteration {iteration} has an empty live-in tuple"
            ),
            TraceError::WriteOutOfRange {
                invocation,
                iteration,
                write,
            } => write!(
                f,
                "invocation {invocation} iteration {iteration}: splice write +{write} \
                 points past the end of the invocation"
            ),
            TraceError::EmptyName => write!(f, "trace name is empty"),
        }
    }
}

impl std::error::Error for TraceError {}

impl WorkloadTrace {
    /// Checks the structural invariants the replay engine relies on.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.name.is_empty() {
            return Err(TraceError::EmptyName);
        }
        if self.invocations.is_empty() {
            return Err(TraceError::NoInvocations);
        }
        for (i, inv) in self.invocations.iter().enumerate() {
            let len = inv.iterations.len();
            for (j, it) in inv.iterations.iter().enumerate() {
                if it.key.is_empty() {
                    return Err(TraceError::EmptyKey {
                        invocation: i,
                        iteration: j,
                    });
                }
                if let Some(w) = it.write {
                    if w == 0 || j + w as usize >= len {
                        return Err(TraceError::WriteOutOfRange {
                            invocation: i,
                            iteration: j,
                            write: w,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Total recorded iterations across all invocations.
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.invocations
            .iter()
            .map(|inv| inv.iterations.len() as u64)
            .sum()
    }

    /// True when any iteration carries a splice write (the replay kernel
    /// will store through node targets, so the conflict detector is needed).
    #[must_use]
    pub fn has_writes(&self) -> bool {
        self.invocations
            .iter()
            .any(|inv| inv.iterations.iter().any(|it| it.write.is_some()))
    }

    /// Content checksum (FNV-1a over every field, order-sensitive). Two
    /// traces with the same checksum stage identical replay scenarios.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        let mut h = Fnv::new();
        h.bytes(self.name.as_bytes());
        h.bytes(self.loop_name.as_bytes());
        h.word(i64::from(self.site));
        h.word(self.invocations.len() as i64);
        for inv in &self.invocations {
            h.word(inv.iterations.len() as i64);
            for it in &inv.iterations {
                h.word(it.key.len() as i64);
                for &k in &it.key {
                    h.word(k);
                }
                h.word(it.write.map_or(-1, i64::from));
            }
        }
        h.finish()
    }
}

/// Incremental FNV-1a content hash used for trace checksums and replay
/// payload derivation — hand-rolled, no external hashing dependency.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    /// Folds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Folds one 64-bit word (little-endian bytes).
    pub fn word(&mut self, w: i64) {
        self.bytes(&w.to_le_bytes());
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// Deterministic payload carried by the node replaying `(key, occurrence)`:
/// a positive value derived only from the pair, so replays of the same trace
/// stage bit-identical memory on every backend and host.
#[must_use]
pub fn replay_payload(key: &[i64], occurrence: u32) -> i64 {
    let mut h = Fnv::new();
    for &k in key {
        h.word(k);
    }
    h.word(i64::from(occurrence));
    (h.finish() % 99_991) as i64 + 1
}

/// Seeded mutation knobs for [`fuzz_trace`] — the three axes the conflict
/// subsystem cares about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzConfig {
    /// RNG seed; everything below is a pure function of `(base, config)`.
    pub seed: u64,
    /// Per-iteration probability of injecting a forward splice write
    /// (a genuine cross-chunk RAW under chunked execution).
    pub splice_rate: f64,
    /// Number of random traversal-order swaps applied per invocation
    /// (re-linking the walk without changing its node population).
    pub relink_depth: usize,
    /// Per-invocation probability of replacing every key with a fresh one
    /// (allocation churn: new addresses, predictability destroyed).
    pub churn_rate: f64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xF0_22,
            splice_rate: 0.15,
            relink_depth: 4,
            churn_rate: 0.25,
        }
    }
}

/// Derives a seeded mutant of `base`. The result is always a *valid* trace
/// (splices stay forward and in range); dependence-violating behaviour comes
/// from the splices themselves, not from malformed structure.
#[must_use]
pub fn fuzz_trace(base: &WorkloadTrace, config: &FuzzConfig) -> WorkloadTrace {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut churn_counter: i64 = 0x7F00_0000;
    let mut out = base.clone();
    out.name = format!("{}~fuzz{:#x}", base.name, config.seed);
    for inv in &mut out.invocations {
        // Allocation churn: the whole invocation visits fresh records.
        if rng.gen_bool(config.churn_rate) {
            for it in &mut inv.iterations {
                churn_counter += 1;
                it.key = vec![churn_counter];
            }
        }
        // Re-link: swap random pairs of the traversal order.
        let len = inv.iterations.len();
        if len >= 2 {
            for _ in 0..config.relink_depth {
                let a = rng.gen_range(0..len);
                let b = rng.gen_range(0..len);
                inv.iterations.swap(a, b);
            }
        }
        // Splice: inject forward writes (never out of range).
        for j in 0..len {
            let room = len - 1 - j;
            inv.iterations[j].write = if room > 0 && rng.gen_bool(config.splice_rate) {
                Some(rng.gen_range(1..=room.min(8)) as u32)
            } else {
                None
            };
        }
    }
    out
}

/// Replays a [`WorkloadTrace`] as a first-class [`SpiceWorkload`]: a 3-word
/// `(value, next, target)` list walk re-linked per invocation so that node
/// addresses reproduce the recorded live-in overlap (see module docs).
#[derive(Debug, Clone)]
pub struct TraceReplayWorkload {
    trace: WorkloadTrace,
    arena: Option<RecordArena>,
    /// Per invocation, iteration index → arena slot.
    slot_orders: Vec<Vec<usize>>,
    /// Per slot, the payload value its node carries.
    slot_values: Vec<i64>,
    capacity: usize,
    /// Invocation currently staged in memory.
    staged: usize,
}

impl TraceReplayWorkload {
    /// Builds the replay engine for a validated trace.
    ///
    /// # Errors
    ///
    /// Returns the trace's first structural violation; a replay workload is
    /// never constructed from a malformed trace.
    pub fn new(trace: WorkloadTrace) -> Result<Self, TraceError> {
        trace.validate()?;
        let mut slot_of: HashMap<(Vec<i64>, u32), usize> = HashMap::new();
        let mut slot_values: Vec<i64> = Vec::new();
        let mut slot_orders: Vec<Vec<usize>> = Vec::with_capacity(trace.invocations.len());
        for inv in &trace.invocations {
            let mut occurrence: HashMap<&[i64], u32> = HashMap::new();
            let mut order = Vec::with_capacity(inv.iterations.len());
            for it in &inv.iterations {
                let occ = occurrence.entry(it.key.as_slice()).or_insert(0);
                let slot = *slot_of.entry((it.key.clone(), *occ)).or_insert_with(|| {
                    slot_values.push(replay_payload(&it.key, *occ));
                    slot_values.len() - 1
                });
                *occ += 1;
                order.push(slot);
            }
            slot_orders.push(order);
        }
        let capacity = slot_values.len().max(1);
        Ok(TraceReplayWorkload {
            trace,
            arena: None,
            slot_orders,
            slot_values,
            capacity,
            staged: 0,
        })
    }

    /// The trace being replayed.
    #[must_use]
    pub fn trace(&self) -> &WorkloadTrace {
        &self.trace
    }

    /// Number of distinct arena slots the replay uses.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slot_values.len()
    }

    fn arena(&self) -> &RecordArena {
        self.arena.as_ref().expect("build() must be called first")
    }

    /// Stages invocation `inv` in memory: re-links the walk, restores every
    /// visited node's payload (earlier invocations' splices may have dirtied
    /// them) and aims the targets.
    fn stage(&mut self, mem: &mut FlatMemory, inv: usize) {
        self.staged = inv;
        let arena = self.arena.as_ref().expect("built");
        let order = &self.slot_orders[inv];
        let iterations = &self.trace.invocations[inv].iterations;
        for (j, &slot) in order.iter().enumerate() {
            let next = order.get(j + 1).map_or(0, |&s| arena.addr(s));
            arena.write(mem, slot, NEXT, next).expect("in bounds");
            arena
                .write(mem, slot, VALUE, self.slot_values[slot])
                .expect("in bounds");
            let target = iterations[j]
                .write
                .map_or(0, |w| arena.addr(order[j + w as usize]) + VALUE);
            arena.write(mem, slot, TARGET, target).expect("in bounds");
        }
    }

    fn args(&self) -> Vec<i64> {
        let head = self.slot_orders[self.staged]
            .first()
            .map_or(0, |&s| self.arena().addr(s));
        vec![head]
    }

    /// The replay's live-out memory: every slot's value word, in slot
    /// order — what the differential harness compares bit-for-bit across
    /// backends after the final invocation.
    #[must_use]
    pub fn live_out(&self, mem: &FlatMemory) -> Vec<i64> {
        (0..self.slot_values.len())
            .map(|slot| self.arena().read(mem, slot, VALUE).expect("in bounds"))
            .collect()
    }
}

impl SpiceWorkload for TraceReplayWorkload {
    fn name(&self) -> &'static str {
        "trace_replay"
    }

    fn description(&self) -> &'static str {
        "recorded-behaviour list walk; addresses reproduce live-in overlap"
    }

    fn loop_name(&self) -> &'static str {
        "replay_walk"
    }

    fn paper_hotness(&self) -> f64 {
        0.0
    }

    fn conflict_policy(&self) -> spice_ir::exec::ConflictPolicy {
        if self.trace.has_writes() {
            spice_ir::exec::ConflictPolicy::Detect
        } else {
            spice_ir::exec::ConflictPolicy::AssumeIndependent
        }
    }

    fn build(&mut self) -> BuiltKernel {
        let mut program = Program::new();
        let base = program.add_global(
            "replay.nodes",
            RecordArena::words_needed(RECORD_WORDS, self.capacity),
        );
        self.arena = Some(RecordArena::new(base, RECORD_WORDS, self.capacity));

        // replay_walk(head) -> sum of values as visited (splices included).
        let mut b = FunctionBuilder::new("replay_walk");
        let head = b.param();
        let pre = b.new_labeled_block("preheader");
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let poke = b.new_labeled_block("poke");
        let advance = b.new_labeled_block("advance");
        let exit = b.new_labeled_block("exit");
        let c = b.copy(head);
        let sum = b.copy(0i64);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let v = b.load(c, VALUE);
        let s = b.binop(BinOp::Add, sum, v);
        b.copy_into(sum, s);
        let t = b.load(c, TARGET);
        let has_target = b.binop(BinOp::Ne, t, 0i64);
        b.cond_br(has_target, poke, advance);
        b.switch_to(poke);
        b.store(v, t, 0);
        b.br(advance);
        b.switch_to(advance);
        let nx = b.load(c, NEXT);
        b.copy_into(c, nx);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));
        let kernel = program.add_func(b.finish());
        BuiltKernel {
            program,
            kernel,
            loop_header_hint: None,
        }
    }

    fn init(&mut self, mem: &mut FlatMemory) -> Vec<i64> {
        {
            let arena = self.arena.as_mut().expect("built");
            for _ in 0..self.capacity {
                let _ = arena.alloc();
            }
        }
        self.stage(mem, 0);
        self.args()
    }

    fn next_invocation(&mut self, mem: &mut FlatMemory, invocation: usize) -> Option<Vec<i64>> {
        let next = invocation + 1;
        if next >= self.trace.invocations.len() {
            return None;
        }
        self.stage(mem, next);
        Some(self.args())
    }

    /// Host mirror of the staged walk, splices applied in traversal order.
    fn expected_result(&self, mem: &FlatMemory) -> Option<i64> {
        let arena = self.arena();
        let order = &self.slot_orders[self.staged];
        let iterations = &self.trace.invocations[self.staged].iterations;
        let mut values: Vec<i64> = order
            .iter()
            .map(|&slot| arena.read(mem, slot, VALUE).expect("in bounds"))
            .collect();
        let mut sum = 0i64;
        for j in 0..order.len() {
            let v = values[j];
            sum += v;
            if let Some(w) = iterations[j].write {
                values[j + w as usize] = v;
            }
        }
        Some(sum)
    }

    fn expected_iterations(&self) -> u64 {
        let invs = self.trace.invocations.len().max(1) as u64;
        self.trace.total_iterations() / invs
    }

    fn invocations(&self) -> usize {
        self.trace.invocations.len()
    }
}

/// A compact synthetic trace for tests and smoke runs: `invocations`
/// invocations of `len` iterations whose keys repeat across invocations
/// with probability `predictability` (per invocation, like the churn-list
/// corpus workload).
#[must_use]
pub fn synthetic_trace(
    name: &str,
    invocations: usize,
    len: usize,
    predictability: f64,
    seed: u64,
) -> WorkloadTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut generation: i64 = 0;
    let mut invs = Vec::with_capacity(invocations);
    for i in 0..invocations {
        if i > 0 && !rng.gen_bool(predictability) {
            generation += 1;
        }
        let iterations = (0..len)
            .map(|j| TraceIteration {
                key: vec![generation * 1_000_003 + j as i64 + 1],
                write: None,
            })
            .collect();
        invs.push(TraceInvocation { iterations });
    }
    WorkloadTrace {
        name: name.to_string(),
        loop_name: "synthetic".to_string(),
        site: 0,
        invocations: invs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::interp::run_function;

    fn replay_sequentially(trace: WorkloadTrace) -> Vec<i64> {
        let mut wl = TraceReplayWorkload::new(trace).expect("valid trace");
        let built = wl.build();
        spice_ir::verify::verify_program(&built.program).expect("kernel verifies");
        let mut mem = FlatMemory::for_program(&built.program, 64 * 1024);
        let mut args = wl.init(&mut mem);
        let mut returns = Vec::new();
        for inv in 0.. {
            let expected = wl.expected_result(&mem).unwrap();
            let out = run_function(&built.program, built.kernel, &args, &mut mem).unwrap();
            assert_eq!(out.return_value, Some(expected), "invocation {inv}");
            returns.push(expected);
            match wl.next_invocation(&mut mem, inv) {
                Some(a) => args = a,
                None => break,
            }
        }
        returns
    }

    #[test]
    fn synthetic_traces_replay_and_match_the_host_mirror() {
        for p in [0.0, 0.5, 1.0] {
            let t = synthetic_trace("synthetic", 6, 40, p, 0x5EED);
            assert_eq!(t.validate(), Ok(()));
            let returns = replay_sequentially(t);
            assert_eq!(returns.len(), 6);
        }
    }

    #[test]
    fn fuzzed_traces_stay_valid_and_replay() {
        let base = synthetic_trace("base", 5, 32, 0.8, 0xBA5E);
        for seed in 0..8 {
            let mutant = fuzz_trace(
                &base,
                &FuzzConfig {
                    seed,
                    splice_rate: 0.3,
                    relink_depth: 6,
                    churn_rate: 0.4,
                },
            );
            assert_eq!(mutant.validate(), Ok(()), "seed {seed}");
            let _ = replay_sequentially(mutant);
        }
    }

    #[test]
    fn fuzzing_is_deterministic_per_seed() {
        let base = synthetic_trace("base", 4, 16, 0.9, 1);
        let cfg = FuzzConfig {
            seed: 42,
            ..FuzzConfig::default()
        };
        let a = fuzz_trace(&base, &cfg);
        let b = fuzz_trace(&base, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.checksum(), b.checksum());
        let c = fuzz_trace(&base, &FuzzConfig { seed: 43, ..cfg });
        assert_ne!(a.checksum(), c.checksum());
    }

    #[test]
    fn splice_mutants_carry_forward_writes() {
        let base = synthetic_trace("base", 3, 50, 1.0, 2);
        let mutant = fuzz_trace(
            &base,
            &FuzzConfig {
                seed: 7,
                splice_rate: 1.0,
                relink_depth: 0,
                churn_rate: 0.0,
            },
        );
        assert!(mutant.has_writes());
        for inv in &mutant.invocations {
            for (j, it) in inv.iterations.iter().enumerate() {
                if let Some(w) = it.write {
                    assert!(j + (w as usize) < inv.iterations.len());
                    assert!(w >= 1);
                }
            }
        }
    }

    #[test]
    fn validation_rejects_malformed_traces() {
        let mut t = synthetic_trace("t", 2, 4, 1.0, 3);
        t.invocations[1].iterations[0].key.clear();
        assert_eq!(
            t.validate(),
            Err(TraceError::EmptyKey {
                invocation: 1,
                iteration: 0
            })
        );

        let mut t = synthetic_trace("t", 1, 4, 1.0, 3);
        t.invocations[0].iterations[3].write = Some(1);
        assert!(matches!(
            t.validate(),
            Err(TraceError::WriteOutOfRange { .. })
        ));
        assert!(TraceReplayWorkload::new(t).is_err());

        let t = WorkloadTrace {
            name: String::new(),
            loop_name: "l".into(),
            site: 0,
            invocations: vec![TraceInvocation::default()],
        };
        assert_eq!(t.validate(), Err(TraceError::EmptyName));
    }

    #[test]
    fn slot_mapping_is_stable_across_invocations() {
        // A fully predictable trace must reuse the same slots every
        // invocation — that is what preserves measured predictability.
        let t = synthetic_trace("stable", 4, 10, 1.0, 9);
        let wl = TraceReplayWorkload::new(t).unwrap();
        assert_eq!(wl.slot_count(), 10);
        for inv in 1..wl.slot_orders.len() {
            assert_eq!(wl.slot_orders[0], wl.slot_orders[inv]);
        }
    }
}
