//! The synthetic whole-application corpus behind Figure 8.
//!
//! The paper profiles the SPEC integer and Mediabench suites (plus a few
//! pointer-intensive programs) for loop live-in predictability across
//! invocations and bins each loop by the percentage of its invocations that
//! are predictable. Those program suites cannot be redistributed here, so the
//! corpus is synthetic: every named benchmark is modelled as a small set of
//! pointer-chasing loops whose *invocation predictability* is controlled
//! directly (see `DESIGN.md`, substitutions). The profiler machinery that
//! measures them is identical to the paper's (signatures, sampling,
//! thresholding); only the programs are stand-ins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spice_ir::builder::FunctionBuilder;
use spice_ir::interp::FlatMemory;
use spice_ir::{BinOp, Operand, Program};

use crate::arena::{ListMirror, RecordArena};
use crate::conflict::{ConflictConfig, ConflictListWorkload};
use crate::mcf::{McfConfig, McfWorkload};
use crate::mcf_app::{McfAppConfig, McfAppWorkload};
use crate::{BuiltKernel, SpiceWorkload};

const VALUE: i64 = 0;
const NEXT: i64 = 1;
const RECORD_WORDS: i64 = 2;

/// A loop whose live-in predictability across invocations is controlled by
/// construction: with probability `predictability` an invocation keeps the
/// list almost unchanged (its live-ins repeat), otherwise the whole list is
/// rebuilt (nothing repeats).
#[derive(Debug, Clone)]
pub struct ChurnListWorkload {
    name: &'static str,
    predictability: f64,
    len: usize,
    invocations: usize,
    arena: Option<RecordArena>,
    list: ListMirror,
    rng: StdRng,
}

impl ChurnListWorkload {
    /// Creates a loop with the given target invocation predictability.
    #[must_use]
    pub fn new(
        name: &'static str,
        predictability: f64,
        len: usize,
        invocations: usize,
        seed: u64,
    ) -> Self {
        ChurnListWorkload {
            name,
            predictability: predictability.clamp(0.0, 1.0),
            len,
            invocations,
            arena: None,
            list: ListMirror::new(NEXT),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn arena(&self) -> &RecordArena {
        self.arena.as_ref().expect("build() must be called first")
    }

    fn rebuild(&mut self, mem: &mut FlatMemory) {
        // Allocate a fresh generation of nodes *before* releasing the old one
        // so the new list occupies different addresses — a rebuild must
        // destroy cross-invocation value locality, and the arena would
        // otherwise recycle the very same slots.
        let old: Vec<usize> = self.list.order.clone();
        self.list = ListMirror::new(NEXT);
        let values: Vec<i64> = (0..self.len)
            .map(|_| self.rng.gen_range(0..10_000))
            .collect();
        {
            let arena = self.arena.as_mut().expect("built");
            for v in values {
                if let Some(slot) = arena.alloc() {
                    arena.write(mem, slot, VALUE, v).expect("in bounds");
                    self.list.insert_at(usize::MAX, slot);
                }
            }
            for s in old {
                arena.release(s);
            }
        }
        self.list.relink(self.arena(), mem).expect("in bounds");
    }

    fn args(&self) -> Vec<i64> {
        vec![self.list.head_addr(self.arena())]
    }
}

impl SpiceWorkload for ChurnListWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    fn description(&self) -> &'static str {
        "synthetic pointer-chasing loop with controlled predictability"
    }

    fn loop_name(&self) -> &'static str {
        "list_walk"
    }

    fn paper_hotness(&self) -> f64 {
        0.0
    }

    fn conflict_policy(&self) -> spice_ir::exec::ConflictPolicy {
        // A pure pointer-chasing sum: no stores inside the loop.
        spice_ir::exec::ConflictPolicy::AssumeIndependent
    }

    fn build(&mut self) -> BuiltKernel {
        let mut program = Program::new();
        // Double capacity: a rebuild momentarily needs a second generation of
        // nodes before the old ones are recycled.
        let capacity = self.len * 2 + 4;
        let base = program.add_global(
            format!("{}.nodes", self.name),
            RecordArena::words_needed(RECORD_WORDS, capacity),
        );
        self.arena = Some(RecordArena::new(base, RECORD_WORDS, capacity));

        let mut b = FunctionBuilder::new(format!("{}.list_walk", self.name));
        let head = b.param();
        let pre = b.new_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.copy(head);
        let sum = b.copy(0i64);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let v = b.load(c, VALUE);
        let s = b.binop(BinOp::Add, sum, v);
        b.copy_into(sum, s);
        let n = b.load(c, NEXT);
        b.copy_into(c, n);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));
        let kernel = program.add_func(b.finish());
        BuiltKernel {
            program,
            kernel,
            loop_header_hint: None,
        }
    }

    fn init(&mut self, mem: &mut FlatMemory) -> Vec<i64> {
        self.rebuild(mem);
        self.args()
    }

    fn next_invocation(&mut self, mem: &mut FlatMemory, invocation: usize) -> Option<Vec<i64>> {
        if invocation + 1 >= self.invocations {
            return None;
        }
        if self.rng.gen_bool(1.0 - self.predictability) {
            self.rebuild(mem);
        } else {
            // Light churn: one node's payload changes, addresses survive.
            if !self.list.is_empty() {
                let idx = self.rng.gen_range(0..self.list.len());
                let slot = self.list.order[idx];
                let v = self.rng.gen_range(0..10_000);
                self.arena().write(mem, slot, VALUE, v).expect("in bounds");
            }
        }
        Some(self.args())
    }

    fn expected_result(&self, mem: &FlatMemory) -> Option<i64> {
        let arena = self.arena();
        Some(
            self.list
                .order
                .iter()
                .map(|&s| arena.read(mem, s, VALUE).expect("in bounds"))
                .sum(),
        )
    }

    fn expected_iterations(&self) -> u64 {
        self.len as u64
    }

    fn invocations(&self) -> usize {
        self.invocations
    }
}

/// Which suite a corpus entry belongs to (the two panels of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// SPEC integer benchmarks (Figure 8a).
    SpecInt,
    /// Mediabench and other pointer-intensive programs (Figure 8b).
    MediabenchAndOthers,
}

/// One benchmark of the Figure 8 corpus: a name and the target invocation
/// predictability of each of its profiled loops.
#[derive(Debug, Clone)]
pub struct SuiteBenchmark {
    /// Benchmark name (as it appears on the Figure 8 x-axis).
    pub name: &'static str,
    /// Which panel it belongs to.
    pub suite: Suite,
    /// Target predictability of each profiled loop (empty = no predictable
    /// loops, rendered as a missing bar in the figure).
    pub loop_predictability: Vec<f64>,
}

impl SuiteBenchmark {
    /// Instantiates the workloads for this benchmark's loops.
    #[must_use]
    pub fn workloads(&self, invocations: usize, list_len: usize) -> Vec<ChurnListWorkload> {
        self.loop_predictability
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                ChurnListWorkload::new(
                    self.name,
                    p,
                    list_len,
                    invocations,
                    0x5EED_0000 + (i as u64) * 977 + self.name.len() as u64,
                )
            })
            .collect()
    }

    /// Runs every loop of this benchmark on a freshly made backend — the
    /// corpus-side consumer of the shared execution layer. The caller picks
    /// the substrate by value (e.g. `|| spice_core::make_backend(choice,
    /// threads)`); each loop gets its own backend instance so predictor
    /// state never leaks between loops.
    ///
    /// # Errors
    ///
    /// Returns the first execution failure or result mismatch.
    pub fn run_on_backend(
        &self,
        make_backend: &mut dyn FnMut() -> Box<dyn crate::ExecutionBackend>,
        invocations: usize,
        list_len: usize,
    ) -> Result<Vec<crate::BackendRunSummary>, String> {
        self.workloads(invocations, list_len)
            .into_iter()
            .map(|mut wl| {
                let mut backend = make_backend();
                crate::run_workload_on(&mut wl, backend.as_mut())
            })
            .collect()
    }
}

/// The conflict-carrying workloads unlocked by the memory-dependence
/// speculation subsystem: the faithful `mcf_refresh_potential_true` kernel
/// (every node's potential chained through `pred->potential`) and the
/// adversarial `list_splice` loop whose writers hit successors' read regions
/// at a controlled rate. Both *require* `ConflictPolicy::Detect` for
/// speculative executions to stay bit-identical to sequential ones — the
/// workload class DESIGN.md §3.4 previously had to rewrite away.
#[must_use]
pub fn conflict_benchmarks() -> Vec<Box<dyn SpiceWorkload>> {
    vec![
        Box::new(McfWorkload::new_faithful(McfConfig {
            nodes: 2_000,
            invocations: 10,
            cost_updates_per_invocation: 8,
            reparents_per_invocation: 1,
            seed: 0x6d63_6601,
        })),
        Box::new(ConflictListWorkload::new(ConflictConfig {
            len: 3_000,
            invocations: 12,
            conflict_rate: 0.1,
            seed: 0x59_11CE,
        })),
    ]
}

/// Smaller configurations of the conflict workloads, for quick test runs.
#[must_use]
pub fn conflict_benchmarks_small() -> Vec<Box<dyn SpiceWorkload>> {
    vec![
        Box::new(McfWorkload::new_faithful(McfConfig {
            nodes: 140,
            invocations: 8,
            cost_updates_per_invocation: 4,
            reparents_per_invocation: 1,
            seed: 0x6d63_6601,
        })),
        Box::new(ConflictListWorkload::new(ConflictConfig {
            len: 150,
            invocations: 10,
            conflict_rate: 0.1,
            seed: 0x59_11CE,
        })),
    ]
}

/// The miniature-application workloads: drivers that grew into whole
/// programs whose non-loop phases execute as measured serial IR, so Table 2
/// hotness is *measured* by profiler cycle attribution instead of quoted
/// from the paper. Currently the `mcf_app` network simplex (one pivot per
/// invocation: entering-arc selection, basis exchange + relink, then the
/// faithful `refresh_potential_true` walk as the Spice target loop).
#[must_use]
pub fn app_benchmarks() -> Vec<Box<dyn SpiceWorkload>> {
    // Instance shape: ~0.6 candidate arcs per node, calibrated so the
    // measured whole-program profile sits in the real application's regime
    // (refresh loop ≈ a quarter of all cycles; the remainder is arc pricing
    // and the full-tree relink — see DESIGN.md §3.5 for the measured value
    // next to the paper's 30%).
    vec![Box::new(McfAppWorkload::new(McfAppConfig {
        nodes: 2_500,
        arcs: 1_500,
        pivots: 10,
        seed: 0x6d63_6661,
    }))]
}

/// Smaller configuration of the application workloads, for quick test runs.
#[must_use]
pub fn app_benchmarks_small() -> Vec<Box<dyn SpiceWorkload>> {
    vec![Box::new(McfAppWorkload::new(McfAppConfig {
        nodes: 120,
        arcs: 150,
        pivots: 8,
        seed: 0x6d63_6661,
    }))]
}

/// The Figure 8 corpus. Loop predictability targets are chosen so the binned
/// output reproduces the qualitative shape of the figure: most benchmarks
/// have a sizable fraction of loops with good-to-high predictability,
/// compression codecs sit lower, and a few show none at all.
#[must_use]
pub fn fig8_corpus() -> Vec<SuiteBenchmark> {
    use Suite::{MediabenchAndOthers as MB, SpecInt as SI};
    let b = |name, suite, loops: &[f64]| SuiteBenchmark {
        name,
        suite,
        loop_predictability: loops.to_vec(),
    };
    vec![
        b("008.espresso", SI, &[0.9, 0.6, 0.3]),
        b("052.alvinn", SI, &[0.95, 0.9]),
        b("056.ear", SI, &[0.9, 0.85]),
        b("124.m88ksim", SI, &[0.8, 0.55, 0.2]),
        b("129.compress", SI, &[0.15, 0.1]),
        b("130.li", SI, &[0.85, 0.65, 0.4]),
        b("132.ijpeg", SI, &[0.6, 0.35]),
        b("164.gzip", SI, &[0.2, 0.15]),
        b("175.vpr", SI, &[0.9, 0.7, 0.45]),
        b("181.mcf", SI, &[0.95, 0.85]),
        b("186.crafty", SI, &[0.7, 0.5, 0.3]),
        b("254.gap", SI, &[0.8, 0.6]),
        b("255.vortex", SI, &[0.85, 0.75, 0.35]),
        b("256.bzip2", SI, &[0.25, 0.1]),
        b("300.twolf", SI, &[0.9, 0.65]),
        b("401.bzip2", SI, &[0.25, 0.15]),
        b("429.mcf", SI, &[0.95, 0.8]),
        b("456.hmmer", SI, &[0.6, 0.4]),
        b("458.sjeng", SI, &[0.75, 0.55, 0.3]),
        b("adpcmdec", MB, &[0.3]),
        b("adpcmenc", MB, &[0.3]),
        b("epicdec", MB, &[0.6, 0.4]),
        b("epicenc", MB, &[0.55]),
        b("g721dec", MB, &[0.7, 0.5]),
        b("g721enc", MB, &[0.7, 0.45]),
        b("grep", MB, &[0.85, 0.6]),
        b("gsmenc", MB, &[0.5]),
        b("jpegdec", MB, &[0.6, 0.35]),
        b("jpegenc", MB, &[0.55, 0.3]),
        b("ks", MB, &[0.95, 0.9]),
        b("mpeg2dec", MB, &[0.65, 0.4]),
        b("mpeg2enc", MB, &[0.6]),
        b("em3d", MB, &[0.95, 0.85]),
        b("mst", MB, &[0.9, 0.8]),
        b("tsp", MB, &[0.85, 0.6]),
        b("otter", MB, &[0.9, 0.75, 0.5]),
        b("pgpdec", MB, &[0.45]),
        b("wc", MB, &[0.95]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::interp::run_function;

    #[test]
    fn churn_list_kernel_sums_the_list() {
        let mut wl = ChurnListWorkload::new("test", 1.0, 20, 5, 42);
        let built = wl.build();
        let mut mem = FlatMemory::for_program(&built.program, 32 * 1024);
        let mut args = wl.init(&mut mem);
        for inv in 0.. {
            let expected = wl.expected_result(&mem).unwrap();
            let out = run_function(&built.program, built.kernel, &args, &mut mem).unwrap();
            assert_eq!(out.return_value, Some(expected));
            match wl.next_invocation(&mut mem, inv) {
                Some(a) => args = a,
                None => break,
            }
        }
    }

    #[test]
    fn zero_predictability_rebuilds_every_invocation() {
        let mut wl = ChurnListWorkload::new("rebuild", 0.0, 10, 4, 7);
        let built = wl.build();
        let mut mem = FlatMemory::for_program(&built.program, 16 * 1024);
        let args0 = wl.init(&mut mem);
        run_function(&built.program, built.kernel, &args0, &mut mem).unwrap();
        let head0 = args0[0];
        let args1 = wl.next_invocation(&mut mem, 0).unwrap();
        // The head address very likely changed because the nodes were
        // reallocated from the recycled-slot pool in reverse order.
        assert_eq!(wl.list.len(), 10);
        let _ = head0;
        assert_eq!(args1.len(), 1);
    }

    #[test]
    fn corpus_covers_both_panels_and_many_benchmarks() {
        let corpus = fig8_corpus();
        assert!(corpus.len() >= 35);
        assert!(corpus.iter().any(|b| b.suite == Suite::SpecInt));
        assert!(corpus.iter().any(|b| b.suite == Suite::MediabenchAndOthers));
        let total_loops: usize = corpus.iter().map(|b| b.loop_predictability.len()).sum();
        assert!(total_loops >= 60);
        // Every entry can instantiate runnable workloads.
        let wls = corpus[0].workloads(3, 8);
        assert_eq!(wls.len(), corpus[0].loop_predictability.len());
    }
}
