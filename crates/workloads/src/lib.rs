//! # spice-workloads — benchmark loops for the Spice reproduction
//!
//! The CGO 2008 Spice paper evaluates its transformation on four loops drawn
//! from pointer-intensive applications (Table 2): the Kernighan–Lin inner
//! loop of `ks`, otter's `find_lightest_cl`, 181.mcf's `refresh_potential`
//! and 458.sjeng's `std_eval`. This crate re-implements those loop kernels in
//! `spice-ir`, together with *drivers* that rebuild the applications'
//! inter-invocation behaviour (list mutation, tree re-linking, board moves),
//! and a synthetic corpus standing in for the SPEC/Mediabench programs of the
//! paper's Figure 8 value-predictability study.
//!
//! Every workload implements [`SpiceWorkload`]: it builds an IR program with
//! the target loop, initializes the data structures in simulated memory, and
//! mutates them between invocations, exposing a host-computed expected result
//! so that both sequential and Spice-parallel executions can be checked.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod conflict;
pub mod ks;
pub mod mcf;
pub mod mcf_app;
pub mod otter;
pub mod sjeng;
pub mod suite;
pub mod trace;

use spice_ir::exec::{ConflictPolicy, LoadOptions, MisspeculationCause};
use spice_ir::interp::FlatMemory;
use spice_ir::{BlockId, FuncId, Program};

pub use spice_ir::exec::ExecutionBackend;

pub use conflict::{ConflictConfig, ConflictListWorkload};
pub use ks::{KsConfig, KsWorkload};
pub use mcf::{McfConfig, McfWorkload};
pub use mcf_app::{HostMcfApp, McfAppConfig, McfAppInstance, McfAppWorkload};
pub use otter::{OtterConfig, OtterWorkload};
pub use sjeng::{SjengConfig, SjengWorkload};
pub use suite::{
    app_benchmarks, app_benchmarks_small, conflict_benchmarks, conflict_benchmarks_small,
    fig8_corpus, ChurnListWorkload, Suite, SuiteBenchmark,
};
pub use trace::{
    fuzz_trace, synthetic_trace, FuzzConfig, TraceError, TraceInvocation, TraceIteration,
    TraceReplayWorkload, WorkloadTrace,
};

/// An IR program containing one workload's target loop.
#[derive(Debug, Clone)]
pub struct BuiltKernel {
    /// The program (globals sized for the workload's data structures).
    pub program: Program,
    /// The function containing the Spice target loop.
    pub kernel: FuncId,
    /// Header of the target loop, when the kernel has more than one
    /// top-level loop (none of the shipped workloads need it).
    pub loop_header_hint: Option<BlockId>,
}

/// A benchmark loop plus the driver that reproduces how the surrounding
/// application evolves its data structures between loop invocations.
///
/// Call order: [`build`](SpiceWorkload::build) once, then
/// [`init`](SpiceWorkload::init) on the machine's memory, then alternately
/// run the kernel (sequentially or Spice-parallelized) and call
/// [`next_invocation`](SpiceWorkload::next_invocation) until it returns
/// `None`.
///
/// Workloads are `Send`: a sweep engine hands each boxed workload to
/// whichever host thread runs its job. (They are built from owned data and
/// seeded RNGs, so this was already true structurally.)
pub trait SpiceWorkload: Send {
    /// Benchmark name (Table 2 first column).
    fn name(&self) -> &'static str;

    /// Short description (Table 2 second column).
    fn description(&self) -> &'static str;

    /// Name of the parallelized loop (Table 2 third column).
    fn loop_name(&self) -> &'static str;

    /// Fraction of whole-application execution time the paper attributes to
    /// this loop (Table 2 "hotness"); 0 for synthetic corpus entries. Since
    /// the `mcf_app` driver grew into a measured miniature application, this
    /// is a *comparison* column — Table 2's `measured_hotness` comes from
    /// profiler cycle attribution, never from this constant.
    fn paper_hotness(&self) -> f64;

    /// How execution backends must treat cross-chunk memory dependences for
    /// this workload's target loop. The suite registry used to hard-code one
    /// policy for every workload; it is a per-workload property: loops
    /// *known* dependence-free declare [`ConflictPolicy::AssumeIndependent`]
    /// and skip all read/write-set tracking, while conflict-carrying loops
    /// (and precision probes) keep the default [`ConflictPolicy::Detect`].
    /// `run_workload_on` forwards this into [`LoadOptions`].
    fn conflict_policy(&self) -> ConflictPolicy {
        ConflictPolicy::Detect
    }

    /// Builds the IR program containing the kernel.
    fn build(&mut self) -> BuiltKernel;

    /// Initializes the workload's data structures in simulated memory and
    /// returns the kernel arguments for the first invocation.
    fn init(&mut self, mem: &mut FlatMemory) -> Vec<i64>;

    /// Mutates the data structures after invocation `invocation` finished and
    /// returns the arguments for the next one, or `None` when the workload is
    /// done.
    fn next_invocation(&mut self, mem: &mut FlatMemory, invocation: usize) -> Option<Vec<i64>>;

    /// Expected kernel return value for the *upcoming* invocation, computed
    /// on the host. `None` if the workload has no scalar result to check.
    fn expected_result(&self, mem: &FlatMemory) -> Option<i64>;

    /// Rough expected iteration count per invocation (seeds the predictor's
    /// load balancer before any feedback exists).
    fn expected_iterations(&self) -> u64;

    /// Total number of invocations the driver produces.
    fn invocations(&self) -> usize;
}

/// Default heap words reserved past a workload program's globals when
/// loading it into a backend.
pub const DEFAULT_WORKLOAD_HEAP_WORDS: usize = 256 * 1024;

/// Aggregate result of driving one workload over one backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendRunSummary {
    /// Backend that executed the workload.
    pub backend: &'static str,
    /// Invocations executed.
    pub invocations: usize,
    /// Sum of per-invocation costs (cycles or wall nanoseconds — one unit
    /// per backend, per [`spice_ir::exec::ExecutionCost`]).
    pub total_cost: u128,
    /// Kernel return value of every invocation, in order.
    pub return_values: Vec<Option<i64>>,
    /// Number of invocations with at least one squashed chunk.
    pub misspeculated_invocations: usize,
    /// Total speculative chunks committed across all invocations.
    pub committed_chunks: usize,
    /// Total speculative chunks squashed across all invocations.
    pub squashed_chunks: usize,
    /// Squashes caused by a cross-chunk memory dependence violation
    /// ([`MisspeculationCause::DependenceViolation`]) — nonzero whenever the
    /// conflict-detection subsystem actually fired.
    pub dependence_violations: usize,
    /// Per-invocation, per-thread work counters (main thread first).
    pub work_per_thread: Vec<Vec<u64>>,
}

impl BackendRunSummary {
    /// Fraction of invocations that mis-speculated.
    #[must_use]
    pub fn misspeculation_rate(&self) -> f64 {
        if self.invocations == 0 {
            return 0.0;
        }
        self.misspeculated_invocations as f64 / self.invocations as f64
    }

    /// Mean, over invocations, of the coefficient of variation of per-thread
    /// work — 0 means perfectly balanced chunks (shared definition:
    /// [`spice_ir::exec::work_imbalance`]).
    #[must_use]
    pub fn load_imbalance(&self) -> f64 {
        spice_ir::exec::work_imbalance(&self.work_per_thread)
    }
}

/// Drives `workload` over `backend` from build to the last invocation — the
/// single call site through which any workload runs on any execution
/// substrate (the timing simulator, native threads, or whatever a future
/// backend adds).
///
/// Every invocation's return value is checked against the workload's
/// host-computed expectation; a mismatch is an error (speculation must never
/// change results — paper §3).
///
/// # Errors
///
/// Returns a description of the first backend failure or result mismatch.
pub fn run_workload_on(
    workload: &mut dyn SpiceWorkload,
    backend: &mut dyn ExecutionBackend,
) -> Result<BackendRunSummary, String> {
    run_workload_on_with(workload, backend, |o| o)
}

/// [`run_workload_on`] with a hook adjusting the [`LoadOptions`] the
/// workload derives before the backend sees them — how a sweep overrides a
/// single knob (e.g. the conflict-detection granularity) without a parallel
/// copy of the drive loop.
///
/// # Errors
///
/// Returns a description of the first backend failure or result mismatch.
pub fn run_workload_on_with(
    workload: &mut dyn SpiceWorkload,
    backend: &mut dyn ExecutionBackend,
    adjust: impl FnOnce(LoadOptions) -> LoadOptions,
) -> Result<BackendRunSummary, String> {
    let built = workload.build();
    let options = adjust(workload_load_options(workload, &built));
    backend
        .load(built.program, built.kernel, options)
        .map_err(|e| format!("{}: load failed: {e}", workload.name()))?;
    drive_loaded_workload(workload, backend)
}

/// The [`LoadOptions`] a workload asks for: the default heap reservation,
/// its expected first-invocation iteration count, its declared conflict
/// policy and its loop-header hint.
#[must_use]
pub fn workload_load_options(workload: &dyn SpiceWorkload, built: &BuiltKernel) -> LoadOptions {
    let mut options = LoadOptions::new(
        DEFAULT_WORKLOAD_HEAP_WORDS,
        Some(workload.expected_iterations()),
    )
    .with_conflict_policy(workload.conflict_policy());
    options.loop_header = built.loop_header_hint;
    options
}

/// Drives an already-loaded workload over `backend`: `init`, then the
/// invocation loop with per-invocation expected-result checks — the half of
/// [`run_workload_on`] after `load`.
///
/// # Errors
///
/// Returns a description of the first backend failure or result mismatch.
pub fn drive_loaded_workload(
    workload: &mut dyn SpiceWorkload,
    backend: &mut dyn ExecutionBackend,
) -> Result<BackendRunSummary, String> {
    let mut args = workload.init(backend.mem_mut());
    let mut summary = BackendRunSummary {
        backend: backend.name(),
        invocations: 0,
        total_cost: 0,
        return_values: Vec::new(),
        misspeculated_invocations: 0,
        committed_chunks: 0,
        squashed_chunks: 0,
        dependence_violations: 0,
        work_per_thread: Vec::new(),
    };
    let mut inv = 0usize;
    loop {
        let expected = workload.expected_result(backend.mem());
        let report = backend
            .run_invocation(&args)
            .map_err(|e| format!("{}: invocation {inv}: {e}", workload.name()))?;
        if let Some(e) = expected {
            if report.return_value != Some(e) {
                return Err(format!(
                    "{}: backend `{}` returned {:?}, expected {e} (invocation {inv})",
                    workload.name(),
                    backend.name(),
                    report.return_value
                ));
            }
        }
        summary.invocations += 1;
        summary.total_cost += report.cost.magnitude();
        summary.return_values.push(report.return_value);
        if report.misspeculated {
            summary.misspeculated_invocations += 1;
        }
        summary.committed_chunks += report.committed_chunks;
        summary.squashed_chunks += report.squashed_chunks;
        summary.dependence_violations += report
            .misspeculation_causes()
            .iter()
            .filter(|c| matches!(c, MisspeculationCause::DependenceViolation { .. }))
            .count();
        summary.work_per_thread.push(report.work_per_thread.clone());
        match workload.next_invocation(backend.mem_mut(), inv) {
            Some(a) => {
                args = a;
                inv += 1;
            }
            None => break,
        }
    }
    Ok(summary)
}

/// The paper's four evaluation loops (Table 2 / Figure 7) with default
/// configurations.
#[must_use]
pub fn paper_benchmarks() -> Vec<Box<dyn SpiceWorkload>> {
    vec![
        Box::new(KsWorkload::new(KsConfig::default())),
        Box::new(OtterWorkload::new(OtterConfig::default())),
        Box::new(McfWorkload::new(McfConfig::default())),
        Box::new(SjengWorkload::new(SjengConfig::default())),
    ]
}

/// Smaller configurations of the same four loops, for quick test runs.
#[must_use]
pub fn paper_benchmarks_small() -> Vec<Box<dyn SpiceWorkload>> {
    vec![
        Box::new(KsWorkload::new(KsConfig {
            modules: 120,
            invocations: 12,
            d_updates_per_invocation: 3,
            seed: 1,
        })),
        Box::new(OtterWorkload::new(OtterConfig {
            initial_len: 120,
            inserts_per_invocation: 2,
            invocations: 12,
            seed: 2,
        })),
        Box::new(McfWorkload::new(McfConfig {
            nodes: 150,
            invocations: 12,
            cost_updates_per_invocation: 4,
            reparents_per_invocation: 1,
            seed: 3,
        })),
        Box::new(SjengWorkload::new(SjengConfig {
            pieces: 40,
            invocations: 16,
            mutate_probability: 0.3,
            seed: 4,
        })),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::exec::{
        BackendError, ExecutionCost, ExecutionReport, LoadOptions as BackendLoadOptions,
    };

    /// A mock [`ExecutionBackend`] that records the [`LoadOptions`] it was
    /// handed and executes invocations on the plain interpreter — the probe
    /// behind `conflict_policy_reaches_load_options_for_every_workload`.
    struct RecordingBackend {
        program: Option<(Program, FuncId)>,
        mem: Option<FlatMemory>,
        seen: Option<BackendLoadOptions>,
    }

    impl RecordingBackend {
        fn new() -> Self {
            RecordingBackend {
                program: None,
                mem: None,
                seen: None,
            }
        }
    }

    impl ExecutionBackend for RecordingBackend {
        fn name(&self) -> &'static str {
            "recording-mock"
        }

        fn threads(&self) -> usize {
            1
        }

        fn load(
            &mut self,
            program: Program,
            kernel: FuncId,
            options: LoadOptions,
        ) -> Result<(), BackendError> {
            self.mem = Some(FlatMemory::for_program(
                &program,
                options.heap_words.max(1024),
            ));
            self.program = Some((program, kernel));
            self.seen = Some(options);
            Ok(())
        }

        fn mem(&self) -> &FlatMemory {
            self.mem.as_ref().expect("load() first")
        }

        fn mem_mut(&mut self) -> &mut FlatMemory {
            self.mem.as_mut().expect("load() first")
        }

        fn run_invocation(&mut self, args: &[i64]) -> Result<ExecutionReport, BackendError> {
            let (program, kernel) = self.program.as_ref().expect("loaded");
            let mem = self.mem.as_mut().expect("loaded");
            let out = spice_ir::interp::run_function(program, *kernel, args, mem)
                .map_err(|t| BackendError::Engine(t.to_string()))?;
            Ok(ExecutionReport {
                backend: "recording-mock",
                cost: ExecutionCost::Cycles(out.stats.total),
                return_value: out.return_value,
                misspeculated: false,
                committed_chunks: 0,
                squashed_chunks: 0,
                workers: Vec::new(),
                work_per_thread: vec![out.stats.total],
            })
        }
    }

    /// Every registered workload's declared `conflict_policy` must arrive in
    /// the `LoadOptions` the backend sees — the registry used to hard-code
    /// one policy for all workloads, which silently mis-configured any loop
    /// whose requirement differed from the global default.
    #[test]
    fn conflict_policy_reaches_load_options_for_every_workload() {
        let registries: Vec<Box<dyn SpiceWorkload>> = paper_benchmarks_small()
            .into_iter()
            .chain(conflict_benchmarks_small())
            .chain(app_benchmarks_small())
            .collect();
        let mut seen_detect = false;
        let mut seen_independent = false;
        for mut w in registries {
            let name = w.name();
            let declared = w.conflict_policy();
            let mut backend = RecordingBackend::new();
            run_workload_on(w.as_mut(), &mut backend)
                .unwrap_or_else(|e| panic!("{name}: mock run failed: {e}"));
            let received = backend.seen.expect("load was called").conflict_policy;
            assert_eq!(
                received, declared,
                "{name}: LoadOptions carried {received:?} but the workload declared {declared:?}"
            );
            match declared {
                ConflictPolicy::Detect => seen_detect = true,
                ConflictPolicy::AssumeIndependent => seen_independent = true,
            }
        }
        // The suite must exercise both values, or the plumbing test proves
        // nothing beyond the default.
        assert!(seen_detect && seen_independent);
    }

    #[test]
    fn paper_benchmark_set_matches_table2() {
        let names: Vec<&str> = paper_benchmarks().iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["ks", "otter", "181.mcf", "458.sjeng"]);
        for w in paper_benchmarks() {
            assert!(w.paper_hotness() > 0.0 && w.paper_hotness() <= 1.0);
            assert!(!w.description().is_empty());
            assert!(!w.loop_name().is_empty());
            assert!(w.invocations() > 1);
        }
    }

    #[test]
    fn conflict_benchmarks_build_and_run_sequentially() {
        let names: Vec<&str> = conflict_benchmarks().iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["mcf_true", "list_splice"]);
        for mut w in conflict_benchmarks_small() {
            let built = w.build();
            spice_ir::verify::verify_program(&built.program)
                .unwrap_or_else(|e| panic!("{} failed verification: {e:?}", w.name()));
            let mut mem = FlatMemory::for_program(&built.program, 256 * 1024);
            let mut args = w.init(&mut mem);
            for inv in 0..3 {
                let expected = w.expected_result(&mem);
                let out =
                    spice_ir::interp::run_function(&built.program, built.kernel, &args, &mut mem)
                        .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name()));
                if let Some(exp) = expected {
                    assert_eq!(out.return_value, Some(exp), "{} invocation {inv}", w.name());
                }
                match w.next_invocation(&mut mem, inv) {
                    Some(a) => args = a,
                    None => break,
                }
            }
        }
    }

    #[test]
    fn every_paper_benchmark_builds_and_runs_sequentially() {
        for mut w in paper_benchmarks_small() {
            let built = w.build();
            spice_ir::verify::verify_program(&built.program)
                .unwrap_or_else(|e| panic!("{} failed verification: {e:?}", w.name()));
            let mut mem = FlatMemory::for_program(&built.program, 256 * 1024);
            let mut args = w.init(&mut mem);
            for inv in 0..3 {
                let expected = w.expected_result(&mem);
                let out =
                    spice_ir::interp::run_function(&built.program, built.kernel, &args, &mut mem)
                        .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name()));
                if let Some(exp) = expected {
                    assert_eq!(out.return_value, Some(exp), "{} invocation {inv}", w.name());
                }
                match w.next_invocation(&mut mem, inv) {
                    Some(a) => args = a,
                    None => break,
                }
            }
        }
    }
}
