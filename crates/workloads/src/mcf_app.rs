//! `mcf_app` — a miniature min-cost-flow application around
//! `refresh_potential_true`.
//!
//! Every other Table 2 workload is a *kernel* under a synthetic driver: the
//! host mutates the data structures between invocations and quotes the
//! paper's whole-application hotness as a constant. This module grows the
//! mcf driver into a miniature network-simplex *application*: each benchmark
//! invocation is one simplex **pivot**, executed end-to-end as measured IR
//! on whichever backend runs it —
//!
//! 1. `select_entering_arc` — scan the candidate arc list and pick the arc
//!    with the most negative reduced cost (`pot[from] ± cost − pot[to]`),
//!    the simplex entering-arc rule;
//! 2. `apply_basis_exchange` — validate the pivot (the re-parented node must
//!    not be the root or an ancestor of the arc's tail — an ancestry climb
//!    through `pred` pointers), rewrite the node's basic arc
//!    (`pred`/`cost`/`orient`), and rebuild the first-child/next-sibling
//!    links from the `pred` fields — the IR form of the driver's old
//!    host-side `relink_tree`, using a `last_child` scratch array;
//! 3. the **hot inner loop**: `refresh_potential_true` walks the whole tree
//!    and recomputes every node's potential from `node->pred->potential`,
//!    exactly the faithful kernel of [`crate::mcf`] — this is the loop the
//!    Spice transformation targets (`loop_header_hint`), while phases 1–2
//!    run as serial IR on the main thread.
//!
//! Because the pivot phases are program code rather than host-side setup,
//! whole-program hotness is *measured* (profiler cycle attribution over the
//! simulated run) instead of quoted: Table 2's `measured_hotness` column for
//! the `mcf_app` row divides the cycles attributed to the refresh loop by
//! the cycles of the whole program. [`SpiceWorkload::paper_hotness`] (mcf's
//! 30% from the paper) is kept purely as the comparison column.
//!
//! [`HostMcfApp`] is an independent pure-Rust implementation of the same
//! application (same arc selection, same validity rule, same integer
//! arithmetic); the differential test layer (`mcf_app_differential.rs`)
//! pins both execution backends and the host implementation to bit-identical
//! per-pivot checksums and final potentials.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spice_ir::builder::FunctionBuilder;
use spice_ir::exec::ConflictPolicy;
use spice_ir::interp::FlatMemory;
use spice_ir::{BinOp, FuncId, Operand, Program};

use crate::arena::RecordArena;
use crate::{BuiltKernel, SpiceWorkload};

// Node record layout (same shape as `crate::mcf`).
const POTENTIAL: i64 = 0;
const COST: i64 = 1;
const ORIENT: i64 = 2;
const PRED: i64 = 3;
const CHILD: i64 = 4;
const SIBLING: i64 = 5;
const RECORD_WORDS: i64 = 6;

// Candidate-arc record layout.
const AFROM: i64 = 0;
const ATO: i64 = 1;
const ACOST: i64 = 2;
const AORIENT: i64 = 3;
const ARC_WORDS: i64 = 4;

/// Configuration of the miniature mcf application.
#[derive(Debug, Clone)]
pub struct McfAppConfig {
    /// Nodes in the spanning tree (root included).
    pub nodes: usize,
    /// Candidate entering arcs in the network.
    pub arcs: usize,
    /// Simplex pivots to run — one per benchmark invocation.
    pub pivots: usize,
    /// RNG seed for the instance generator.
    pub seed: u64,
}

impl Default for McfAppConfig {
    fn default() -> Self {
        // Matches `suite::app_benchmarks`: ~0.6 candidate arcs per node
        // keeps the measured whole-program profile in the real
        // application's regime (see DESIGN.md §3.5).
        McfAppConfig {
            nodes: 2_500,
            arcs: 1_500,
            pivots: 10,
            seed: 0x6d63_6661,
        }
    }
}

/// A seeded random flow-network instance: the initial spanning tree (parent
/// per non-root node, with the basic arc's cost and orientation) plus the
/// candidate arc list. Generated once per config; the IR workload writes it
/// into simulated memory and [`HostMcfApp`] consumes it directly, so both
/// start from the identical network.
#[derive(Debug, Clone)]
pub struct McfAppInstance {
    /// parent\[i\] for every node; entry 0 (the root) is unused.
    pub parent: Vec<usize>,
    /// Basic-arc cost per node (0 for the root).
    pub cost: Vec<i64>,
    /// Basic-arc orientation per node (potential grows through the arc when
    /// nonzero).
    pub orient: Vec<i64>,
    /// Candidate entering arcs as `(from, to, cost, orient)` slot tuples.
    pub arcs: Vec<(usize, usize, i64, i64)>,
    /// The root's (fixed) potential.
    pub base_potential: i64,
}

impl McfAppInstance {
    /// Generates the instance for `config` (deterministic in the seed).
    #[must_use]
    pub fn generate(config: &McfAppConfig) -> Self {
        let n = config.nodes;
        assert!(n >= 2, "the network needs a root and at least one node");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut parent = vec![0usize; n];
        for (i, p) in parent.iter_mut().enumerate().skip(1) {
            *p = rng.gen_range(0..i);
        }
        let mut cost = vec![0i64; n];
        let mut orient = vec![0i64; n];
        orient[0] = 1;
        for i in 1..n {
            cost[i] = rng.gen_range(1..=500);
            orient[i] = i64::from(rng.gen_bool(0.5));
        }
        let mut arcs = Vec::with_capacity(config.arcs);
        for _ in 0..config.arcs {
            let (u, v) = loop {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(1..n);
                if u != v {
                    break (u, v);
                }
            };
            arcs.push((u, v, rng.gen_range(1..=500), i64::from(rng.gen_bool(0.5))));
        }
        McfAppInstance {
            parent,
            cost,
            orient,
            arcs,
            base_potential: rng.gen_range(1_000..=2_000),
        }
    }
}

/// Folds every node's potential from the root through the current
/// `pred`/`cost`/`orient` chain — the value the refresh loop leaves behind
/// (it visits parents before children, so the traversal result equals the
/// path fold).
fn chain_potentials(parent: &[usize], cost: &[i64], orient: &[i64], base: i64) -> Vec<i64> {
    let n = parent.len();
    const UNSET: i64 = i64::MIN;
    let mut pot = vec![UNSET; n];
    pot[0] = base;
    let mut stack = Vec::new();
    for i in 1..n {
        if pot[i] != UNSET {
            continue;
        }
        stack.clear();
        let mut cur = i;
        while pot[cur] == UNSET {
            stack.push(cur);
            cur = parent[cur];
        }
        let mut p = pot[cur];
        for &s in stack.iter().rev() {
            p = if orient[s] != 0 {
                p + cost[s]
            } else {
                p - cost[s]
            };
            pot[s] = p;
        }
    }
    pot
}

/// One pivot of the network-simplex reference: arc selection, validity
/// check, basis exchange and potential refresh over slot-indexed host
/// arrays. This is the single reference implementation behind both
/// [`HostMcfApp`] and the per-invocation expectation the workload hands to
/// `run_workload_on`; it mirrors the kernel's integer arithmetic exactly.
/// Returns the pivot's checksum (the sum of all non-root potentials).
fn host_pivot(
    parent: &mut [usize],
    cost: &mut [i64],
    orient: &mut [i64],
    potential: &mut Vec<i64>,
    arcs: &[(usize, usize, i64, i64)],
    base_potential: i64,
) -> i64 {
    // Entering-arc selection: most negative reduced cost, first wins ties
    // (the kernel scans ascending with a strict comparison).
    let mut best: i64 = -1;
    let mut best_red: i64 = 0;
    for (i, &(u, v, c, o)) in arcs.iter().enumerate() {
        let cand = if o != 0 {
            potential[u] + c
        } else {
            potential[u] - c
        };
        let red = cand - potential[v];
        if red < best_red {
            best = i as i64;
            best_red = red;
        }
    }
    if best >= 0 {
        let (u, v, c, o) = arcs[best as usize];
        // The root keeps its basic arc; a node may not become its own
        // ancestor (climb from `u` through pred; mirrors the kernel's
        // null-check-first climb).
        let acyclic = v != 0 && {
            let mut cur = u;
            loop {
                if cur == v {
                    break false;
                }
                if cur == 0 {
                    break true;
                }
                cur = parent[cur];
            }
        };
        if acyclic {
            parent[v] = u;
            cost[v] = c;
            orient[v] = o;
        }
    }
    *potential = chain_potentials(parent, cost, orient, base_potential);
    potential[1..].iter().sum()
}

/// The pure-host mini-application: the same network simplex as the IR
/// program, over plain Rust arrays. One [`HostMcfApp::pivot`] call per
/// benchmark invocation; never touches simulated memory, so it is the
/// independent leg of the three-way differential test.
#[derive(Debug, Clone)]
pub struct HostMcfApp {
    parent: Vec<usize>,
    cost: Vec<i64>,
    orient: Vec<i64>,
    potential: Vec<i64>,
    arcs: Vec<(usize, usize, i64, i64)>,
    base_potential: i64,
}

impl HostMcfApp {
    /// Builds the host application for `config`'s generated instance.
    #[must_use]
    pub fn new(config: &McfAppConfig) -> Self {
        HostMcfApp::from_instance(McfAppInstance::generate(config))
    }

    /// Builds the host application from an explicit instance.
    #[must_use]
    pub fn from_instance(inst: McfAppInstance) -> Self {
        let potential =
            chain_potentials(&inst.parent, &inst.cost, &inst.orient, inst.base_potential);
        HostMcfApp {
            parent: inst.parent,
            cost: inst.cost,
            orient: inst.orient,
            potential,
            arcs: inst.arcs,
            base_potential: inst.base_potential,
        }
    }

    /// Runs one pivot and returns its checksum (sum of non-root potentials).
    pub fn pivot(&mut self) -> i64 {
        host_pivot(
            &mut self.parent,
            &mut self.cost,
            &mut self.orient,
            &mut self.potential,
            &self.arcs,
            self.base_potential,
        )
    }

    /// The node potentials after the last pivot (root included).
    #[must_use]
    pub fn potentials(&self) -> &[i64] {
        &self.potential
    }
}

/// The miniature network-simplex application workload. See the module docs.
#[derive(Debug, Clone)]
pub struct McfAppWorkload {
    config: McfAppConfig,
    instance: McfAppInstance,
    arena: Option<RecordArena>,
    arcs_base: i64,
}

impl McfAppWorkload {
    /// Creates the workload for `config` (instance generated immediately).
    #[must_use]
    pub fn new(config: McfAppConfig) -> Self {
        let instance = McfAppInstance::generate(&config);
        McfAppWorkload {
            config,
            instance,
            arena: None,
            arcs_base: 0,
        }
    }

    /// The generated network instance (for differential tests).
    #[must_use]
    pub fn instance(&self) -> &McfAppInstance {
        &self.instance
    }

    /// Number of nodes in the network.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.config.nodes
    }

    fn arena(&self) -> &RecordArena {
        self.arena.as_ref().expect("build() must be called first")
    }

    /// Reads node `i`'s potential from simulated memory.
    ///
    /// # Panics
    ///
    /// Panics if `build()` has not run or the read is out of bounds.
    #[must_use]
    pub fn potential(&self, mem: &FlatMemory, i: usize) -> i64 {
        self.arena().read(mem, i, POTENTIAL).expect("in bounds")
    }

    /// Snapshots the network state *from simulated memory* into host arrays
    /// — the basis for the per-invocation expectation, so the reference
    /// follows whatever state the kernel actually left behind.
    fn snapshot(&self, mem: &FlatMemory) -> (Vec<usize>, Vec<i64>, Vec<i64>, Vec<i64>) {
        let n = self.config.nodes;
        let arena = self.arena();
        let mut parent = vec![0usize; n];
        let mut cost = vec![0i64; n];
        let mut orient = vec![0i64; n];
        let mut potential = vec![0i64; n];
        for i in 0..n {
            potential[i] = arena.read(mem, i, POTENTIAL).expect("in bounds");
            cost[i] = arena.read(mem, i, COST).expect("in bounds");
            orient[i] = arena.read(mem, i, ORIENT).expect("in bounds");
            if i > 0 {
                let pred = arena.read(mem, i, PRED).expect("in bounds");
                parent[i] = arena.slot_of(pred).expect("pred points at a node");
            }
        }
        (parent, cost, orient, potential)
    }

    /// Rebuilds the child/sibling links in simulated memory from the current
    /// `pred` fields, children in ascending slot order — the host mirror of
    /// the relink the IR performs each pivot, used only to seed the initial
    /// image.
    fn relink_initial(&self, mem: &mut FlatMemory) {
        let n = self.config.nodes;
        let arena = self.arena();
        let mut last_child = vec![0i64; n];
        for i in 0..n {
            arena.write(mem, i, CHILD, 0).expect("in bounds");
            arena.write(mem, i, SIBLING, 0).expect("in bounds");
        }
        for i in 1..n {
            let p = self.instance.parent[i];
            let addr = arena.addr(i);
            if last_child[p] == 0 {
                arena.write(mem, p, CHILD, addr).expect("in bounds");
            } else {
                let last = arena.slot_of(last_child[p]).expect("node addr");
                arena.write(mem, last, SIBLING, addr).expect("in bounds");
            }
            last_child[p] = addr;
        }
    }
}

/// Builds `select_entering_arc`: scans the arc list and returns the index of
/// the arc with the most negative reduced cost, or −1 when every reduced
/// cost is non-negative (the basis is optimal — the pivot degenerates to a
/// bare refresh).
fn build_select(program: &mut Program, arcs_base: i64, n_arcs: i64) -> FuncId {
    let mut b = FunctionBuilder::new("select_entering_arc");
    let header = b.new_labeled_block("sel.header");
    let body = b.new_labeled_block("sel.body");
    let latch = b.new_labeled_block("sel.latch");
    let exit = b.new_labeled_block("sel.exit");
    let i = b.copy(0i64);
    let best = b.copy(-1i64);
    let best_red = b.copy(0i64);
    b.br(header);
    b.switch_to(header);
    let done = b.binop(BinOp::Ge, i, n_arcs);
    b.cond_br(done, exit, body);
    b.switch_to(body);
    let off = b.binop(BinOp::Mul, i, ARC_WORDS);
    let rec = b.binop(BinOp::Add, off, arcs_base);
    let from = b.load(rec, AFROM);
    let to = b.load(rec, ATO);
    let c = b.load(rec, ACOST);
    let o = b.load(rec, AORIENT);
    let pf = b.load(from, POTENTIAL);
    let pt = b.load(to, POTENTIAL);
    let up = b.binop(BinOp::Add, pf, c);
    let down = b.binop(BinOp::Sub, pf, c);
    let cand = b.select(o, up, down);
    let red = b.binop(BinOp::Sub, cand, pt);
    let better = b.binop(BinOp::Lt, red, best_red);
    let nb = b.select(better, i, best);
    b.copy_into(best, nb);
    let nr = b.select(better, red, best_red);
    b.copy_into(best_red, nr);
    b.br(latch);
    b.switch_to(latch);
    let i2 = b.binop(BinOp::Add, i, 1i64);
    b.copy_into(i, i2);
    b.br(header);
    b.switch_to(exit);
    b.ret(Some(Operand::Reg(best)));
    program.add_func(b.finish())
}

/// Builds `apply_basis_exchange(arc_idx)`: validity check (ancestry climb),
/// basic-arc rewrite, and the full child/sibling relink from the `pred`
/// fields (IR form of the driver's old `relink_tree`, with a `last_child`
/// scratch array). Returns 1 when the exchange was applied.
#[allow(clippy::too_many_arguments)]
fn build_update(
    program: &mut Program,
    tree_base: i64,
    scratch_base: i64,
    arcs_base: i64,
    root: i64,
    n_nodes: i64,
) -> FuncId {
    let mut b = FunctionBuilder::new("apply_basis_exchange");
    let idx = b.param();
    let check = b.new_labeled_block("upd.check");
    let climb_h = b.new_labeled_block("upd.climb");
    let climb_chk = b.new_labeled_block("upd.climb_chk");
    let climb_step = b.new_labeled_block("upd.climb_step");
    let apply = b.new_labeled_block("upd.apply");
    let clear_h = b.new_labeled_block("upd.clear_header");
    let clear_body = b.new_labeled_block("upd.clear_body");
    let link_h = b.new_labeled_block("upd.link_header");
    let link_body = b.new_labeled_block("upd.link_body");
    let link_first = b.new_labeled_block("upd.link_first");
    let link_sib = b.new_labeled_block("upd.link_sibling");
    let link_done = b.new_labeled_block("upd.link_done");
    let exit = b.new_labeled_block("upd.exit");

    let applied = b.copy(0i64);
    let u = b.copy(0i64);
    let v = b.copy(0i64);
    let c = b.copy(0i64);
    let o = b.copy(0i64);
    let cur = b.copy(0i64);
    let i = b.copy(0i64);
    let j = b.copy(1i64);
    let has = b.binop(BinOp::Ge, idx, 0i64);
    b.cond_br(has, check, clear_h);

    b.switch_to(check);
    let off = b.binop(BinOp::Mul, idx, ARC_WORDS);
    let rec = b.binop(BinOp::Add, off, arcs_base);
    b.load_into(u, rec, AFROM);
    b.load_into(v, rec, ATO);
    b.load_into(c, rec, ACOST);
    b.load_into(o, rec, AORIENT);
    let v_is_root = b.binop(BinOp::Eq, v, root);
    b.copy_into(cur, u);
    b.cond_br(v_is_root, clear_h, climb_h);

    // Ancestry climb from `u`: reaching the null pred validates the pivot,
    // meeting `v` on the way up would create a cycle.
    b.switch_to(climb_h);
    let at_top = b.binop(BinOp::Eq, cur, 0i64);
    b.cond_br(at_top, apply, climb_chk);
    b.switch_to(climb_chk);
    let cyc = b.binop(BinOp::Eq, cur, v);
    b.cond_br(cyc, clear_h, climb_step);
    b.switch_to(climb_step);
    let up_ptr = b.load(cur, PRED);
    b.copy_into(cur, up_ptr);
    b.br(climb_h);

    b.switch_to(apply);
    b.store(u, v, PRED);
    b.store(c, v, COST);
    b.store(o, v, ORIENT);
    b.copy_into(applied, 1i64);
    b.br(clear_h);

    // Phase 1 of the relink: zero every child/sibling link and the
    // last_child scratch slot.
    b.switch_to(clear_h);
    let cdone = b.binop(BinOp::Ge, i, n_nodes);
    b.cond_br(cdone, link_h, clear_body);
    b.switch_to(clear_body);
    let noff = b.binop(BinOp::Mul, i, RECORD_WORDS);
    let node = b.binop(BinOp::Add, noff, tree_base);
    b.store(0i64, node, CHILD);
    b.store(0i64, node, SIBLING);
    let sl = b.binop(BinOp::Add, i, scratch_base);
    b.store(0i64, sl, 0);
    let i2 = b.binop(BinOp::Add, i, 1i64);
    b.copy_into(i, i2);
    b.br(clear_h);

    // Phase 2: append every non-root node to its parent's child list in
    // ascending slot order (first via `child`, later via the previous
    // child's `sibling`, tracked per parent in the scratch array).
    b.switch_to(link_h);
    let ldone = b.binop(BinOp::Ge, j, n_nodes);
    b.cond_br(ldone, exit, link_body);
    b.switch_to(link_body);
    let joff = b.binop(BinOp::Mul, j, RECORD_WORDS);
    let jnode = b.binop(BinOp::Add, joff, tree_base);
    let p = b.load(jnode, PRED);
    let pdelta = b.binop(BinOp::Sub, p, tree_base);
    let pslot = b.binop(BinOp::Div, pdelta, RECORD_WORDS);
    let pscratch = b.binop(BinOp::Add, pslot, scratch_base);
    let last = b.load(pscratch, 0);
    let have_last = b.binop(BinOp::Ne, last, 0i64);
    b.cond_br(have_last, link_sib, link_first);
    b.switch_to(link_first);
    b.store(jnode, p, CHILD);
    b.br(link_done);
    b.switch_to(link_sib);
    b.store(jnode, last, SIBLING);
    b.br(link_done);
    b.switch_to(link_done);
    b.store(jnode, pscratch, 0);
    let j2 = b.binop(BinOp::Add, j, 1i64);
    b.copy_into(j, j2);
    b.br(link_h);

    b.switch_to(exit);
    b.ret(Some(Operand::Reg(applied)));
    program.add_func(b.finish())
}

impl SpiceWorkload for McfAppWorkload {
    fn name(&self) -> &'static str {
        "mcf_app"
    }

    fn description(&self) -> &'static str {
        "miniature network simplex (hotness measured, not quoted)"
    }

    fn loop_name(&self) -> &'static str {
        "refresh_potential_true"
    }

    fn paper_hotness(&self) -> f64 {
        // The paper's Table 2 number for 181.mcf — kept as the comparison
        // column next to the *measured* whole-program hotness.
        0.30
    }

    fn conflict_policy(&self) -> ConflictPolicy {
        // The refresh loop chains potentials through `pred->potential`; the
        // conflict-detection subsystem is load-bearing for correctness.
        ConflictPolicy::Detect
    }

    fn build(&mut self) -> BuiltKernel {
        let n = self.config.nodes;
        let m = self.config.arcs;
        let mut program = Program::new();
        let tree_base =
            program.add_global("mcf_app.tree", RecordArena::words_needed(RECORD_WORDS, n));
        let arcs_base = program.add_global("mcf_app.arcs", ARC_WORDS * m as i64);
        let scratch_base = program.add_global("mcf_app.last_child", n as i64);
        self.arena = Some(RecordArena::new(tree_base, RECORD_WORDS, n));
        self.arcs_base = arcs_base;
        let root = tree_base;

        let select = build_select(&mut program, arcs_base, m as i64);
        let update = build_update(
            &mut program,
            tree_base,
            scratch_base,
            arcs_base,
            root,
            n as i64,
        );

        // mcf_app() -> checksum: one pivot — the serial phases as calls,
        // then the refresh walk inline (the Spice target loop).
        let mut b = FunctionBuilder::new("mcf_app");
        let pre = b.new_labeled_block("preheader");
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let descend = b.new_labeled_block("descend");
        let climb = b.new_labeled_block("climb");
        let climb_pred = b.new_labeled_block("climb_pred");
        let take_sibling = b.new_labeled_block("take_sibling");
        let at_root = b.new_labeled_block("at_root");
        let latch = b.new_labeled_block("latch");
        let exit = b.new_labeled_block("exit");

        let idx = b.call(select, vec![]);
        let _applied = b.call(update, vec![Operand::Reg(idx)]);
        let node = b.copy(0i64);
        let checksum = b.copy(0i64);
        let first = b.load(root, CHILD);
        b.copy_into(node, first);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);

        b.switch_to(header);
        let done = b.binop(BinOp::Eq, node, 0i64);
        b.cond_br(done, exit, body);

        // body: the faithful potential chain (pred->potential), and the
        // checksum accumulates the potentials themselves so the scalar
        // result is data-dependent on every store.
        b.switch_to(body);
        let cost = b.load(node, COST);
        let orient = b.load(node, ORIENT);
        let pred_ptr = b.load(node, PRED);
        let basis = b.load(pred_ptr, POTENTIAL);
        let up = b.binop(BinOp::Add, basis, cost);
        let down = b.binop(BinOp::Sub, basis, cost);
        let pot = b.select(orient, up, down);
        b.store(pot, node, POTENTIAL);
        let ck = b.binop(BinOp::Add, checksum, pot);
        b.copy_into(checksum, ck);
        let child = b.load(node, CHILD);
        let has_child = b.binop(BinOp::Ne, child, 0i64);
        b.cond_br(has_child, descend, climb);

        b.switch_to(descend);
        b.copy_into(node, child);
        b.br(latch);

        b.switch_to(climb);
        let sib = b.load(node, SIBLING);
        let has_sib = b.binop(BinOp::Ne, sib, 0i64);
        b.cond_br(has_sib, take_sibling, climb_pred);

        b.switch_to(climb_pred);
        let pred = b.load(node, PRED);
        let at_top = b.binop(BinOp::Eq, pred, 0i64);
        b.copy_into(node, pred);
        b.cond_br(at_top, at_root, climb);

        b.switch_to(take_sibling);
        b.copy_into(node, sib);
        b.br(latch);

        b.switch_to(at_root);
        b.copy_into(node, 0i64);
        b.br(latch);

        b.switch_to(latch);
        b.br(header);

        b.switch_to(exit);
        b.ret(Some(Operand::Reg(checksum)));
        let kernel = program.add_func(b.finish());

        BuiltKernel {
            program,
            kernel,
            loop_header_hint: Some(header),
        }
    }

    fn init(&mut self, mem: &mut FlatMemory) -> Vec<i64> {
        let n = self.config.nodes;
        {
            let arena = self.arena.as_mut().expect("built");
            for _ in 0..n {
                let _ = arena.alloc();
            }
        }
        let inst = self.instance.clone();
        let potentials =
            chain_potentials(&inst.parent, &inst.cost, &inst.orient, inst.base_potential);
        let arena = self.arena();
        for (i, &pot) in potentials.iter().enumerate() {
            arena.write(mem, i, COST, inst.cost[i]).expect("in bounds");
            arena
                .write(mem, i, ORIENT, inst.orient[i])
                .expect("in bounds");
            let pred = if i == 0 {
                0
            } else {
                arena.addr(inst.parent[i])
            };
            arena.write(mem, i, PRED, pred).expect("in bounds");
            arena.write(mem, i, POTENTIAL, pot).expect("in bounds");
        }
        self.relink_initial(mem);
        for (i, &(u, v, c, o)) in self.instance.arcs.iter().enumerate() {
            let rec = self.arcs_base + ARC_WORDS * i as i64;
            let arena = self.arena();
            mem.write(rec + AFROM, arena.addr(u)).expect("in bounds");
            mem.write(rec + ATO, arena.addr(v)).expect("in bounds");
            mem.write(rec + ACOST, c).expect("in bounds");
            mem.write(rec + AORIENT, o).expect("in bounds");
        }
        Vec::new()
    }

    fn next_invocation(&mut self, _mem: &mut FlatMemory, invocation: usize) -> Option<Vec<i64>> {
        // The application drives itself: every pivot's input state is the
        // previous pivot's output state, with no host-side mutation at all.
        (invocation + 1 < self.config.pivots).then(Vec::new)
    }

    fn expected_result(&self, mem: &FlatMemory) -> Option<i64> {
        let (mut parent, mut cost, mut orient, mut potential) = self.snapshot(mem);
        Some(host_pivot(
            &mut parent,
            &mut cost,
            &mut orient,
            &mut potential,
            &self.instance.arcs,
            self.instance.base_potential,
        ))
    }

    fn expected_iterations(&self) -> u64 {
        (self.config.nodes - 1) as u64
    }

    fn invocations(&self) -> usize {
        self.config.pivots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::interp::run_function;

    fn small_config(seed: u64) -> McfAppConfig {
        McfAppConfig {
            nodes: 70,
            arcs: 160,
            pivots: 10,
            seed,
        }
    }

    #[test]
    fn program_verifies_and_loop_hint_is_the_refresh_header() {
        let mut wl = McfAppWorkload::new(small_config(1));
        let built = wl.build();
        spice_ir::verify::verify_program(&built.program).expect("verified");
        assert_eq!(built.program.funcs.len(), 3);
        assert!(built.loop_header_hint.is_some());
        // The hinted loop exists in the kernel function and carries the
        // faithful pred->potential chain.
        let spec =
            spice_ir::exec::derive_loop_spec(&built.program, built.kernel, built.loop_header_hint)
                .expect("refresh loop is chunkable");
        assert_eq!(spec.cursors.len(), 1, "one speculated cursor (node)");
        assert_eq!(spec.reductions.len(), 1, "the checksum sum reduction");
    }

    #[test]
    fn kernel_pivots_match_the_pure_host_application() {
        for seed in [3u64, 5, 9] {
            let config = small_config(seed);
            let mut wl = McfAppWorkload::new(config.clone());
            let mut host = HostMcfApp::new(&config);
            let built = wl.build();
            let mut mem = FlatMemory::for_program(&built.program, 64 * 1024);
            let mut args = wl.init(&mut mem);
            for inv in 0.. {
                let expected = wl.expected_result(&mem).unwrap();
                let host_ck = host.pivot();
                assert_eq!(
                    expected, host_ck,
                    "seed {seed} pivot {inv}: references diverge"
                );
                let out = run_function(&built.program, built.kernel, &args, &mut mem).unwrap();
                assert_eq!(
                    out.return_value,
                    Some(host_ck),
                    "seed {seed} pivot {inv}: kernel diverged from host"
                );
                for i in 1..config.nodes {
                    assert_eq!(
                        wl.potential(&mem, i),
                        host.potentials()[i],
                        "seed {seed} pivot {inv} node {i}"
                    );
                }
                match wl.next_invocation(&mut mem, inv) {
                    Some(a) => args = a,
                    None => break,
                }
            }
        }
    }

    #[test]
    fn pivots_actually_exchange_the_basis() {
        // The instance must not be degenerate: at least one pivot applies a
        // basis exchange (otherwise the serial phases never mutate the tree
        // and the "application" collapses back into a replayed kernel).
        let config = small_config(7);
        let mut host = HostMcfApp::new(&config);
        let before = host.parent.clone();
        for _ in 0..config.pivots {
            let _ = host.pivot();
        }
        assert_ne!(before, host.parent, "no pivot ever re-parented a node");
    }

    #[test]
    fn checksum_is_data_dependent_on_the_potentials() {
        let config = small_config(11);
        let mut host = HostMcfApp::new(&config);
        let first = host.pivot();
        let expected: i64 = host.potentials()[1..].iter().sum();
        assert_eq!(first, expected);
    }
}
