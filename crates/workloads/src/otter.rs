//! The `otter` workload: the paper's running example (Figure 1).
//!
//! `otter` is a first-order theorem prover; its `find_lightest_cl` loop walks
//! the linked list of usable clauses and returns the one with the smallest
//! `pick_weight`. Between invocations the prover removes the chosen clause
//! and inserts newly generated clauses, so the list mutates a little while
//! most nodes survive — exactly the behaviour Spice's memoizing predictor
//! exploits.
//!
//! The kernel here is the loop of paper Figure 1(a), lowered to `spice-ir`;
//! the driver reproduces the inter-invocation mutation (remove the minimum,
//! insert a few random clauses).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spice_ir::builder::FunctionBuilder;
use spice_ir::interp::FlatMemory;
use spice_ir::{BinOp, FuncId, Operand, Program};

use crate::arena::{ListMirror, RecordArena};
use crate::{BuiltKernel, SpiceWorkload};

const WEIGHT: i64 = 0;
const NEXT: i64 = 1;
const RECORD_WORDS: i64 = 2;

/// Configuration of the otter workload.
#[derive(Debug, Clone)]
pub struct OtterConfig {
    /// Initial number of clauses on the list.
    pub initial_len: usize,
    /// Clauses inserted after each invocation.
    pub inserts_per_invocation: usize,
    /// Number of loop invocations to drive.
    pub invocations: usize,
    /// RNG seed (weights and insertion positions).
    pub seed: u64,
}

impl Default for OtterConfig {
    fn default() -> Self {
        OtterConfig {
            initial_len: 400,
            inserts_per_invocation: 3,
            invocations: 40,
            seed: 0x07734,
        }
    }
}

/// The otter `find_lightest_cl` workload.
#[derive(Debug, Clone)]
pub struct OtterWorkload {
    config: OtterConfig,
    arena: Option<RecordArena>,
    list: ListMirror,
    out_addr: i64,
    rng: StdRng,
}

impl OtterWorkload {
    /// Creates the workload with the given configuration.
    #[must_use]
    pub fn new(config: OtterConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        OtterWorkload {
            config,
            arena: None,
            list: ListMirror::new(NEXT),
            out_addr: 0,
            rng,
        }
    }

    fn capacity(&self) -> usize {
        self.config.initial_len + self.config.inserts_per_invocation * self.config.invocations + 8
    }

    fn arena(&self) -> &RecordArena {
        self.arena.as_ref().expect("build() must be called first")
    }

    fn random_weight(&mut self) -> i64 {
        self.rng.gen_range(1..=1_000_000)
    }

    fn args(&self) -> Vec<i64> {
        vec![self.list.head_addr(self.arena()), self.out_addr]
    }

    /// The minimum clause weight currently on the list (what the kernel must
    /// return).
    #[must_use]
    pub fn reference_min(&self, mem: &FlatMemory) -> i64 {
        let arena = self.arena();
        self.list
            .order
            .iter()
            .map(|&s| arena.read(mem, s, WEIGHT).expect("node in bounds"))
            .min()
            .unwrap_or(i64::MAX)
    }
}

impl SpiceWorkload for OtterWorkload {
    fn name(&self) -> &'static str {
        "otter"
    }

    fn description(&self) -> &'static str {
        "theorem prover for first-order logic"
    }

    fn loop_name(&self) -> &'static str {
        "find_lightest_cl"
    }

    fn paper_hotness(&self) -> f64 {
        0.20
    }

    fn conflict_policy(&self) -> spice_ir::exec::ConflictPolicy {
        // `find_lightest_cl` only reads inside the loop (the argmin store is
        // in the exit block); chunks are independent by construction.
        spice_ir::exec::ConflictPolicy::AssumeIndependent
    }

    fn build(&mut self) -> BuiltKernel {
        let mut program = Program::new();
        let arena_base = program.add_global(
            "otter.clauses",
            RecordArena::words_needed(RECORD_WORDS, self.capacity()),
        );
        self.out_addr = program.add_global("otter.lightest_out", 1);
        let mut arena = RecordArena::new(arena_base, RECORD_WORDS, self.capacity());
        // otter's clause nodes come from a long-lived heap: adjacent list
        // positions have no spatial locality.
        arena.scatter(self.config.seed);
        self.arena = Some(arena);

        // find_lightest(head, out) — paper Figure 1(a).
        let mut b = FunctionBuilder::new("find_lightest_cl");
        let head = b.param();
        let out = b.param();
        let pre = b.new_labeled_block("preheader");
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let exit = b.new_labeled_block("exit");
        let c = b.copy(head);
        let wm = b.copy(i64::MAX);
        let cm = b.copy(0i64);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let w = b.load(c, WEIGHT);
        let better = b.binop(BinOp::Lt, w, wm);
        let new_wm = b.select(better, w, wm);
        b.copy_into(wm, new_wm);
        let new_cm = b.select(better, c, cm);
        b.copy_into(cm, new_cm);
        let next = b.load(c, NEXT);
        b.copy_into(c, next);
        b.br(header);
        b.switch_to(exit);
        b.store(cm, out, 0);
        b.ret(Some(Operand::Reg(wm)));
        let kernel: FuncId = program.add_func(b.finish());

        BuiltKernel {
            program,
            kernel,
            loop_header_hint: None,
        }
    }

    fn init(&mut self, mem: &mut FlatMemory) -> Vec<i64> {
        let n = self.config.initial_len;
        let mut weights = Vec::with_capacity(n);
        for _ in 0..n {
            weights.push(self.random_weight());
        }
        let arena = self.arena.as_mut().expect("build() must be called first");
        for w in weights {
            let slot = arena.alloc().expect("arena capacity");
            arena.write(mem, slot, WEIGHT, w).expect("in bounds");
            self.list.insert_at(usize::MAX, slot);
        }
        self.list.relink(self.arena(), mem).expect("in bounds");
        self.args()
    }

    fn next_invocation(&mut self, mem: &mut FlatMemory, invocation: usize) -> Option<Vec<i64>> {
        if invocation + 1 >= self.config.invocations || self.list.len() <= 2 {
            return None;
        }
        // Remove the clause the previous invocation selected (read back from
        // the kernel's output cell), mirroring otter's use of the lightest
        // clause.
        let chosen_addr = mem.read(self.out_addr).expect("out cell in bounds");
        if let Some(slot) = self.arena().slot_of(chosen_addr) {
            if let Some(pos) = self.list.position_of(slot) {
                let removed = self.list.remove_at(pos);
                self.arena.as_mut().expect("built").release(removed);
            }
        }
        // Insert freshly generated clauses at random positions.
        for _ in 0..self.config.inserts_per_invocation {
            let w = self.random_weight();
            let pos = self.rng.gen_range(0..=self.list.len());
            let arena = self.arena.as_mut().expect("built");
            if let Some(slot) = arena.alloc() {
                arena.write(mem, slot, WEIGHT, w).expect("in bounds");
                self.list.insert_at(pos, slot);
            }
        }
        self.list.relink(self.arena(), mem).expect("in bounds");
        Some(self.args())
    }

    fn expected_result(&self, mem: &FlatMemory) -> Option<i64> {
        Some(self.reference_min(mem))
    }

    fn expected_iterations(&self) -> u64 {
        self.list.len().max(self.config.initial_len) as u64
    }

    fn invocations(&self) -> usize {
        self.config.invocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::interp::run_function;

    #[test]
    fn sequential_kernel_finds_minimum_every_invocation() {
        let mut wl = OtterWorkload::new(OtterConfig {
            initial_len: 50,
            inserts_per_invocation: 2,
            invocations: 8,
            seed: 7,
        });
        let built = wl.build();
        let mut mem = FlatMemory::for_program(&built.program, 64 * 1024);
        let mut args = wl.init(&mut mem);
        for inv in 0.. {
            let expected = wl.expected_result(&mem).unwrap();
            let out = run_function(&built.program, built.kernel, &args, &mut mem).unwrap();
            assert_eq!(out.return_value, Some(expected), "invocation {inv}");
            match wl.next_invocation(&mut mem, inv) {
                Some(a) => args = a,
                None => break,
            }
        }
    }

    #[test]
    fn list_shrinks_and_grows_as_configured() {
        let mut wl = OtterWorkload::new(OtterConfig {
            initial_len: 10,
            inserts_per_invocation: 3,
            invocations: 5,
            seed: 1,
        });
        let built = wl.build();
        let mut mem = FlatMemory::for_program(&built.program, 16 * 1024);
        let args = wl.init(&mut mem);
        assert_eq!(wl.list.len(), 10);
        // Run once so the output cell holds the lightest clause.
        run_function(&built.program, built.kernel, &args, &mut mem).unwrap();
        let next = wl.next_invocation(&mut mem, 0).unwrap();
        // One removed, three inserted.
        assert_eq!(wl.list.len(), 12);
        assert_eq!(next.len(), 2);
        assert_eq!(wl.name(), "otter");
        assert!(wl.expected_iterations() >= 10);
    }

    #[test]
    fn driver_terminates_after_configured_invocations() {
        let mut wl = OtterWorkload::new(OtterConfig {
            initial_len: 8,
            inserts_per_invocation: 1,
            invocations: 3,
            seed: 2,
        });
        let built = wl.build();
        let mut mem = FlatMemory::for_program(&built.program, 16 * 1024);
        let args = wl.init(&mut mem);
        run_function(&built.program, built.kernel, &args, &mut mem).unwrap();
        assert!(wl.next_invocation(&mut mem, 0).is_some());
        run_function(&built.program, built.kernel, &args, &mut mem).unwrap();
        assert!(wl.next_invocation(&mut mem, 1).is_some());
        assert!(wl.next_invocation(&mut mem, 2).is_none());
    }
}
