//! Helpers for building linked data structures inside the simulated flat
//! memory, with a host-side mirror so drivers can mutate them between loop
//! invocations (insertions, deletions, re-linking) the way the original
//! applications do.

use spice_ir::interp::FlatMemory;
use spice_ir::TrapKind;

/// A fixed-capacity arena of equally sized records living in a global of the
/// simulated program.
///
/// Records are addressed by slot index; the arena hands out free slots and
/// recycles released ones, mimicking a malloc'd heap whose nodes keep their
/// addresses while the logical structure (list order, tree shape) changes —
/// the property Spice's value prediction relies on.
#[derive(Debug, Clone)]
pub struct RecordArena {
    base: i64,
    record_words: i64,
    capacity: usize,
    free: Vec<usize>,
    live: Vec<bool>,
}

impl RecordArena {
    /// Creates an arena over a global starting at `base` with room for
    /// `capacity` records of `record_words` words each.
    #[must_use]
    pub fn new(base: i64, record_words: i64, capacity: usize) -> Self {
        RecordArena {
            base,
            record_words,
            capacity,
            free: (0..capacity).rev().collect(),
            live: vec![false; capacity],
        }
    }

    /// Number of words a program must reserve for this arena.
    #[must_use]
    pub fn words_needed(record_words: i64, capacity: usize) -> i64 {
        record_words * capacity as i64
    }

    /// The simulated-memory address of record `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn addr(&self, slot: usize) -> i64 {
        assert!(slot < self.capacity, "slot out of range");
        self.base + self.record_words * slot as i64
    }

    /// The slot whose record starts at `addr`, if any.
    #[must_use]
    pub fn slot_of(&self, addr: i64) -> Option<usize> {
        if addr < self.base {
            return None;
        }
        let off = addr - self.base;
        if off % self.record_words != 0 {
            return None;
        }
        let slot = (off / self.record_words) as usize;
        (slot < self.capacity).then_some(slot)
    }

    /// Shuffles the allocation order deterministically so that records
    /// allocated one after another do not land on adjacent addresses —
    /// mimicking a long-lived malloc heap where logically adjacent list nodes
    /// have no spatial locality (the regime the paper's pointer-chasing
    /// loops run in).
    pub fn scatter(&mut self, seed: u64) {
        let mut state = seed | 1;
        let mut next = || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            state
        };
        for i in (1..self.free.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            self.free.swap(i, j);
        }
    }

    /// Allocates a record slot, or `None` if the arena is full.
    pub fn alloc(&mut self) -> Option<usize> {
        let slot = self.free.pop()?;
        self.live[slot] = true;
        Some(slot)
    }

    /// Releases a record slot back to the arena.
    ///
    /// # Panics
    ///
    /// Panics if the slot was not live.
    pub fn release(&mut self, slot: usize) {
        assert!(self.live[slot], "releasing a slot that is not live");
        self.live[slot] = false;
        self.free.push(slot);
    }

    /// Number of live records.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Writes field `field` of record `slot`.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds faults from the underlying memory.
    pub fn write(
        &self,
        mem: &mut FlatMemory,
        slot: usize,
        field: i64,
        value: i64,
    ) -> Result<(), TrapKind> {
        mem.write(self.addr(slot) + field, value)
    }

    /// Reads field `field` of record `slot`.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds faults from the underlying memory.
    pub fn read(&self, mem: &FlatMemory, slot: usize, field: i64) -> Result<i64, TrapKind> {
        mem.read(self.addr(slot) + field)
    }
}

/// A host-side mirror of a singly linked list whose nodes live in a
/// [`RecordArena`]. Field 0 of each record is workload-defined (weight,
/// gain, ...); the field holding the `next` pointer is configurable.
#[derive(Debug, Clone)]
pub struct ListMirror {
    /// Slots in list order.
    pub order: Vec<usize>,
    next_field: i64,
}

impl ListMirror {
    /// Creates an empty list whose `next` pointers live at `next_field`.
    #[must_use]
    pub fn new(next_field: i64) -> Self {
        ListMirror {
            order: Vec::new(),
            next_field,
        }
    }

    /// Head address of the list (0 when empty).
    #[must_use]
    pub fn head_addr(&self, arena: &RecordArena) -> i64 {
        self.order.first().map_or(0, |&s| arena.addr(s))
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Rewrites every `next` pointer in simulated memory to match the mirror.
    ///
    /// # Errors
    ///
    /// Propagates out-of-bounds faults from the underlying memory.
    pub fn relink(&self, arena: &RecordArena, mem: &mut FlatMemory) -> Result<(), TrapKind> {
        for (i, &slot) in self.order.iter().enumerate() {
            let next = if i + 1 < self.order.len() {
                arena.addr(self.order[i + 1])
            } else {
                0
            };
            arena.write(mem, slot, self.next_field, next)?;
        }
        Ok(())
    }

    /// Inserts `slot` at `position` (clamped to the list length).
    pub fn insert_at(&mut self, position: usize, slot: usize) {
        let pos = position.min(self.order.len());
        self.order.insert(pos, slot);
    }

    /// Removes and returns the node at `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    pub fn remove_at(&mut self, position: usize) -> usize {
        self.order.remove(position)
    }

    /// Position of `slot` in the list, if present.
    #[must_use]
    pub fn position_of(&self, slot: usize) -> Option<usize> {
        self.order.iter().position(|&s| s == slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> FlatMemory {
        FlatMemory::new(16 * 1024)
    }

    #[test]
    fn arena_addresses_are_spaced_by_record_size() {
        let a = RecordArena::new(2048, 4, 16);
        assert_eq!(a.addr(0), 2048);
        assert_eq!(a.addr(3), 2048 + 12);
        assert_eq!(a.slot_of(2048 + 12), Some(3));
        assert_eq!(a.slot_of(2048 + 13), None);
        assert_eq!(a.slot_of(100), None);
        assert_eq!(RecordArena::words_needed(4, 16), 64);
    }

    #[test]
    fn alloc_and_release_recycle_slots() {
        let mut a = RecordArena::new(2048, 2, 4);
        let s0 = a.alloc().unwrap();
        let s1 = a.alloc().unwrap();
        assert_ne!(s0, s1);
        assert_eq!(a.live_count(), 2);
        a.release(s0);
        assert_eq!(a.live_count(), 1);
        let s2 = a.alloc().unwrap();
        assert_eq!(s2, s0, "released slots are recycled");
        // Exhaust.
        let _ = a.alloc().unwrap();
        let _ = a.alloc().unwrap();
        assert!(a.alloc().is_none());
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_release_panics() {
        let mut a = RecordArena::new(2048, 2, 4);
        let s = a.alloc().unwrap();
        a.release(s);
        a.release(s);
    }

    #[test]
    fn list_mirror_relinks_memory() {
        let mut m = mem();
        let mut arena = RecordArena::new(2048, 2, 8);
        let mut list = ListMirror::new(1);
        for w in [5i64, 9, 1] {
            let s = arena.alloc().unwrap();
            arena.write(&mut m, s, 0, w).unwrap();
            list.insert_at(usize::MAX, s);
        }
        list.relink(&arena, &mut m).unwrap();
        // Walk the list in simulated memory.
        let mut cur = list.head_addr(&arena);
        let mut seen = Vec::new();
        while cur != 0 {
            seen.push(m.read(cur).unwrap());
            cur = m.read(cur + 1).unwrap();
        }
        assert_eq!(seen, vec![5, 9, 1]);

        // Remove the middle node and relink: the walk skips it.
        let removed = list.remove_at(1);
        arena.release(removed);
        list.relink(&arena, &mut m).unwrap();
        let mut cur = list.head_addr(&arena);
        let mut seen = Vec::new();
        while cur != 0 {
            seen.push(m.read(cur).unwrap());
            cur = m.read(cur + 1).unwrap();
        }
        assert_eq!(seen, vec![5, 1]);
    }

    #[test]
    fn empty_list_has_null_head() {
        let arena = RecordArena::new(2048, 2, 8);
        let list = ListMirror::new(1);
        assert_eq!(list.head_addr(&arena), 0);
        assert!(list.is_empty());
    }
}
