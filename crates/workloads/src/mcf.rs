//! The `181.mcf` workload: the `refresh_potential` spanning-tree walk.
//!
//! MCF's network simplex keeps a spanning tree of the flow network; after
//! each pivot, `refresh_potential` walks the whole tree (first-child /
//! next-sibling links, climbing back up through parent pointers) and
//! recomputes every node's potential. The walk is a pointer-chasing loop
//! with an inner "climb" loop of data-dependent length — the source of the
//! load imbalance the paper observes for this benchmark — and it stores to
//! every node it visits, which exercises the speculative store buffers.
//!
//! Two kernels share the traversal (see `DESIGN.md` §3.4):
//!
//! * [`McfWorkload::new`] — the **dependence-free control**: the potential is
//!   computed from the node's own fields and a per-invocation base value.
//!   Parallel chunks are independent by construction, so this variant
//!   measures the speculation machinery with no conflicts in play.
//! * [`McfWorkload::new_faithful`] — the **faithful kernel**
//!   (`mcf_refresh_potential_true`): like the real `refresh_potential`, the
//!   potential is computed from `node->pred->potential`, a cross-chunk
//!   memory flow dependence. A speculative chunk whose start node's ancestors
//!   were updated by an earlier chunk reads their *stale* potentials, so the
//!   conflict-detection subsystem (`ConflictPolicy::Detect`) must catch the
//!   RAW violation at commit and squash for results to stay bit-identical to
//!   sequential execution — exactly the hardware contract the paper assumes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spice_ir::builder::FunctionBuilder;
use spice_ir::interp::FlatMemory;
use spice_ir::{BinOp, Operand, Program};

use crate::arena::RecordArena;
use crate::{BuiltKernel, SpiceWorkload};

const POTENTIAL: i64 = 0;
const COST: i64 = 1;
const ORIENT: i64 = 2;
const PRED: i64 = 3;
const CHILD: i64 = 4;
const SIBLING: i64 = 5;
const RECORD_WORDS: i64 = 6;

/// Configuration of the mcf workload.
#[derive(Debug, Clone)]
pub struct McfConfig {
    /// Nodes in the spanning tree (root included).
    pub nodes: usize,
    /// Kernel invocations to drive (simplex pivots).
    pub invocations: usize,
    /// Arc-cost updates between invocations.
    pub cost_updates_per_invocation: usize,
    /// Leaf re-parentings between invocations (tree shape churn).
    pub reparents_per_invocation: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for McfConfig {
    fn default() -> Self {
        McfConfig {
            nodes: 600,
            invocations: 40,
            cost_updates_per_invocation: 8,
            reparents_per_invocation: 1,
            seed: 0x6d6366,
        }
    }
}

/// The `refresh_potential` workload.
#[derive(Debug, Clone)]
pub struct McfWorkload {
    config: McfConfig,
    /// Faithful kernel (potential from `pred->potential`) vs. the
    /// dependence-free control (potential from the node's own fields).
    faithful: bool,
    arena: Option<RecordArena>,
    /// parent[i] for every node except the root (node 0).
    parent: Vec<usize>,
    base_potential: i64,
    rng: StdRng,
}

impl McfWorkload {
    /// Creates the dependence-free control variant (see the module docs).
    #[must_use]
    pub fn new(config: McfConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        McfWorkload {
            config,
            faithful: false,
            arena: None,
            parent: Vec::new(),
            base_potential: 0,
            rng,
        }
    }

    /// Creates the faithful `mcf_refresh_potential_true` variant: every
    /// node's potential is computed from its predecessor's, carrying a
    /// cross-chunk memory flow dependence that only runs correctly under
    /// conflict detection.
    #[must_use]
    pub fn new_faithful(config: McfConfig) -> Self {
        McfWorkload {
            faithful: true,
            ..McfWorkload::new(config)
        }
    }

    fn arena(&self) -> &RecordArena {
        self.arena.as_ref().expect("build() must be called first")
    }

    fn args(&self) -> Vec<i64> {
        vec![self.arena().addr(0), self.base_potential]
    }

    /// Rewrites the child/sibling links in simulated memory from the
    /// host-side parent table. Children are linked in ascending node order.
    fn relink_tree(&self, mem: &mut FlatMemory) {
        let n = self.config.nodes;
        let arena = self.arena();
        let mut first_child = vec![0usize; n];
        let mut last_child = vec![0usize; n];
        for i in 0..n {
            arena.write(mem, i, CHILD, 0).expect("in bounds");
            arena.write(mem, i, SIBLING, 0).expect("in bounds");
        }
        arena.write(mem, 0, PRED, 0).expect("in bounds");
        for i in 1..n {
            let p = self.parent[i];
            arena.write(mem, i, PRED, arena.addr(p)).expect("in bounds");
            if first_child[p] == 0 {
                first_child[p] = i;
                last_child[p] = i;
                arena
                    .write(mem, p, CHILD, arena.addr(i))
                    .expect("in bounds");
            } else {
                let prev = last_child[p];
                arena
                    .write(mem, prev, SIBLING, arena.addr(i))
                    .expect("in bounds");
                last_child[p] = i;
            }
        }
    }

    /// Number of non-root nodes — the value the kernel's checksum returns.
    #[must_use]
    pub fn reference_checksum(&self) -> i64 {
        (self.config.nodes - 1) as i64
    }

    /// The potential every node should hold after an invocation (host
    /// mirror of the kernel's arithmetic). For the faithful variant this
    /// folds the whole predecessor chain, root potential first.
    #[must_use]
    pub fn reference_potential(&self, mem: &FlatMemory, node: usize) -> i64 {
        let arena = self.arena();
        let step = |n: usize, base: i64| -> i64 {
            let cost = arena.read(mem, n, COST).expect("in bounds");
            let orient = arena.read(mem, n, ORIENT).expect("in bounds");
            if orient != 0 {
                base + cost
            } else {
                base - cost
            }
        };
        if !self.faithful {
            return step(node, self.base_potential);
        }
        let mut chain = Vec::new();
        let mut n = node;
        while n != 0 {
            chain.push(n);
            n = self.parent[n];
        }
        let mut pot = self.base_potential; // the root's potential
        for &n in chain.iter().rev() {
            pot = step(n, pot);
        }
        pot
    }
}

impl SpiceWorkload for McfWorkload {
    fn name(&self) -> &'static str {
        if self.faithful {
            "mcf_true"
        } else {
            "181.mcf"
        }
    }

    fn description(&self) -> &'static str {
        if self.faithful {
            "network simplex, faithful pred-potential chain"
        } else {
            "vehicle scheduling (network simplex)"
        }
    }

    fn loop_name(&self) -> &'static str {
        if self.faithful {
            "refresh_potential_true"
        } else {
            "refresh_potential"
        }
    }

    fn paper_hotness(&self) -> f64 {
        0.30
    }

    fn conflict_policy(&self) -> spice_ir::exec::ConflictPolicy {
        // The faithful kernel's pred->potential chain *requires* detection.
        // The dependence-free control keeps Detect too, deliberately: it is
        // the suite's precision probe — the detector must never fire on it
        // (asserted by the fig7 harness), which only means something if the
        // tracking actually runs.
        spice_ir::exec::ConflictPolicy::Detect
    }

    fn build(&mut self) -> BuiltKernel {
        let mut program = Program::new();
        let arena_base = program.add_global(
            "mcf.tree",
            RecordArena::words_needed(RECORD_WORDS, self.config.nodes),
        );
        self.arena = Some(RecordArena::new(
            arena_base,
            RECORD_WORDS,
            self.config.nodes,
        ));

        // refresh_potential(root, base) -> checksum (#nodes updated).
        let mut b = FunctionBuilder::new(if self.faithful {
            "mcf_refresh_potential_true"
        } else {
            "refresh_potential"
        });
        let root = b.param();
        let base = b.param();
        let pre = b.new_labeled_block("preheader");
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let descend = b.new_labeled_block("descend");
        let climb = b.new_labeled_block("climb");
        let climb_pred = b.new_labeled_block("climb_pred");
        let take_sibling = b.new_labeled_block("take_sibling");
        let at_root = b.new_labeled_block("at_root");
        let latch = b.new_labeled_block("latch");
        let exit = b.new_labeled_block("exit");

        let node = b.copy(0i64);
        let checksum = b.copy(0i64);
        let first = b.load(root, CHILD);
        b.copy_into(node, first);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);

        b.switch_to(header);
        let done = b.binop(BinOp::Eq, node, 0i64);
        b.cond_br(done, exit, body);

        // body: recompute this node's potential and bump the checksum. The
        // faithful kernel reads the predecessor's potential — the real
        // `refresh_potential`'s cross-chunk flow dependence — while the
        // control derives it from the invocation-wide base value.
        b.switch_to(body);
        let cost = b.load(node, COST);
        let orient = b.load(node, ORIENT);
        let basis = if self.faithful {
            let pred_ptr = b.load(node, PRED);
            b.load(pred_ptr, POTENTIAL)
        } else {
            base
        };
        let up = b.binop(BinOp::Add, basis, cost);
        let down = b.binop(BinOp::Sub, basis, cost);
        let pot = b.select(orient, up, down);
        b.store(pot, node, POTENTIAL);
        let ck = b.binop(BinOp::Add, checksum, 1i64);
        b.copy_into(checksum, ck);
        let child = b.load(node, CHILD);
        let has_child = b.binop(BinOp::Ne, child, 0i64);
        b.cond_br(has_child, descend, climb);

        b.switch_to(descend);
        b.copy_into(node, child);
        b.br(latch);

        // climb: walk up until a sibling exists or the root is reached.
        b.switch_to(climb);
        let sib = b.load(node, SIBLING);
        let has_sib = b.binop(BinOp::Ne, sib, 0i64);
        b.cond_br(has_sib, take_sibling, climb_pred);

        b.switch_to(climb_pred);
        let pred = b.load(node, PRED);
        let at_top = b.binop(BinOp::Eq, pred, 0i64);
        b.copy_into(node, pred);
        b.cond_br(at_top, at_root, climb);

        b.switch_to(take_sibling);
        b.copy_into(node, sib);
        b.br(latch);

        b.switch_to(at_root);
        b.copy_into(node, 0i64);
        b.br(latch);

        b.switch_to(latch);
        b.br(header);

        b.switch_to(exit);
        b.ret(Some(Operand::Reg(checksum)));
        let kernel = program.add_func(b.finish());

        BuiltKernel {
            program,
            kernel,
            loop_header_hint: None,
        }
    }

    fn init(&mut self, mem: &mut FlatMemory) -> Vec<i64> {
        let n = self.config.nodes;
        self.parent = vec![0; n];
        // Collect RNG choices first to avoid holding two mutable borrows.
        let parents: Vec<usize> = (1..n).map(|i| self.rng.gen_range(0..i)).collect();
        let costs: Vec<(i64, i64)> = (1..n)
            .map(|_| {
                (
                    self.rng.gen_range(1..=500),
                    i64::from(self.rng.gen_bool(0.5)),
                )
            })
            .collect();
        for (i, p) in (1..n).zip(parents) {
            self.parent[i] = p;
        }
        {
            let arena = self.arena.as_mut().expect("built");
            for _ in 0..n {
                let _ = arena.alloc();
            }
        }
        let arena = self.arena();
        for (i, (cost, orient)) in (1..n).zip(costs) {
            arena.write(mem, i, COST, cost).expect("in bounds");
            arena.write(mem, i, ORIENT, orient).expect("in bounds");
        }
        arena.write(mem, 0, COST, 0).expect("in bounds");
        arena.write(mem, 0, ORIENT, 1).expect("in bounds");
        self.relink_tree(mem);
        self.base_potential = self.rng.gen_range(1_000..=2_000);
        // The faithful kernel reads the root's potential through its
        // children's pred pointers; the driver (standing in for the simplex
        // code that maintains the root) keeps it current.
        self.arena()
            .write(mem, 0, POTENTIAL, self.base_potential)
            .expect("in bounds");
        self.args()
    }

    fn next_invocation(&mut self, mem: &mut FlatMemory, invocation: usize) -> Option<Vec<i64>> {
        if invocation + 1 >= self.config.invocations {
            return None;
        }
        let n = self.config.nodes;
        // Arc cost updates (the pivot changed reduced costs).
        for _ in 0..self.config.cost_updates_per_invocation {
            let i = self.rng.gen_range(1..n);
            let cost: i64 = self.rng.gen_range(1..=500);
            self.arena().write(mem, i, COST, cost).expect("in bounds");
        }
        // Occasionally a leaf hangs off a different parent (basis exchange).
        for _ in 0..self.config.reparents_per_invocation {
            let i = self.rng.gen_range(1..n);
            // Only re-parent nodes without children to keep the tree valid.
            let is_leaf = !self.parent.iter().skip(1).any(|&p| p == i);
            if is_leaf {
                let new_parent = self.rng.gen_range(0..i);
                self.parent[i] = new_parent;
            }
        }
        self.relink_tree(mem);
        self.base_potential = self.rng.gen_range(1_000..=2_000);
        self.arena()
            .write(mem, 0, POTENTIAL, self.base_potential)
            .expect("in bounds");
        Some(self.args())
    }

    fn expected_result(&self, _mem: &FlatMemory) -> Option<i64> {
        Some(self.reference_checksum())
    }

    fn expected_iterations(&self) -> u64 {
        (self.config.nodes - 1) as u64
    }

    fn invocations(&self) -> usize {
        self.config.invocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::interp::run_function;

    #[test]
    fn walk_visits_every_node_and_updates_potentials() {
        let mut wl = McfWorkload::new(McfConfig {
            nodes: 80,
            invocations: 6,
            cost_updates_per_invocation: 4,
            reparents_per_invocation: 1,
            seed: 5,
        });
        let built = wl.build();
        let mut mem = FlatMemory::for_program(&built.program, 64 * 1024);
        let mut args = wl.init(&mut mem);
        for inv in 0.. {
            let out = run_function(&built.program, built.kernel, &args, &mut mem).unwrap();
            assert_eq!(
                out.return_value,
                Some(wl.reference_checksum()),
                "invocation {inv}"
            );
            // Every non-root node's potential matches the host mirror.
            for i in 1..80 {
                let got = wl.arena().read(&mem, i, POTENTIAL).unwrap();
                assert_eq!(got, wl.reference_potential(&mem, i), "node {i}");
            }
            match wl.next_invocation(&mut mem, inv) {
                Some(a) => args = a,
                None => break,
            }
        }
    }

    #[test]
    fn faithful_kernel_chains_potentials_through_pred() {
        let mut wl = McfWorkload::new_faithful(McfConfig {
            nodes: 60,
            invocations: 8,
            cost_updates_per_invocation: 3,
            reparents_per_invocation: 2,
            seed: 11,
        });
        assert_eq!(wl.name(), "mcf_true");
        assert_eq!(wl.loop_name(), "refresh_potential_true");
        let built = wl.build();
        let mut mem = FlatMemory::for_program(&built.program, 64 * 1024);
        let mut args = wl.init(&mut mem);
        for inv in 0.. {
            let out = run_function(&built.program, built.kernel, &args, &mut mem).unwrap();
            assert_eq!(out.return_value, Some(59), "invocation {inv}");
            for i in 1..60 {
                assert_eq!(
                    wl.arena().read(&mem, i, POTENTIAL).unwrap(),
                    wl.reference_potential(&mem, i),
                    "node {i} invocation {inv}"
                );
            }
            // Sanity: at least one non-root parent exists eventually, so the
            // chain really is deeper than one hop.
            match wl.next_invocation(&mut mem, inv) {
                Some(a) => args = a,
                None => break,
            }
        }
        assert!(
            (1..60).any(|i| wl.parent[i] != 0),
            "test tree degenerated to a star; deepen the seed"
        );
    }

    #[test]
    fn tree_mutations_preserve_traversal_completeness() {
        let mut wl = McfWorkload::new(McfConfig {
            nodes: 40,
            invocations: 12,
            cost_updates_per_invocation: 2,
            reparents_per_invocation: 3,
            seed: 9,
        });
        let built = wl.build();
        let mut mem = FlatMemory::for_program(&built.program, 32 * 1024);
        let mut args = wl.init(&mut mem);
        for inv in 0..11 {
            let out = run_function(&built.program, built.kernel, &args, &mut mem).unwrap();
            assert_eq!(out.return_value, Some(39));
            args = wl.next_invocation(&mut mem, inv).unwrap();
        }
        assert_eq!(wl.name(), "181.mcf");
        assert_eq!(wl.expected_iterations(), 39);
    }
}
