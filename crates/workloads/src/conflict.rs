//! The adversarial conflict workload: a list walk whose writers hit their
//! successors' read regions at a controlled rate.
//!
//! Every node of a singly linked list carries `(value, next, target)`. The
//! kernel walks the list accumulating `sum += value`; when a node's `target`
//! is non-null it *stores the node's value through it* — and the driver aims
//! every target at the `value` word of a node **later in the walk**. Each
//! such store is a genuine cross-chunk RAW dependence whenever the writer
//! and the written-to node land in different Spice chunks: the later chunk
//! reads the value word speculatively before the earlier chunk's buffered
//! store commits. The `conflict_rate` knob sets the per-node probability of
//! carrying a target, so the workload sweeps continuously from the paper's
//! dependence-free regime (rate 0, full chunk parallelism) to a worst case
//! where nearly every chunk boundary is violated (rate 1).
//!
//! Without conflict detection the speculative sum is simply *wrong* at any
//! nonzero rate — the stale read changes the reduction, not just timing —
//! which makes this loop the acceptance probe for the memory-dependence
//! speculation subsystem: results must stay bit-identical to sequential
//! execution on every backend while `ExecutionReport` shows
//! `DependenceViolation` squashes being taken and recovered.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spice_ir::builder::FunctionBuilder;
use spice_ir::interp::FlatMemory;
use spice_ir::{BinOp, Operand, Program};

use crate::arena::RecordArena;
use crate::{BuiltKernel, SpiceWorkload};

const VALUE: i64 = 0;
const NEXT: i64 = 1;
const TARGET: i64 = 2;
const RECORD_WORDS: i64 = 3;

/// Configuration of the splice workload.
#[derive(Debug, Clone)]
pub struct ConflictConfig {
    /// List length (one kernel iteration per node).
    pub len: usize,
    /// Kernel invocations to drive.
    pub invocations: usize,
    /// Per-node probability of writing into a later node's value word.
    pub conflict_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ConflictConfig {
    fn default() -> Self {
        ConflictConfig {
            len: 400,
            invocations: 12,
            conflict_rate: 0.1,
            seed: 0x59_11CE,
        }
    }
}

/// The list-splice conflict workload.
#[derive(Debug, Clone)]
pub struct ConflictListWorkload {
    config: ConflictConfig,
    arena: Option<RecordArena>,
    /// Host mirror of each node's target slot (`None` = null target).
    targets: Vec<Option<usize>>,
    rng: StdRng,
}

impl ConflictListWorkload {
    /// Creates the workload with the given configuration.
    #[must_use]
    pub fn new(config: ConflictConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        ConflictListWorkload {
            config,
            arena: None,
            targets: Vec::new(),
            rng,
        }
    }

    fn arena(&self) -> &RecordArena {
        self.arena.as_ref().expect("build() must be called first")
    }

    /// Re-randomizes values and targets for the upcoming invocation. Targets
    /// always point *forward* in the walk so the dependence is a RAW across
    /// the iteration space, never a cycle.
    fn reseed(&mut self, mem: &mut FlatMemory) {
        let n = self.config.len;
        let values: Vec<i64> = (0..n).map(|_| self.rng.gen_range(1..100_000)).collect();
        let targets: Vec<Option<usize>> = (0..n)
            .map(|i| {
                if i + 1 < n && self.rng.gen_bool(self.config.conflict_rate) {
                    Some(self.rng.gen_range(i + 1..n))
                } else {
                    None
                }
            })
            .collect();
        let arena = self.arena();
        for (i, v) in values.iter().enumerate() {
            arena.write(mem, i, VALUE, *v).expect("in bounds");
        }
        for (i, t) in targets.iter().enumerate() {
            let addr = t.map_or(0, |j| arena.addr(j) + VALUE);
            arena.write(mem, i, TARGET, addr).expect("in bounds");
        }
        self.targets = targets;
    }

    fn args(&self) -> Vec<i64> {
        vec![self.arena().addr(0)]
    }
}

impl SpiceWorkload for ConflictListWorkload {
    fn name(&self) -> &'static str {
        "list_splice"
    }

    fn description(&self) -> &'static str {
        "adversarial list walk; writers hit successors' reads at a set rate"
    }

    fn loop_name(&self) -> &'static str {
        "splice_walk"
    }

    fn paper_hotness(&self) -> f64 {
        0.0
    }

    fn conflict_policy(&self) -> spice_ir::exec::ConflictPolicy {
        // Its writers hit successor chunks' reads by design — the workload
        // exists to exercise the detector.
        spice_ir::exec::ConflictPolicy::Detect
    }

    fn build(&mut self) -> BuiltKernel {
        let mut program = Program::new();
        let base = program.add_global(
            "splice.nodes",
            RecordArena::words_needed(RECORD_WORDS, self.config.len),
        );
        self.arena = Some(RecordArena::new(base, RECORD_WORDS, self.config.len));

        // splice_walk(head) -> sum of values as visited.
        let mut b = FunctionBuilder::new("splice_walk");
        let head = b.param();
        let pre = b.new_labeled_block("preheader");
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let poke = b.new_labeled_block("poke");
        let advance = b.new_labeled_block("advance");
        let exit = b.new_labeled_block("exit");
        let c = b.copy(head);
        let sum = b.copy(0i64);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let v = b.load(c, VALUE);
        let s = b.binop(BinOp::Add, sum, v);
        b.copy_into(sum, s);
        let t = b.load(c, TARGET);
        let has_target = b.binop(BinOp::Ne, t, 0i64);
        b.cond_br(has_target, poke, advance);
        b.switch_to(poke);
        // The splice: overwrite a later node's value with this one's.
        b.store(v, t, 0);
        b.br(advance);
        b.switch_to(advance);
        let nx = b.load(c, NEXT);
        b.copy_into(c, nx);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));
        let kernel = program.add_func(b.finish());
        BuiltKernel {
            program,
            kernel,
            loop_header_hint: None,
        }
    }

    fn init(&mut self, mem: &mut FlatMemory) -> Vec<i64> {
        let n = self.config.len;
        {
            let arena = self.arena.as_mut().expect("built");
            for _ in 0..n {
                let _ = arena.alloc();
            }
        }
        let arena = self.arena();
        for i in 0..n {
            let next = if i + 1 < n { arena.addr(i + 1) } else { 0 };
            arena.write(mem, i, NEXT, next).expect("in bounds");
        }
        self.reseed(mem);
        self.args()
    }

    fn next_invocation(&mut self, mem: &mut FlatMemory, invocation: usize) -> Option<Vec<i64>> {
        if invocation + 1 >= self.config.invocations {
            return None;
        }
        self.reseed(mem);
        Some(self.args())
    }

    /// Host mirror of the walk, including the forward stores: the value a
    /// node contributes is whatever the *latest earlier splice* left there.
    fn expected_result(&self, mem: &FlatMemory) -> Option<i64> {
        let arena = self.arena();
        let mut values: Vec<i64> = (0..self.config.len)
            .map(|i| arena.read(mem, i, VALUE).expect("in bounds"))
            .collect();
        let mut sum = 0i64;
        for i in 0..self.config.len {
            let v = values[i];
            sum += v;
            if let Some(j) = self.targets[i] {
                values[j] = v;
            }
        }
        Some(sum)
    }

    fn expected_iterations(&self) -> u64 {
        self.config.len as u64
    }

    fn invocations(&self) -> usize {
        self.config.invocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::interp::run_function;

    fn drive_sequentially(rate: f64) {
        let mut wl = ConflictListWorkload::new(ConflictConfig {
            len: 64,
            invocations: 6,
            conflict_rate: rate,
            seed: 0xadef,
        });
        let built = wl.build();
        spice_ir::verify::verify_program(&built.program).expect("kernel verifies");
        let mut mem = FlatMemory::for_program(&built.program, 32 * 1024);
        let mut args = wl.init(&mut mem);
        for inv in 0.. {
            let expected = wl.expected_result(&mem).unwrap();
            let out = run_function(&built.program, built.kernel, &args, &mut mem).unwrap();
            assert_eq!(out.return_value, Some(expected), "rate {rate} inv {inv}");
            match wl.next_invocation(&mut mem, inv) {
                Some(a) => args = a,
                None => break,
            }
        }
    }

    #[test]
    fn host_mirror_matches_interpreter_at_all_rates() {
        for rate in [0.0, 0.1, 1.0] {
            drive_sequentially(rate);
        }
    }

    #[test]
    fn nonzero_rate_really_splices_forward() {
        let mut wl = ConflictListWorkload::new(ConflictConfig {
            len: 100,
            invocations: 2,
            conflict_rate: 1.0,
            seed: 7,
        });
        let built = wl.build();
        let mut mem = FlatMemory::for_program(&built.program, 32 * 1024);
        let _ = wl.init(&mut mem);
        let spliced = wl.targets.iter().flatten().count();
        assert!(spliced >= 90, "rate 1.0 must target nearly every node");
        for (i, t) in wl.targets.iter().enumerate() {
            if let Some(j) = t {
                assert!(*j > i, "targets must point forward in the walk");
            }
        }
    }
}
