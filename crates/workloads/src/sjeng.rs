//! The `458.sjeng` workload: the `std_eval` static-evaluation loop.
//!
//! Sjeng's evaluator walks the piece list of the current position and scores
//! each piece with piece-type-specific rules — a loop with complex control
//! flow (one arm per piece type), several accumulators, and, after reduction
//! removal, **eight** loop-carried live-ins that Spice must speculate (the
//! list pointer plus seven rolling evaluation-state words). The paper reports
//! this benchmark as the one hurt by mis-speculation (~25% of invocations)
//! and by the cost of comparing all eight live-ins every iteration; both
//! effects are reproduced here.
//!
//! The driver mutates the position between invocations (a move is made with
//! some probability), which invalidates memoized rolling states whenever the
//! mutation happens upstream of a memoized chunk boundary.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spice_ir::builder::FunctionBuilder;
use spice_ir::interp::FlatMemory;
use spice_ir::{BinOp, Operand, Program};

use crate::arena::{ListMirror, RecordArena};
use crate::{BuiltKernel, SpiceWorkload};

const TYPE: i64 = 0;
const VALUE: i64 = 1;
const POS: i64 = 2;
const NEXT: i64 = 3;
const RECORD_WORDS: i64 = 4;

/// Primes used by the seven rolling evaluation-state registers.
const STATE_PRIMES: [i64; 7] = [31, 37, 41, 43, 47, 53, 59];

/// Configuration of the sjeng workload.
#[derive(Debug, Clone)]
pub struct SjengConfig {
    /// Pieces on the board.
    pub pieces: usize,
    /// Evaluations (kernel invocations) to drive.
    pub invocations: usize,
    /// Probability that a move mutates a piece between two evaluations.
    pub mutate_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SjengConfig {
    fn default() -> Self {
        SjengConfig {
            pieces: 48,
            invocations: 80,
            mutate_probability: 0.30,
            seed: 0x736a,
        }
    }
}

/// Host mirror of one piece.
#[derive(Debug, Clone, Copy)]
struct Piece {
    ptype: i64,
    value: i64,
    pos: i64,
}

/// The sjeng `std_eval` workload.
#[derive(Debug, Clone)]
pub struct SjengWorkload {
    config: SjengConfig,
    arena: Option<RecordArena>,
    list: ListMirror,
    pieces: Vec<Piece>,
    side_bonus: i64,
    rng: StdRng,
}

impl SjengWorkload {
    /// Creates the workload with the given configuration.
    #[must_use]
    pub fn new(config: SjengConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        SjengWorkload {
            config,
            arena: None,
            list: ListMirror::new(NEXT),
            pieces: Vec::new(),
            side_bonus: 0,
            rng,
        }
    }

    fn arena(&self) -> &RecordArena {
        self.arena.as_ref().expect("build() must be called first")
    }

    fn args(&self) -> Vec<i64> {
        vec![self.list.head_addr(self.arena()), self.side_bonus]
    }

    fn piece_score(piece: &Piece) -> i64 {
        let v = piece.value;
        let pb = piece.pos;
        match piece.ptype {
            0 => v.wrapping_add(pb.wrapping_mul(2)),
            1 => v.wrapping_add(pb.wrapping_mul(3)),
            2 => v.wrapping_mul(2).wrapping_sub(pb),
            3 => v.wrapping_add(pb.wrapping_mul(2)).wrapping_add(5),
            4 => v.wrapping_mul(9).wrapping_sub(pb.wrapping_mul(2)),
            _ => pb.wrapping_mul(4),
        }
    }

    /// Host mirror of the kernel: the exact value `std_eval` must return for
    /// the current position.
    #[must_use]
    pub fn reference_eval(&self) -> i64 {
        let mut score: i64 = 0;
        let mut material: i64 = 0;
        let mut states: [i64; 7] = [1, 2, 3, 4, 5, 6, 7];
        for &slot in &self.list.order {
            let p = &self.pieces[slot];
            let sc = Self::piece_score(p);
            score = score.wrapping_add(sc);
            material = material.wrapping_add(p.value);
            let inputs = [sc, p.value, p.pos, p.ptype, sc, p.value, p.pos];
            for k in 0..7 {
                states[k] = states[k]
                    .wrapping_mul(STATE_PRIMES[k])
                    .wrapping_add(inputs[k]);
            }
        }
        let mix: i64 = states.iter().fold(0i64, |a, &s| a.wrapping_add(s));
        score
            .wrapping_add(material)
            .wrapping_add(mix & 0xFF)
            .wrapping_add(self.side_bonus)
    }

    fn random_piece(&mut self) -> Piece {
        Piece {
            ptype: self.rng.gen_range(0..6),
            value: self.rng.gen_range(100..=900),
            pos: self.rng.gen_range(-50..=50),
        }
    }

    fn write_piece(&self, mem: &mut FlatMemory, slot: usize) {
        let p = self.pieces[slot];
        let arena = self.arena();
        arena.write(mem, slot, TYPE, p.ptype).expect("in bounds");
        arena.write(mem, slot, VALUE, p.value).expect("in bounds");
        arena.write(mem, slot, POS, p.pos).expect("in bounds");
    }
}

impl SpiceWorkload for SjengWorkload {
    fn name(&self) -> &'static str {
        "458.sjeng"
    }

    fn description(&self) -> &'static str {
        "chess software (static evaluation)"
    }

    fn loop_name(&self) -> &'static str {
        "std_eval"
    }

    fn paper_hotness(&self) -> f64 {
        0.26
    }

    fn conflict_policy(&self) -> spice_ir::exec::ConflictPolicy {
        // The evaluation walk stores nothing; chunks cannot conflict.
        spice_ir::exec::ConflictPolicy::AssumeIndependent
    }

    fn build(&mut self) -> BuiltKernel {
        let mut program = Program::new();
        let arena_base = program.add_global(
            "sjeng.pieces",
            RecordArena::words_needed(RECORD_WORDS, self.config.pieces),
        );
        self.arena = Some(RecordArena::new(
            arena_base,
            RECORD_WORDS,
            self.config.pieces,
        ));

        // std_eval(head, side_bonus) -> score.
        let mut b = FunctionBuilder::new("std_eval");
        let head = b.param();
        let side_bonus = b.param();
        let pre = b.new_labeled_block("preheader");
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let join = b.new_labeled_block("join");
        let exit = b.new_labeled_block("exit");
        let type_blocks: Vec<_> = (0..6)
            .map(|t| b.new_labeled_block(format!("piece_type_{t}")))
            .collect();
        let dispatch: Vec<_> = (1..5)
            .map(|t| b.new_labeled_block(format!("dispatch_{t}")))
            .collect();

        let c = b.copy(head);
        let score = b.copy(0i64);
        let material = b.copy(0i64);
        let states: Vec<_> = (0..7).map(|k| b.copy(k as i64 + 1)).collect();
        let sc = b.copy(0i64);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);

        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);

        b.switch_to(body);
        let t = b.load(c, TYPE);
        let v = b.load(c, VALUE);
        let pb = b.load(c, POS);
        // Dispatch chain on the piece type (sjeng's switch lowered to a
        // branch tree — one compare per block).
        let is0 = b.binop(BinOp::Eq, t, 0i64);
        b.cond_br(is0, type_blocks[0], dispatch[0]);
        for i in 0..4 {
            b.switch_to(dispatch[i]);
            let is = b.binop(BinOp::Eq, t, (i + 1) as i64);
            let fallthrough = if i < 3 {
                dispatch[i + 1]
            } else {
                type_blocks[5]
            };
            b.cond_br(is, type_blocks[i + 1], fallthrough);
        }

        // Per-type scoring.
        for (ty, bb) in type_blocks.iter().enumerate() {
            b.switch_to(*bb);
            let val: spice_ir::Reg = match ty {
                0 => {
                    let twice = b.binop(BinOp::Mul, pb, 2i64);
                    b.binop(BinOp::Add, v, twice)
                }
                1 => {
                    let thrice = b.binop(BinOp::Mul, pb, 3i64);
                    b.binop(BinOp::Add, v, thrice)
                }
                2 => {
                    let dv = b.binop(BinOp::Mul, v, 2i64);
                    b.binop(BinOp::Sub, dv, pb)
                }
                3 => {
                    let twice = b.binop(BinOp::Mul, pb, 2i64);
                    let s = b.binop(BinOp::Add, v, twice);
                    b.binop(BinOp::Add, s, 5i64)
                }
                4 => {
                    let nine = b.binop(BinOp::Mul, v, 9i64);
                    let twice = b.binop(BinOp::Mul, pb, 2i64);
                    b.binop(BinOp::Sub, nine, twice)
                }
                _ => b.binop(BinOp::Mul, pb, 4i64),
            };
            b.copy_into(sc, val);
            b.br(join);
        }

        // Join: accumulate reductions, update rolling states, advance.
        b.switch_to(join);
        let ns = b.binop(BinOp::Add, score, sc);
        b.copy_into(score, ns);
        let nm = b.binop(BinOp::Add, material, v);
        b.copy_into(material, nm);
        let state_inputs = [sc, v, pb, t, sc, v, pb];
        for (k, s) in states.iter().enumerate() {
            let scaled = b.binop(BinOp::Mul, *s, STATE_PRIMES[k]);
            let updated = b.binop(BinOp::Add, scaled, state_inputs[k]);
            b.copy_into(*s, updated);
        }
        let next = b.load(c, NEXT);
        b.copy_into(c, next);
        b.br(header);

        // Exit: fold the rolling state into the returned evaluation.
        b.switch_to(exit);
        let mut mix = b.copy(0i64);
        for s in &states {
            mix = b.binop(BinOp::Add, mix, *s);
        }
        let masked = b.binop(BinOp::And, mix, 0xFFi64);
        let a = b.binop(BinOp::Add, score, material);
        let bsum = b.binop(BinOp::Add, a, masked);
        let total = b.binop(BinOp::Add, bsum, side_bonus);
        b.ret(Some(Operand::Reg(total)));
        let kernel = program.add_func(b.finish());

        BuiltKernel {
            program,
            kernel,
            loop_header_hint: None,
        }
    }

    fn init(&mut self, mem: &mut FlatMemory) -> Vec<i64> {
        let n = self.config.pieces;
        self.pieces = (0..n).map(|_| self.random_piece()).collect();
        {
            let arena = self.arena.as_mut().expect("built");
            for _ in 0..n {
                let _ = arena.alloc();
            }
        }
        for slot in 0..n {
            self.write_piece(mem, slot);
            self.list.insert_at(usize::MAX, slot);
        }
        self.list.relink(self.arena(), mem).expect("in bounds");
        self.side_bonus = self.rng.gen_range(-20..=20);
        self.args()
    }

    fn next_invocation(&mut self, mem: &mut FlatMemory, invocation: usize) -> Option<Vec<i64>> {
        if invocation + 1 >= self.config.invocations {
            return None;
        }
        // A move is made with some probability: one piece changes.
        if self.rng.gen_bool(self.config.mutate_probability) {
            let slot = self.rng.gen_range(0..self.pieces.len());
            let p = self.random_piece();
            self.pieces[slot] = p;
            self.write_piece(mem, slot);
        }
        self.side_bonus = self.rng.gen_range(-20..=20);
        Some(self.args())
    }

    fn expected_result(&self, _mem: &FlatMemory) -> Option<i64> {
        Some(self.reference_eval())
    }

    fn expected_iterations(&self) -> u64 {
        self.config.pieces as u64
    }

    fn invocations(&self) -> usize {
        self.config.invocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::interp::run_function;

    #[test]
    fn kernel_matches_host_mirror_across_positions() {
        let mut wl = SjengWorkload::new(SjengConfig {
            pieces: 24,
            invocations: 12,
            mutate_probability: 0.5,
            seed: 21,
        });
        let built = wl.build();
        let mut mem = FlatMemory::for_program(&built.program, 32 * 1024);
        let mut args = wl.init(&mut mem);
        for inv in 0.. {
            let expected = wl.expected_result(&mem).unwrap();
            let out = run_function(&built.program, built.kernel, &args, &mut mem).unwrap();
            assert_eq!(out.return_value, Some(expected), "invocation {inv}");
            match wl.next_invocation(&mut mem, inv) {
                Some(a) => args = a,
                None => break,
            }
        }
    }

    #[test]
    fn loop_exposes_eight_speculated_live_ins() {
        // The full analysis lives in spice-core, which this crate must not
        // depend on; check the structural property with the IR analyses
        // directly: the loop carries the pointer plus seven rolling states,
        // and score/material are reductions.
        let mut wl = SjengWorkload::new(SjengConfig::default());
        let built = wl.build();
        let f = built.program.func(built.kernel);
        let cfg = spice_ir::cfg::Cfg::new(f);
        let live = spice_ir::liveness::Liveness::new(f, &cfg);
        let forest = spice_ir::loops::LoopForest::of(f);
        let (_, l) = forest
            .iter()
            .find(|(_, l)| l.depth == 1)
            .expect("std_eval has a loop");
        let lli = spice_ir::liveness::loop_live_ins(f, &cfg, &live, l);
        let reds = spice_ir::reduction::detect_reductions(f, l, &lli);
        let speculated: Vec<_> = lli
            .carried
            .iter()
            .filter(|r| !reds.covered_regs().contains(r))
            .collect();
        assert_eq!(
            speculated.len(),
            8,
            "sjeng must speculate 8 live-ins (pointer + 7 states), got {speculated:?}"
        );
        assert!(
            reds.reductions.len() >= 2,
            "score and material are reductions"
        );
    }
}
