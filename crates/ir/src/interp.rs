//! Functional execution of the IR.
//!
//! Two layers live here:
//!
//! * [`ThreadState`]: a single thread of execution that can be *stepped* one
//!   instruction at a time against pluggable memory ([`MemPort`]) and system
//!   ([`SysPort`]) back-ends. The multi-core timing simulator in `spice-sim`
//!   drives one `ThreadState` per core and supplies ports that model caches,
//!   speculative store buffers and inter-core channels.
//! * [`run_function`] / convenience single-threaded execution used by tests,
//!   the value profiler and the whole-program hotness measurements (paper
//!   Table 2).
//!
//! Execution runs over the pre-decoded form ([`DecodedProgram`], see
//! [`crate::decoded`]): the structured IR is flattened once into dense,
//! index-addressed instruction arrays, and the per-step hot loop is a single
//! array index with no terminator clones, no per-call argument `Vec`s and no
//! per-event profile-value `Vec`s. The decode is semantically invisible —
//! the retired [`ExecInfo`] stream is identical to what the structured
//! walker produced (the cross-representation equivalence tests in
//! `crates/tests` step both forms in lockstep).

use std::collections::VecDeque;

use crate::decoded::{DInst, DecodedProgram};
use crate::function::Program;
use crate::inst::{Inst, InstClass};
use crate::types::{BlockId, FuncId, Operand, Reg, TrapKind};

/// Memory back-end used by [`ThreadState::step`].
pub trait MemPort {
    /// Loads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a trap if the address is invalid for this memory.
    fn load(&mut self, addr: i64) -> Result<i64, TrapKind>;

    /// Stores `value` to `addr`.
    ///
    /// # Errors
    ///
    /// Returns a trap if the address is invalid for this memory.
    fn store(&mut self, addr: i64, value: i64) -> Result<(), TrapKind>;

    /// Allocates `words` contiguous words and returns the base address.
    ///
    /// # Errors
    ///
    /// Returns a trap if the allocation cannot be satisfied.
    fn alloc(&mut self, words: i64) -> Result<i64, TrapKind>;
}

/// System back-end used by [`ThreadState::step`] for inter-thread and
/// speculation intrinsics.
pub trait SysPort {
    /// Enqueues `value` on channel `chan`.
    fn send(&mut self, chan: i64, value: i64);

    /// Dequeues a value from channel `chan`, or returns `None` if the channel
    /// is currently empty (the thread will retry the `Recv` on its next
    /// step).
    fn try_recv(&mut self, chan: i64) -> Option<i64>;

    /// Enters speculative execution on the calling core.
    fn spec_begin(&mut self) {}

    /// Commits buffered speculative state.
    fn spec_commit(&mut self) {}

    /// Discards buffered speculative state.
    fn spec_abort(&mut self) {}

    /// Answers a [`Inst::SpecCheck`]: 1 if the speculative read set of the
    /// thread on `core` conflicts with the writes committed so far in this
    /// loop invocation, 0 otherwise. Back-ends without conflict detection
    /// (single-threaded runs, profilers) report no conflicts.
    fn spec_conflict(&mut self, _core: i64) -> i64 {
        0
    }

    /// Requests that the thread on `core` be redirected to `target` in its
    /// current function.
    fn resteer(&mut self, core: i64, target: BlockId);

    /// Receives the values reported by a [`Inst::ProfileHook`].
    fn profile(&mut self, _site: u32, _values: &[i64]) {}
}

/// Simple flat word-addressable memory.
///
/// Word addresses run from 0 to `size - 1`. Globals of a [`Program`] are
/// materialized by [`FlatMemory::for_program`]; the bump-allocator used by
/// `alloc` starts right after the globals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatMemory {
    words: Vec<i64>,
    heap_next: i64,
}

impl FlatMemory {
    /// Creates a zeroed memory of `size` words with the heap starting at
    /// word 1024 (past the reserved null page).
    #[must_use]
    pub fn new(size: usize) -> Self {
        FlatMemory {
            words: vec![0; size],
            heap_next: 1024,
        }
    }

    /// Creates a memory sized `program.data_end() + heap_words`, copies every
    /// global initializer into place and points the allocator at the first
    /// word past the globals.
    #[must_use]
    pub fn for_program(program: &Program, heap_words: usize) -> Self {
        let size = program.data_end() as usize + heap_words;
        let mut mem = FlatMemory {
            words: vec![0; size],
            heap_next: program.data_end(),
        };
        for g in &program.globals {
            for (i, v) in g.init.iter().enumerate() {
                mem.words[g.base as usize + i] = *v;
            }
        }
        mem
    }

    /// Number of words in this memory.
    #[must_use]
    pub fn size(&self) -> usize {
        self.words.len()
    }

    /// Address that the next `alloc` will return.
    #[must_use]
    pub fn heap_next(&self) -> i64 {
        self.heap_next
    }

    /// Moves the allocation cursor — used by backends that mirror this
    /// memory into another substrate and perform allocations there, so the
    /// cursor stays consistent across invocations.
    ///
    /// # Panics
    ///
    /// Panics if `addr` would move the cursor backwards or out of memory.
    pub fn set_heap_next(&mut self, addr: i64) {
        assert!(
            addr >= self.heap_next && addr as usize <= self.words.len(),
            "allocation cursor must move forward within memory"
        );
        self.heap_next = addr;
    }

    /// Reads a word without going through the [`MemPort`] trait.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::OutOfBoundsAccess`] for addresses outside memory.
    #[inline]
    pub fn read(&self, addr: i64) -> Result<i64, TrapKind> {
        self.words
            .get(usize::try_from(addr).map_err(|_| TrapKind::OutOfBoundsAccess { addr })?)
            .copied()
            .ok_or(TrapKind::OutOfBoundsAccess { addr })
    }

    /// Writes a word without going through the [`MemPort`] trait.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::OutOfBoundsAccess`] for addresses outside memory.
    #[inline]
    pub fn write(&mut self, addr: i64, value: i64) -> Result<(), TrapKind> {
        let idx = usize::try_from(addr).map_err(|_| TrapKind::OutOfBoundsAccess { addr })?;
        match self.words.get_mut(idx) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(TrapKind::OutOfBoundsAccess { addr }),
        }
    }

    /// Returns a snapshot of all words (used by equivalence tests).
    #[must_use]
    pub fn words(&self) -> &[i64] {
        &self.words
    }

    /// Mutable view of all words — used by backends that mirror this memory
    /// into a different substrate (e.g. the native runtime's shared heap)
    /// and copy the result back after an invocation.
    #[must_use]
    pub fn words_mut(&mut self) -> &mut [i64] {
        &mut self.words
    }
}

impl MemPort for FlatMemory {
    fn load(&mut self, addr: i64) -> Result<i64, TrapKind> {
        self.read(addr)
    }

    fn store(&mut self, addr: i64, value: i64) -> Result<(), TrapKind> {
        self.write(addr, value)
    }

    fn alloc(&mut self, words: i64) -> Result<i64, TrapKind> {
        if words < 0 {
            return Err(TrapKind::OutOfMemory);
        }
        let base = self.heap_next;
        let end = base.checked_add(words).ok_or(TrapKind::OutOfMemory)?;
        if end as usize > self.words.len() {
            return Err(TrapKind::OutOfMemory);
        }
        self.heap_next = end;
        Ok(base)
    }
}

/// Channel ids below this bound index a dense queue table directly; anything
/// else (negative or huge ids, which only adversarial tests produce) falls
/// back to a small association list.
const DENSE_CHANNELS: i64 = 1 << 12;

/// A set of FIFO queues keyed by channel id, dense for the small
/// non-negative ids every real program uses. Replaces the former
/// `HashMap<i64, VecDeque<_>>` channel tables on the hot send/recv paths of
/// both the single-threaded [`LocalSys`] and the simulator's channel network.
#[derive(Debug, Clone)]
pub struct ChannelTable<T> {
    dense: Vec<VecDeque<T>>,
    spill: Vec<(i64, VecDeque<T>)>,
}

impl<T> Default for ChannelTable<T> {
    fn default() -> Self {
        ChannelTable {
            dense: Vec::new(),
            spill: Vec::new(),
        }
    }
}

impl<T> ChannelTable<T> {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        ChannelTable::default()
    }

    /// The queue of `chan`, created empty if absent.
    pub fn queue_mut(&mut self, chan: i64) -> &mut VecDeque<T> {
        if (0..DENSE_CHANNELS).contains(&chan) {
            let idx = chan as usize;
            if self.dense.len() <= idx {
                self.dense.resize_with(idx + 1, VecDeque::new);
            }
            &mut self.dense[idx]
        } else {
            let pos = match self.spill.iter().position(|(c, _)| *c == chan) {
                Some(p) => p,
                None => {
                    self.spill.push((chan, VecDeque::new()));
                    self.spill.len() - 1
                }
            };
            &mut self.spill[pos].1
        }
    }

    /// The queue of `chan`, if one was ever created.
    #[must_use]
    pub fn queue(&self, chan: i64) -> Option<&VecDeque<T>> {
        if (0..DENSE_CHANNELS).contains(&chan) {
            self.dense.get(chan as usize)
        } else {
            self.spill.iter().find(|(c, _)| *c == chan).map(|(_, q)| q)
        }
    }

    /// Like [`ChannelTable::queue`], mutably, without creating the queue.
    pub fn existing_mut(&mut self, chan: i64) -> Option<&mut VecDeque<T>> {
        if (0..DENSE_CHANNELS).contains(&chan) {
            self.dense.get_mut(chan as usize)
        } else {
            self.spill
                .iter_mut()
                .find(|(c, _)| *c == chan)
                .map(|(_, q)| q)
        }
    }

    /// Iterates every queue (dense and spilled).
    pub fn queues(&self) -> impl Iterator<Item = &VecDeque<T>> {
        self.dense.iter().chain(self.spill.iter().map(|(_, q)| q))
    }

    /// Empties every queue, keeping the table and queue allocations.
    pub fn clear_queues(&mut self) {
        for q in &mut self.dense {
            q.clear();
        }
        for (_, q) in &mut self.spill {
            q.clear();
        }
    }
}

/// In-process channel set usable when a single thread sends to itself or when
/// a test wants deterministic channel behaviour without a full machine.
///
/// Profile-hook observations land in a flat arena (one growing value buffer
/// plus per-event index entries) instead of one `Vec` per event.
#[derive(Debug, Default, Clone)]
pub struct LocalSys {
    channels: ChannelTable<i64>,
    /// Resteer requests observed (target core, target block); single-threaded
    /// execution has nowhere to deliver them, so they are just recorded.
    pub resteers: Vec<(i64, BlockId)>,
    profile_values: Vec<i64>,
    profile_index: Vec<(u32, usize, usize)>,
}

impl LocalSys {
    /// Creates an empty channel set.
    #[must_use]
    pub fn new() -> Self {
        LocalSys::default()
    }

    /// The profile-hook observations recorded so far, in order:
    /// `(site, values)`.
    #[must_use]
    pub fn profile_events(&self) -> Vec<(u32, &[i64])> {
        self.profile_index
            .iter()
            .map(|&(site, start, len)| (site, &self.profile_values[start..start + len]))
            .collect()
    }
}

impl SysPort for LocalSys {
    fn send(&mut self, chan: i64, value: i64) {
        self.channels.queue_mut(chan).push_back(value);
    }

    fn try_recv(&mut self, chan: i64) -> Option<i64> {
        self.channels
            .existing_mut(chan)
            .and_then(VecDeque::pop_front)
    }

    fn resteer(&mut self, core: i64, target: BlockId) {
        self.resteers.push((core, target));
    }

    fn profile(&mut self, site: u32, values: &[i64]) {
        let start = self.profile_values.len();
        self.profile_values.extend_from_slice(values);
        self.profile_index.push((site, start, values.len()));
    }
}

/// Maximum call depth of a [`ThreadState`].
pub const MAX_CALL_DEPTH: usize = 1024;

/// What happened when a thread was stepped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// An instruction (or terminator) retired.
    Executed(ExecInfo),
    /// The thread is blocked on a `Recv` whose channel is empty; nothing
    /// retired this step.
    Blocked,
    /// The thread executed `Halt` (now permanently stopped).
    Halted,
    /// The outermost function returned with the given value.
    Finished(Option<i64>),
}

/// Timing-relevant description of a retired instruction, packed into a
/// single machine word so the per-step return of the decoded-dispatch hot
/// path is one register wide:
///
/// ```text
/// bits 0..=3   functional-unit class ([`InstClass::index`], < 16)
/// bit  4       a memory word address is attached (loads and stores)
/// bit  5       a branch direction is attached (control transfers)
/// bit  6       the branch was taken (valid only when bit 5 is set)
/// bits 8..=63  signed word address payload (valid only when bit 4 is set)
/// ```
///
/// Word addresses are indices into a [`FlatMemory`], far below the 56-bit
/// payload capacity; the `mem` constructor debug-asserts the round trip.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ExecInfo(u64);

impl ExecInfo {
    const CLASS_MASK: u64 = 0xf;
    const HAS_MEM: u64 = 1 << 4;
    const HAS_BRANCH: u64 = 1 << 5;
    const BRANCH_TAKEN: u64 = 1 << 6;
    const ADDR_SHIFT: u32 = 8;

    /// An instruction that touches neither memory nor control flow.
    #[must_use]
    #[inline]
    pub fn plain(class: InstClass) -> Self {
        ExecInfo(class.index() as u64)
    }

    /// A load or store that touched word address `addr`.
    #[must_use]
    #[inline]
    pub fn mem(class: InstClass, addr: i64) -> Self {
        let packed =
            ExecInfo(class.index() as u64 | Self::HAS_MEM | ((addr as u64) << Self::ADDR_SHIFT));
        debug_assert_eq!(packed.mem_addr(), Some(addr), "address payload overflow");
        packed
    }

    /// A control transfer with its resolved direction.
    #[must_use]
    #[inline]
    pub fn branch(taken: bool) -> Self {
        ExecInfo(
            InstClass::Branch.index() as u64
                | Self::HAS_BRANCH
                | if taken { Self::BRANCH_TAKEN } else { 0 },
        )
    }

    /// Functional-unit class.
    #[must_use]
    #[inline]
    pub fn class(self) -> InstClass {
        InstClass::ALL[(self.0 & Self::CLASS_MASK) as usize]
    }

    /// Word address touched, for loads and stores.
    #[must_use]
    #[inline]
    pub fn mem_addr(self) -> Option<i64> {
        (self.0 & Self::HAS_MEM != 0).then_some((self.0 as i64) >> Self::ADDR_SHIFT)
    }

    /// For branches: whether the branch was taken.
    #[must_use]
    #[inline]
    pub fn branch_taken(self) -> Option<bool> {
        (self.0 & Self::HAS_BRANCH != 0).then_some(self.0 & Self::BRANCH_TAKEN != 0)
    }
}

impl std::fmt::Debug for ExecInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecInfo")
            .field("class", &self.class())
            .field("mem_addr", &self.mem_addr())
            .field("branch_taken", &self.branch_taken())
            .finish()
    }
}

/// Execution status of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// The thread can be stepped.
    Runnable,
    /// The thread executed `Halt`.
    Halted,
    /// The thread's outermost function returned.
    Finished,
    /// The thread trapped.
    Trapped(TrapKind),
}

#[derive(Debug, Clone)]
struct Frame {
    func: FuncId,
    pc: usize,
    block: BlockId,
    regs: Vec<i64>,
    ret_dst: Option<Reg>,
}

/// Sentinel pc meaning "re-enter [`ThreadState::current_block`] at its first
/// instruction" — set by [`ThreadState::resteer_to`], which has no decoded
/// function at hand to resolve the block's entry pc; the next step resolves
/// it.
const RESTEER_PENDING: usize = usize::MAX;

/// A single thread of IR execution over the pre-decoded program form.
///
/// The register file is function-local; calls push frames. The thread is
/// deliberately ignorant of time — the caller decides what each retired
/// instruction costs.
#[derive(Debug, Clone)]
pub struct ThreadState {
    func: FuncId,
    pc: usize,
    block: BlockId,
    regs: Vec<i64>,
    frames: Vec<Frame>,
    status: ThreadStatus,
    retired: u64,
    /// Reusable buffer for profile-hook value snapshots, so a hook costs no
    /// allocation per event on any port.
    profile_scratch: Vec<i64>,
}

impl ThreadState {
    /// Creates a thread positioned at the entry of `func` with `args` bound
    /// to the function's parameters.
    ///
    /// # Panics
    ///
    /// Panics if `args.len()` differs from the function's parameter count.
    #[must_use]
    pub fn new(program: &DecodedProgram, func: FuncId, args: &[i64]) -> Self {
        let f = program.func(func);
        assert_eq!(
            args.len(),
            f.params.len(),
            "wrong number of arguments for {}",
            f.name
        );
        let mut regs = vec![0i64; f.reg_count];
        for (p, a) in f.params.iter().zip(args) {
            regs[p.index()] = *a;
        }
        ThreadState {
            func,
            pc: f.entry_pc(),
            block: f.entry_block(),
            regs,
            frames: Vec::new(),
            status: ThreadStatus::Runnable,
            retired: 0,
            profile_scratch: Vec::new(),
        }
    }

    /// The function currently executing (innermost frame).
    #[must_use]
    pub fn current_func(&self) -> FuncId {
        self.func
    }

    /// The block the thread is currently in.
    #[must_use]
    pub fn current_block(&self) -> BlockId {
        self.block
    }

    /// Current status.
    #[must_use]
    pub fn status(&self) -> ThreadStatus {
        self.status
    }

    /// Number of retired instructions (terminators included).
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads a register of the innermost frame.
    ///
    /// # Panics
    ///
    /// Panics if the register is out of range for the current function.
    #[must_use]
    pub fn reg(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    /// Writes a register of the innermost frame.
    ///
    /// # Panics
    ///
    /// Panics if the register is out of range for the current function.
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        self.regs[r.index()] = value;
    }

    /// Redirects the thread to `target` in its current function, clearing the
    /// instruction cursor — the effect of an incoming remote resteer
    /// (paper §3). Also clears a trapped or blocked state: a speculative
    /// thread that chased a dangling pointer and faulted is recovered this
    /// way.
    pub fn resteer_to(&mut self, target: BlockId) {
        self.block = target;
        self.pc = RESTEER_PENDING;
        self.status = ThreadStatus::Runnable;
    }

    /// Forces the thread into the trapped state (used by an enclosing
    /// machine when an external condition kills it).
    pub fn force_trap(&mut self, kind: TrapKind) {
        self.status = ThreadStatus::Trapped(kind);
    }

    #[inline]
    fn operand(&self, op: Operand) -> i64 {
        match op {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Imm(v) => v,
        }
    }

    #[cold]
    fn trap(&mut self, kind: TrapKind) -> Result<StepEvent, TrapKind> {
        self.status = ThreadStatus::Trapped(kind);
        Err(kind)
    }

    /// Executes at most one instruction.
    ///
    /// Generic over the ports (instead of taking `&mut dyn`) so every
    /// driver's step loop monomorphizes: the simulator's cache-model ports
    /// and the native backend's heap ports inline straight into the
    /// dispatch.
    ///
    /// # Errors
    ///
    /// Returns the trap if the instruction faults; the thread's status is set
    /// to [`ThreadStatus::Trapped`] as well so the caller can squash or
    /// recover it later.
    pub fn step<M: MemPort + ?Sized, S: SysPort + ?Sized>(
        &mut self,
        program: &DecodedProgram,
        mem: &mut M,
        sys: &mut S,
    ) -> Result<StepEvent, TrapKind> {
        match self.status {
            ThreadStatus::Runnable => {}
            ThreadStatus::Halted => return Ok(StepEvent::Halted),
            ThreadStatus::Finished => return Ok(StepEvent::Finished(None)),
            ThreadStatus::Trapped(k) => return Err(k),
        }
        let df = program.func(self.func);
        if self.pc == RESTEER_PENDING {
            self.pc = df.block_entry(self.block);
        }
        let pc = self.pc;
        match &df.insts[pc] {
            DInst::Binary { op, dst, lhs, rhs } => {
                let v = match op.eval(self.operand(*lhs), self.operand(*rhs)) {
                    Ok(v) => v,
                    Err(t) => return self.trap(t),
                };
                self.regs[*dst as usize] = v;
                self.pc = pc + 1;
                self.retired += 1;
                Ok(StepEvent::Executed(ExecInfo::plain(df.classes[pc])))
            }
            DInst::Copy { dst, src } => {
                self.regs[*dst as usize] = self.operand(*src);
                self.pc = pc + 1;
                self.retired += 1;
                Ok(StepEvent::Executed(ExecInfo::plain(InstClass::IntAlu)))
            }
            DInst::Select {
                dst,
                cond,
                if_true,
                if_false,
            } => {
                let v = if self.operand(*cond) != 0 {
                    self.operand(*if_true)
                } else {
                    self.operand(*if_false)
                };
                self.regs[*dst as usize] = v;
                self.pc = pc + 1;
                self.retired += 1;
                Ok(StepEvent::Executed(ExecInfo::plain(InstClass::IntAlu)))
            }
            DInst::Load { dst, addr, offset } => {
                let a = self.operand(*addr) + offset;
                let v = match mem.load(a) {
                    Ok(v) => v,
                    Err(t) => return self.trap(t),
                };
                self.regs[*dst as usize] = v;
                self.pc = pc + 1;
                self.retired += 1;
                Ok(StepEvent::Executed(ExecInfo::mem(InstClass::Load, a)))
            }
            DInst::Store { src, addr, offset } => {
                let a = self.operand(*addr) + offset;
                if let Err(t) = mem.store(a, self.operand(*src)) {
                    return self.trap(t);
                }
                self.pc = pc + 1;
                self.retired += 1;
                Ok(StepEvent::Executed(ExecInfo::mem(InstClass::Store, a)))
            }
            DInst::Alloc { dst, words } => {
                let base = match mem.alloc(self.operand(*words)) {
                    Ok(b) => b,
                    Err(t) => return self.trap(t),
                };
                self.regs[*dst as usize] = base;
                self.pc = pc + 1;
                self.retired += 1;
                Ok(StepEvent::Executed(ExecInfo::plain(InstClass::Alloc)))
            }
            DInst::Call { dst, func, args } => {
                if self.frames.len() >= MAX_CALL_DEPTH {
                    return self.trap(TrapKind::StackOverflow);
                }
                if func.index() >= program.func_count() {
                    return self.trap(TrapKind::UnknownFunction);
                }
                let callee = program.func(*func);
                if callee.params.len() != args.len() {
                    return self.trap(TrapKind::UnknownFunction);
                }
                let mut new_regs = vec![0i64; callee.reg_count];
                for (p, a) in callee.params.iter().zip(args.iter()) {
                    new_regs[p.index()] = self.operand(*a);
                }
                let frame = Frame {
                    func: self.func,
                    pc: pc + 1,
                    block: self.block,
                    regs: std::mem::replace(&mut self.regs, new_regs),
                    ret_dst: *dst,
                };
                self.frames.push(frame);
                self.func = *func;
                self.block = callee.entry_block();
                self.pc = callee.entry_pc();
                self.retired += 1;
                Ok(StepEvent::Executed(ExecInfo::plain(InstClass::Branch)))
            }
            DInst::Send { chan, value } => {
                sys.send(self.operand(*chan), self.operand(*value));
                self.pc = pc + 1;
                self.retired += 1;
                Ok(StepEvent::Executed(ExecInfo::plain(InstClass::Send)))
            }
            DInst::Recv { dst, chan } => match sys.try_recv(self.operand(*chan)) {
                Some(v) => {
                    self.regs[*dst as usize] = v;
                    self.pc = pc + 1;
                    self.retired += 1;
                    Ok(StepEvent::Executed(ExecInfo::plain(InstClass::Recv)))
                }
                None => Ok(StepEvent::Blocked),
            },
            DInst::SpecBegin => {
                sys.spec_begin();
                self.pc = pc + 1;
                self.retired += 1;
                Ok(StepEvent::Executed(ExecInfo::plain(InstClass::Spec)))
            }
            DInst::SpecCommit => {
                sys.spec_commit();
                self.pc = pc + 1;
                self.retired += 1;
                Ok(StepEvent::Executed(ExecInfo::plain(InstClass::Spec)))
            }
            DInst::SpecAbort => {
                sys.spec_abort();
                self.pc = pc + 1;
                self.retired += 1;
                Ok(StepEvent::Executed(ExecInfo::plain(InstClass::Spec)))
            }
            DInst::SpecCheck { dst, core } => {
                let verdict = sys.spec_conflict(self.operand(*core));
                self.regs[*dst as usize] = verdict;
                self.pc = pc + 1;
                self.retired += 1;
                Ok(StepEvent::Executed(ExecInfo::plain(InstClass::Spec)))
            }
            DInst::Resteer { core, target } => {
                sys.resteer(self.operand(*core), *target);
                self.pc = pc + 1;
                self.retired += 1;
                Ok(StepEvent::Executed(ExecInfo::plain(InstClass::Resteer)))
            }
            DInst::Halt => {
                self.status = ThreadStatus::Halted;
                self.retired += 1;
                Ok(StepEvent::Halted)
            }
            DInst::Nop => {
                self.pc = pc + 1;
                self.retired += 1;
                Ok(StepEvent::Executed(ExecInfo::plain(InstClass::Other)))
            }
            DInst::ProfileHook { site, regs } => {
                let mut scratch = std::mem::take(&mut self.profile_scratch);
                scratch.clear();
                scratch.extend(regs.iter().map(|r| self.regs[r.index()]));
                sys.profile(*site, &scratch);
                self.profile_scratch = scratch;
                self.pc = pc + 1;
                self.retired += 1;
                Ok(StepEvent::Executed(ExecInfo::plain(InstClass::Other)))
            }
            // Terminators. Every terminator execution counts as retired,
            // exactly like the structured walker did — including a trapping
            // `Unreachable` and the outermost `Ret`.
            DInst::Br { pc: target, block } => {
                self.retired += 1;
                self.pc = *target as usize;
                self.block = *block;
                Ok(StepEvent::Executed(ExecInfo::branch(true)))
            }
            DInst::CondBr {
                cond,
                then_pc,
                then_block,
                else_pc,
                else_block,
            } => {
                self.retired += 1;
                let taken = self.operand(*cond) != 0;
                if taken {
                    self.pc = *then_pc as usize;
                    self.block = *then_block;
                } else {
                    self.pc = *else_pc as usize;
                    self.block = *else_block;
                }
                Ok(StepEvent::Executed(ExecInfo::branch(taken)))
            }
            DInst::Ret { value } => {
                self.retired += 1;
                let v = value.map(|op| self.operand(op));
                if let Some(frame) = self.frames.pop() {
                    self.func = frame.func;
                    self.pc = frame.pc;
                    self.block = frame.block;
                    self.regs = frame.regs;
                    if let (Some(dst), Some(v)) = (frame.ret_dst, v) {
                        self.regs[dst.index()] = v;
                    }
                    Ok(StepEvent::Executed(ExecInfo::branch(true)))
                } else {
                    self.status = ThreadStatus::Finished;
                    Ok(StepEvent::Finished(v))
                }
            }
            DInst::Unreachable => {
                self.retired += 1;
                self.status = ThreadStatus::Trapped(TrapKind::UnsupportedIntrinsic);
                Err(TrapKind::UnsupportedIntrinsic)
            }
        }
    }
}

/// Dynamic instruction counts per class, stored densely by
/// [`InstClass::index`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    counts: [u64; InstClass::COUNT],
    /// Total retired instructions.
    pub total: u64,
}

impl ExecStats {
    /// Records one retired instruction.
    pub fn record(&mut self, class: InstClass) {
        self.counts[class.index()] += 1;
        self.total += 1;
    }

    /// Count for one class.
    #[must_use]
    pub fn count(&self, class: InstClass) -> u64 {
        self.counts[class.index()]
    }
}

/// Result of a completed single-threaded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Value returned by the outermost function, if any.
    pub return_value: Option<i64>,
    /// Dynamic instruction statistics.
    pub stats: ExecStats,
}

/// Default instruction budget for convenience runs.
pub const DEFAULT_FUEL: u64 = 500_000_000;

/// Runs `func` to completion on `mem` with a [`LocalSys`].
///
/// # Errors
///
/// Returns any trap raised during execution, including
/// [`TrapKind::OutOfFuel`] if the run exceeds [`DEFAULT_FUEL`] instructions.
pub fn run_function(
    program: &Program,
    func: FuncId,
    args: &[i64],
    mem: &mut FlatMemory,
) -> Result<RunOutcome, TrapKind> {
    let mut sys = LocalSys::new();
    run_function_with(
        program,
        func,
        args,
        mem,
        &mut sys,
        DEFAULT_FUEL,
        |_, _, _| {},
    )
}

/// Runs `func` to completion with full control over the system port, fuel
/// budget and a per-instruction observer. The program is decoded once at
/// entry; the per-step cost is the decoded dispatch.
///
/// The observer is called before each instruction (not terminators) with the
/// current function, block and instruction; the value profiler and the
/// hotness measurement are built on it.
///
/// # Errors
///
/// Returns any trap raised during execution, [`TrapKind::OutOfFuel`] if the
/// fuel budget is exhausted, or [`TrapKind::UnsupportedIntrinsic`] if the
/// thread blocks forever on an empty channel.
pub fn run_function_with(
    program: &Program,
    func: FuncId,
    args: &[i64],
    mem: &mut impl MemPort,
    sys: &mut impl SysPort,
    fuel: u64,
    mut observer: impl FnMut(FuncId, BlockId, &Inst),
) -> Result<RunOutcome, TrapKind> {
    let decoded = DecodedProgram::new(program);
    let mut thread = ThreadState::new(&decoded, func, args);
    let mut stats = ExecStats::default();
    let mut steps: u64 = 0;
    loop {
        if steps >= fuel {
            return Err(TrapKind::OutOfFuel);
        }
        steps += 1;
        // Observe the instruction about to execute.
        let df = decoded.func(thread.func);
        if thread.pc != RESTEER_PENDING {
            let (block, ip) = df.source_of(thread.pc);
            let blk = program.func(thread.func).block(block);
            if ip < blk.insts.len() {
                observer(thread.func, block, &blk.insts[ip]);
            }
        }
        match thread.step(&decoded, mem, sys)? {
            StepEvent::Executed(info) => stats.record(info.class()),
            StepEvent::Blocked => {
                // Single-threaded: nobody will ever fill the channel.
                return Err(TrapKind::UnsupportedIntrinsic);
            }
            StepEvent::Halted => {
                return Ok(RunOutcome {
                    return_value: None,
                    stats,
                })
            }
            StepEvent::Finished(v) => {
                return Ok(RunOutcome {
                    return_value: v,
                    stats,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::BinOp;

    fn simple_add_program() -> (Program, FuncId) {
        let mut b = FunctionBuilder::new("add");
        let x = b.param();
        let y = b.param();
        let s = b.binop(BinOp::Add, x, y);
        b.ret(Some(Operand::Reg(s)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        (p, f)
    }

    #[test]
    fn add_function_returns_sum() {
        let (p, f) = simple_add_program();
        let mut mem = FlatMemory::new(2048);
        let out = run_function(&p, f, &[2, 40], &mut mem).unwrap();
        assert_eq!(out.return_value, Some(42));
        assert_eq!(out.stats.count(InstClass::IntAlu), 1);
        // The outermost `ret` is reported as `Finished`, not as a retired
        // branch, so only the ALU op is counted.
        assert_eq!(out.stats.total, 1);
    }

    #[test]
    fn wrong_arity_panics() {
        let (p, f) = simple_add_program();
        let dp = DecodedProgram::new(&p);
        let result = std::panic::catch_unwind(|| ThreadState::new(&dp, f, &[1]));
        assert!(result.is_err());
    }

    #[test]
    fn calls_push_and_pop_frames() {
        // callee(x) = x * 2 ; main() = callee(21)
        let mut cb = FunctionBuilder::new("callee");
        let x = cb.param();
        let d = cb.binop(BinOp::Mul, x, 2i64);
        cb.ret(Some(Operand::Reg(d)));

        let mut p = Program::new();
        let callee = p.add_func(cb.finish());

        let mut mb = FunctionBuilder::new("main");
        let r = mb.call(callee, vec![Operand::Imm(21)]);
        let r2 = mb.binop(BinOp::Add, r, 0i64);
        mb.ret(Some(Operand::Reg(r2)));
        let main = p.add_func(mb.finish());

        let mut mem = FlatMemory::new(2048);
        let out = run_function(&p, main, &[], &mut mem).unwrap();
        assert_eq!(out.return_value, Some(42));
    }

    #[test]
    fn load_store_roundtrip() {
        let mut b = FunctionBuilder::new("mem");
        let addr = b.param();
        b.store(99i64, addr, 3);
        let v = b.load(addr, 3);
        b.ret(Some(Operand::Reg(v)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(2048);
        let out = run_function(&p, f, &[1500], &mut mem).unwrap();
        assert_eq!(out.return_value, Some(99));
        assert_eq!(mem.read(1503).unwrap(), 99);
    }

    #[test]
    fn out_of_bounds_load_traps() {
        let mut b = FunctionBuilder::new("oob");
        let v = b.load(1_000_000i64, 0);
        b.ret(Some(Operand::Reg(v)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(2048);
        let err = run_function(&p, f, &[], &mut mem).unwrap_err();
        assert_eq!(err, TrapKind::OutOfBoundsAccess { addr: 1_000_000 });
    }

    #[test]
    fn alloc_bumps_heap() {
        let mut b = FunctionBuilder::new("alloc");
        let a = b.alloc(4i64);
        let c = b.alloc(4i64);
        let diff = b.binop(BinOp::Sub, c, a);
        b.ret(Some(Operand::Reg(diff)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(4096);
        let out = run_function(&p, f, &[], &mut mem).unwrap();
        assert_eq!(out.return_value, Some(4));
    }

    #[test]
    fn alloc_failure_traps() {
        let mut b = FunctionBuilder::new("big");
        let a = b.alloc(1_000_000i64);
        b.ret(Some(Operand::Reg(a)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(2048);
        assert_eq!(
            run_function(&p, f, &[], &mut mem).unwrap_err(),
            TrapKind::OutOfMemory
        );
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let mut b = FunctionBuilder::new("spin");
        let header = b.new_block();
        b.br(header);
        b.switch_to(header);
        b.br(header);
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(64);
        let mut sys = LocalSys::new();
        let err =
            run_function_with(&p, f, &[], &mut mem, &mut sys, 1000, |_, _, _| {}).unwrap_err();
        assert_eq!(err, TrapKind::OutOfFuel);
    }

    #[test]
    fn halt_stops_thread() {
        let mut b = FunctionBuilder::new("halts");
        b.push(Inst::Halt);
        b.ret(None);
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(64);
        let out = run_function(&p, f, &[], &mut mem).unwrap();
        assert_eq!(out.return_value, None);
    }

    #[test]
    fn send_recv_through_local_sys() {
        let mut b = FunctionBuilder::new("chan");
        b.send(7i64, 123i64);
        let v = b.recv(7i64);
        b.ret(Some(Operand::Reg(v)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(64);
        let out = run_function(&p, f, &[], &mut mem).unwrap();
        assert_eq!(out.return_value, Some(123));
    }

    #[test]
    fn channel_table_handles_spilled_ids() {
        // Negative and enormous channel ids fall off the dense table; they
        // must still behave as FIFO queues.
        let mut sys = LocalSys::new();
        for chan in [-3i64, i64::MAX - 1, 5] {
            assert_eq!(sys.try_recv(chan), None);
            sys.send(chan, 1);
            sys.send(chan, 2);
        }
        for chan in [-3i64, i64::MAX - 1, 5] {
            assert_eq!(sys.try_recv(chan), Some(1));
            assert_eq!(sys.try_recv(chan), Some(2));
            assert_eq!(sys.try_recv(chan), None);
        }
    }

    #[test]
    fn blocked_recv_is_reported() {
        let mut b = FunctionBuilder::new("block");
        let v = b.recv(1i64);
        b.ret(Some(Operand::Reg(v)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let dp = DecodedProgram::new(&p);
        let mut mem = FlatMemory::new(64);
        let mut sys = LocalSys::new();
        let mut t = ThreadState::new(&dp, f, &[]);
        assert_eq!(t.step(&dp, &mut mem, &mut sys).unwrap(), StepEvent::Blocked);
        // Still runnable; delivering a value unblocks it.
        sys.send(1, 5);
        assert!(matches!(
            t.step(&dp, &mut mem, &mut sys).unwrap(),
            StepEvent::Executed(_)
        ));
    }

    #[test]
    fn profile_hook_reports_registers() {
        let mut b = FunctionBuilder::new("prof");
        let r = b.copy(17i64);
        b.profile_hook(3, vec![r]);
        b.ret(None);
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(64);
        let mut sys = LocalSys::new();
        run_function_with(&p, f, &[], &mut mem, &mut sys, 1000, |_, _, _| {}).unwrap();
        assert_eq!(sys.profile_events(), vec![(3, &[17i64][..])]);
    }

    #[test]
    fn resteer_recovers_trapped_thread() {
        let mut b = FunctionBuilder::new("fault");
        let recover = b.new_labeled_block("recover");
        let v = b.load(1_000_000i64, 0); // traps
        b.ret(Some(Operand::Reg(v)));
        b.switch_to(recover);
        b.ret(Some(Operand::Imm(-1)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let dp = DecodedProgram::new(&p);
        let mut mem = FlatMemory::new(64);
        let mut sys = LocalSys::new();
        let mut t = ThreadState::new(&dp, f, &[]);
        assert!(t.step(&dp, &mut mem, &mut sys).is_err());
        assert!(matches!(t.status(), ThreadStatus::Trapped(_)));
        t.resteer_to(recover);
        assert_eq!(t.status(), ThreadStatus::Runnable);
        let ev = t.step(&dp, &mut mem, &mut sys).unwrap();
        assert_eq!(ev, StepEvent::Finished(Some(-1)));
    }

    #[test]
    fn globals_are_materialized_by_for_program() {
        let mut p = Program::new();
        let base = p.add_global_init("table", 4, vec![9, 8]);
        let mem = FlatMemory::for_program(&p, 128);
        assert_eq!(mem.read(base).unwrap(), 9);
        assert_eq!(mem.read(base + 1).unwrap(), 8);
        assert_eq!(mem.read(base + 2).unwrap(), 0);
        assert_eq!(mem.heap_next(), p.data_end());
    }

    #[test]
    fn observer_sees_instructions() {
        let (p, f) = simple_add_program();
        let mut mem = FlatMemory::new(64);
        let mut sys = LocalSys::new();
        let mut seen = 0;
        run_function_with(&p, f, &[1, 2], &mut mem, &mut sys, 100, |_, _, _| seen += 1).unwrap();
        assert_eq!(seen, 1); // one non-terminator instruction
    }
}
