//! Functional execution of the IR.
//!
//! Two layers live here:
//!
//! * [`ThreadState`]: a single thread of execution that can be *stepped* one
//!   instruction at a time against pluggable memory ([`MemPort`]) and system
//!   ([`SysPort`]) back-ends. The multi-core timing simulator in `spice-sim`
//!   drives one `ThreadState` per core and supplies ports that model caches,
//!   speculative store buffers and inter-core channels.
//! * [`run_function`] / [`Interpreter`]: convenience single-threaded
//!   execution used by tests, the value profiler and the whole-program
//!   hotness measurements (paper Table 2).

use std::collections::{HashMap, VecDeque};

use crate::function::Program;
use crate::inst::{Inst, InstClass, Terminator};
use crate::types::{BlockId, FuncId, Operand, Reg, TrapKind};

/// Memory back-end used by [`ThreadState::step`].
pub trait MemPort {
    /// Loads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a trap if the address is invalid for this memory.
    fn load(&mut self, addr: i64) -> Result<i64, TrapKind>;

    /// Stores `value` to `addr`.
    ///
    /// # Errors
    ///
    /// Returns a trap if the address is invalid for this memory.
    fn store(&mut self, addr: i64, value: i64) -> Result<(), TrapKind>;

    /// Allocates `words` contiguous words and returns the base address.
    ///
    /// # Errors
    ///
    /// Returns a trap if the allocation cannot be satisfied.
    fn alloc(&mut self, words: i64) -> Result<i64, TrapKind>;
}

/// System back-end used by [`ThreadState::step`] for inter-thread and
/// speculation intrinsics.
pub trait SysPort {
    /// Enqueues `value` on channel `chan`.
    fn send(&mut self, chan: i64, value: i64);

    /// Dequeues a value from channel `chan`, or returns `None` if the channel
    /// is currently empty (the thread will retry the `Recv` on its next
    /// step).
    fn try_recv(&mut self, chan: i64) -> Option<i64>;

    /// Enters speculative execution on the calling core.
    fn spec_begin(&mut self) {}

    /// Commits buffered speculative state.
    fn spec_commit(&mut self) {}

    /// Discards buffered speculative state.
    fn spec_abort(&mut self) {}

    /// Answers a [`Inst::SpecCheck`]: 1 if the speculative read set of the
    /// thread on `core` conflicts with the writes committed so far in this
    /// loop invocation, 0 otherwise. Back-ends without conflict detection
    /// (single-threaded runs, profilers) report no conflicts.
    fn spec_conflict(&mut self, _core: i64) -> i64 {
        0
    }

    /// Requests that the thread on `core` be redirected to `target` in its
    /// current function.
    fn resteer(&mut self, core: i64, target: BlockId);

    /// Receives the values reported by a [`Inst::ProfileHook`].
    fn profile(&mut self, _site: u32, _values: &[i64]) {}
}

/// Simple flat word-addressable memory.
///
/// Word addresses run from 0 to `size - 1`. Globals of a [`Program`] are
/// materialized by [`FlatMemory::for_program`]; the bump-allocator used by
/// `alloc` starts right after the globals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatMemory {
    words: Vec<i64>,
    heap_next: i64,
}

impl FlatMemory {
    /// Creates a zeroed memory of `size` words with the heap starting at
    /// word 1024 (past the reserved null page).
    #[must_use]
    pub fn new(size: usize) -> Self {
        FlatMemory {
            words: vec![0; size],
            heap_next: 1024,
        }
    }

    /// Creates a memory sized `program.data_end() + heap_words`, copies every
    /// global initializer into place and points the allocator at the first
    /// word past the globals.
    #[must_use]
    pub fn for_program(program: &Program, heap_words: usize) -> Self {
        let size = program.data_end() as usize + heap_words;
        let mut mem = FlatMemory {
            words: vec![0; size],
            heap_next: program.data_end(),
        };
        for g in &program.globals {
            for (i, v) in g.init.iter().enumerate() {
                mem.words[g.base as usize + i] = *v;
            }
        }
        mem
    }

    /// Number of words in this memory.
    #[must_use]
    pub fn size(&self) -> usize {
        self.words.len()
    }

    /// Address that the next `alloc` will return.
    #[must_use]
    pub fn heap_next(&self) -> i64 {
        self.heap_next
    }

    /// Moves the allocation cursor — used by backends that mirror this
    /// memory into another substrate and perform allocations there, so the
    /// cursor stays consistent across invocations.
    ///
    /// # Panics
    ///
    /// Panics if `addr` would move the cursor backwards or out of memory.
    pub fn set_heap_next(&mut self, addr: i64) {
        assert!(
            addr >= self.heap_next && addr as usize <= self.words.len(),
            "allocation cursor must move forward within memory"
        );
        self.heap_next = addr;
    }

    /// Reads a word without going through the [`MemPort`] trait.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::OutOfBoundsAccess`] for addresses outside memory.
    pub fn read(&self, addr: i64) -> Result<i64, TrapKind> {
        self.words
            .get(usize::try_from(addr).map_err(|_| TrapKind::OutOfBoundsAccess { addr })?)
            .copied()
            .ok_or(TrapKind::OutOfBoundsAccess { addr })
    }

    /// Writes a word without going through the [`MemPort`] trait.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::OutOfBoundsAccess`] for addresses outside memory.
    pub fn write(&mut self, addr: i64, value: i64) -> Result<(), TrapKind> {
        let idx = usize::try_from(addr).map_err(|_| TrapKind::OutOfBoundsAccess { addr })?;
        match self.words.get_mut(idx) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(TrapKind::OutOfBoundsAccess { addr }),
        }
    }

    /// Returns a snapshot of all words (used by equivalence tests).
    #[must_use]
    pub fn words(&self) -> &[i64] {
        &self.words
    }

    /// Mutable view of all words — used by backends that mirror this memory
    /// into a different substrate (e.g. the native runtime's shared heap)
    /// and copy the result back after an invocation.
    #[must_use]
    pub fn words_mut(&mut self) -> &mut [i64] {
        &mut self.words
    }
}

impl MemPort for FlatMemory {
    fn load(&mut self, addr: i64) -> Result<i64, TrapKind> {
        self.read(addr)
    }

    fn store(&mut self, addr: i64, value: i64) -> Result<(), TrapKind> {
        self.write(addr, value)
    }

    fn alloc(&mut self, words: i64) -> Result<i64, TrapKind> {
        if words < 0 {
            return Err(TrapKind::OutOfMemory);
        }
        let base = self.heap_next;
        let end = base.checked_add(words).ok_or(TrapKind::OutOfMemory)?;
        if end as usize > self.words.len() {
            return Err(TrapKind::OutOfMemory);
        }
        self.heap_next = end;
        Ok(base)
    }
}

/// In-process channel set usable when a single thread sends to itself or when
/// a test wants deterministic channel behaviour without a full machine.
#[derive(Debug, Default, Clone)]
pub struct LocalSys {
    channels: HashMap<i64, VecDeque<i64>>,
    /// Resteer requests observed (target core, target block); single-threaded
    /// execution has nowhere to deliver them, so they are just recorded.
    pub resteers: Vec<(i64, BlockId)>,
    /// Profile hook observations: `(site, values)`.
    pub profile_events: Vec<(u32, Vec<i64>)>,
}

impl LocalSys {
    /// Creates an empty channel set.
    #[must_use]
    pub fn new() -> Self {
        LocalSys::default()
    }
}

impl SysPort for LocalSys {
    fn send(&mut self, chan: i64, value: i64) {
        self.channels.entry(chan).or_default().push_back(value);
    }

    fn try_recv(&mut self, chan: i64) -> Option<i64> {
        self.channels.get_mut(&chan).and_then(VecDeque::pop_front)
    }

    fn resteer(&mut self, core: i64, target: BlockId) {
        self.resteers.push((core, target));
    }

    fn profile(&mut self, site: u32, values: &[i64]) {
        self.profile_events.push((site, values.to_vec()));
    }
}

/// Maximum call depth of a [`ThreadState`].
pub const MAX_CALL_DEPTH: usize = 1024;

/// What happened when a thread was stepped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// An instruction (or terminator) retired.
    Executed(ExecInfo),
    /// The thread is blocked on a `Recv` whose channel is empty; nothing
    /// retired this step.
    Blocked,
    /// The thread executed `Halt` (now permanently stopped).
    Halted,
    /// The outermost function returned with the given value.
    Finished(Option<i64>),
}

/// Timing-relevant description of a retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecInfo {
    /// Functional-unit class.
    pub class: InstClass,
    /// Word address touched, for loads and stores.
    pub mem_addr: Option<i64>,
    /// For branches: whether the branch was taken.
    pub branch_taken: Option<bool>,
}

impl ExecInfo {
    fn plain(class: InstClass) -> Self {
        ExecInfo {
            class,
            mem_addr: None,
            branch_taken: None,
        }
    }
}

/// Execution status of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// The thread can be stepped.
    Runnable,
    /// The thread executed `Halt`.
    Halted,
    /// The thread's outermost function returned.
    Finished,
    /// The thread trapped.
    Trapped(TrapKind),
}

#[derive(Debug, Clone)]
struct Frame {
    func: FuncId,
    block: BlockId,
    ip: usize,
    regs: Vec<i64>,
    ret_dst: Option<Reg>,
}

/// A single thread of IR execution.
///
/// The register file is function-local; calls push frames. The thread is
/// deliberately ignorant of time — the caller decides what each retired
/// instruction costs.
#[derive(Debug, Clone)]
pub struct ThreadState {
    func: FuncId,
    block: BlockId,
    ip: usize,
    regs: Vec<i64>,
    frames: Vec<Frame>,
    status: ThreadStatus,
    retired: u64,
}

impl ThreadState {
    /// Creates a thread positioned at the entry of `func` with `args` bound
    /// to the function's parameters.
    ///
    /// # Panics
    ///
    /// Panics if `args.len()` differs from the function's parameter count.
    #[must_use]
    pub fn new(program: &Program, func: FuncId, args: &[i64]) -> Self {
        let f = program.func(func);
        assert_eq!(
            args.len(),
            f.params.len(),
            "wrong number of arguments for {}",
            f.name
        );
        let mut regs = vec![0i64; f.reg_count()];
        for (p, a) in f.params.iter().zip(args) {
            regs[p.index()] = *a;
        }
        ThreadState {
            func,
            block: f.entry,
            ip: 0,
            regs,
            frames: Vec::new(),
            status: ThreadStatus::Runnable,
            retired: 0,
        }
    }

    /// The function currently executing (innermost frame).
    #[must_use]
    pub fn current_func(&self) -> FuncId {
        self.func
    }

    /// The block the thread is currently in.
    #[must_use]
    pub fn current_block(&self) -> BlockId {
        self.block
    }

    /// Current status.
    #[must_use]
    pub fn status(&self) -> ThreadStatus {
        self.status
    }

    /// Number of retired instructions (terminators included).
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads a register of the innermost frame.
    ///
    /// # Panics
    ///
    /// Panics if the register is out of range for the current function.
    #[must_use]
    pub fn reg(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    /// Writes a register of the innermost frame.
    ///
    /// # Panics
    ///
    /// Panics if the register is out of range for the current function.
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        self.regs[r.index()] = value;
    }

    /// Redirects the thread to `target` in its current function, clearing the
    /// instruction cursor — the effect of an incoming remote resteer
    /// (paper §3). Also clears a trapped or blocked state: a speculative
    /// thread that chased a dangling pointer and faulted is recovered this
    /// way.
    pub fn resteer_to(&mut self, target: BlockId) {
        self.block = target;
        self.ip = 0;
        self.status = ThreadStatus::Runnable;
    }

    /// Forces the thread into the trapped state (used by an enclosing
    /// machine when an external condition kills it).
    pub fn force_trap(&mut self, kind: TrapKind) {
        self.status = ThreadStatus::Trapped(kind);
    }

    fn operand(&self, op: Operand) -> i64 {
        match op {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Imm(v) => v,
        }
    }

    /// Executes at most one instruction.
    ///
    /// # Errors
    ///
    /// Returns the trap if the instruction faults; the thread's status is set
    /// to [`ThreadStatus::Trapped`] as well so the caller can squash or
    /// recover it later.
    pub fn step(
        &mut self,
        program: &Program,
        mem: &mut dyn MemPort,
        sys: &mut dyn SysPort,
    ) -> Result<StepEvent, TrapKind> {
        match self.status {
            ThreadStatus::Runnable => {}
            ThreadStatus::Halted => return Ok(StepEvent::Halted),
            ThreadStatus::Finished => return Ok(StepEvent::Finished(None)),
            ThreadStatus::Trapped(k) => return Err(k),
        }
        let func = program.func(self.func);
        let block = func.block(self.block);

        if self.ip < block.insts.len() {
            let inst = &block.insts[self.ip];
            let info = match self.exec_inst(program, inst, mem, sys) {
                Ok(info) => info,
                Err(trap) => {
                    self.status = ThreadStatus::Trapped(trap);
                    return Err(trap);
                }
            };
            match info {
                InstOutcome::Retired(exec) => {
                    self.ip += 1;
                    self.retired += 1;
                    Ok(StepEvent::Executed(exec))
                }
                InstOutcome::RetiredCall(exec) => {
                    // exec_inst already moved the cursor into the callee.
                    self.retired += 1;
                    Ok(StepEvent::Executed(exec))
                }
                InstOutcome::Blocked => Ok(StepEvent::Blocked),
                InstOutcome::Halted => {
                    self.status = ThreadStatus::Halted;
                    self.retired += 1;
                    Ok(StepEvent::Halted)
                }
            }
        } else {
            // Terminator.
            self.retired += 1;
            match block.terminator.clone() {
                Terminator::Br(t) => {
                    self.block = t;
                    self.ip = 0;
                    Ok(StepEvent::Executed(ExecInfo {
                        class: InstClass::Branch,
                        mem_addr: None,
                        branch_taken: Some(true),
                    }))
                }
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let taken = self.operand(cond) != 0;
                    self.block = if taken { then_bb } else { else_bb };
                    self.ip = 0;
                    Ok(StepEvent::Executed(ExecInfo {
                        class: InstClass::Branch,
                        mem_addr: None,
                        branch_taken: Some(taken),
                    }))
                }
                Terminator::Ret { value } => {
                    let v = value.map(|op| self.operand(op));
                    if let Some(frame) = self.frames.pop() {
                        self.func = frame.func;
                        self.block = frame.block;
                        self.ip = frame.ip;
                        self.regs = frame.regs;
                        if let (Some(dst), Some(v)) = (frame.ret_dst, v) {
                            self.regs[dst.index()] = v;
                        }
                        Ok(StepEvent::Executed(ExecInfo {
                            class: InstClass::Branch,
                            mem_addr: None,
                            branch_taken: Some(true),
                        }))
                    } else {
                        self.status = ThreadStatus::Finished;
                        Ok(StepEvent::Finished(v))
                    }
                }
                Terminator::Unreachable => {
                    self.status = ThreadStatus::Trapped(TrapKind::UnsupportedIntrinsic);
                    Err(TrapKind::UnsupportedIntrinsic)
                }
            }
        }
    }

    fn exec_inst(
        &mut self,
        program: &Program,
        inst: &Inst,
        mem: &mut dyn MemPort,
        sys: &mut dyn SysPort,
    ) -> Result<InstOutcome, TrapKind> {
        let class = inst.class();
        Ok(match inst {
            Inst::Binary { op, dst, lhs, rhs } => {
                let v = op.eval(self.operand(*lhs), self.operand(*rhs))?;
                self.regs[dst.index()] = v;
                InstOutcome::Retired(ExecInfo::plain(class))
            }
            Inst::Copy { dst, src } => {
                self.regs[dst.index()] = self.operand(*src);
                InstOutcome::Retired(ExecInfo::plain(class))
            }
            Inst::Select {
                dst,
                cond,
                if_true,
                if_false,
            } => {
                let v = if self.operand(*cond) != 0 {
                    self.operand(*if_true)
                } else {
                    self.operand(*if_false)
                };
                self.regs[dst.index()] = v;
                InstOutcome::Retired(ExecInfo::plain(class))
            }
            Inst::Load { dst, addr, offset } => {
                let a = self.operand(*addr) + offset;
                let v = mem.load(a)?;
                self.regs[dst.index()] = v;
                InstOutcome::Retired(ExecInfo {
                    class,
                    mem_addr: Some(a),
                    branch_taken: None,
                })
            }
            Inst::Store { src, addr, offset } => {
                let a = self.operand(*addr) + offset;
                mem.store(a, self.operand(*src))?;
                InstOutcome::Retired(ExecInfo {
                    class,
                    mem_addr: Some(a),
                    branch_taken: None,
                })
            }
            Inst::Alloc { dst, words } => {
                let base = mem.alloc(self.operand(*words))?;
                self.regs[dst.index()] = base;
                InstOutcome::Retired(ExecInfo::plain(class))
            }
            Inst::Call { dst, func, args } => {
                if self.frames.len() >= MAX_CALL_DEPTH {
                    return Err(TrapKind::StackOverflow);
                }
                if func.index() >= program.funcs.len() {
                    return Err(TrapKind::UnknownFunction);
                }
                let callee = program.func(*func);
                if callee.params.len() != args.len() {
                    return Err(TrapKind::UnknownFunction);
                }
                let arg_vals: Vec<i64> = args.iter().map(|a| self.operand(*a)).collect();
                let mut new_regs = vec![0i64; callee.reg_count()];
                for (p, v) in callee.params.iter().zip(&arg_vals) {
                    new_regs[p.index()] = *v;
                }
                let frame = Frame {
                    func: self.func,
                    block: self.block,
                    ip: self.ip + 1,
                    regs: std::mem::replace(&mut self.regs, new_regs),
                    ret_dst: *dst,
                };
                self.frames.push(frame);
                self.func = *func;
                self.block = callee.entry;
                self.ip = 0;
                InstOutcome::RetiredCall(ExecInfo::plain(InstClass::Branch))
            }
            Inst::Send { chan, value } => {
                sys.send(self.operand(*chan), self.operand(*value));
                InstOutcome::Retired(ExecInfo::plain(class))
            }
            Inst::Recv { dst, chan } => match sys.try_recv(self.operand(*chan)) {
                Some(v) => {
                    self.regs[dst.index()] = v;
                    InstOutcome::Retired(ExecInfo::plain(class))
                }
                None => InstOutcome::Blocked,
            },
            Inst::SpecBegin => {
                sys.spec_begin();
                InstOutcome::Retired(ExecInfo::plain(class))
            }
            Inst::SpecCommit => {
                sys.spec_commit();
                InstOutcome::Retired(ExecInfo::plain(class))
            }
            Inst::SpecAbort => {
                sys.spec_abort();
                InstOutcome::Retired(ExecInfo::plain(class))
            }
            Inst::SpecCheck { dst, core } => {
                let verdict = sys.spec_conflict(self.operand(*core));
                self.regs[dst.index()] = verdict;
                InstOutcome::Retired(ExecInfo::plain(class))
            }
            Inst::Resteer { core, target } => {
                sys.resteer(self.operand(*core), *target);
                InstOutcome::Retired(ExecInfo::plain(class))
            }
            Inst::Halt => InstOutcome::Halted,
            Inst::Nop => InstOutcome::Retired(ExecInfo::plain(class)),
            Inst::ProfileHook { site, regs } => {
                let values: Vec<i64> = regs.iter().map(|r| self.regs[r.index()]).collect();
                sys.profile(*site, &values);
                InstOutcome::Retired(ExecInfo::plain(class))
            }
        })
    }
}

enum InstOutcome {
    Retired(ExecInfo),
    RetiredCall(ExecInfo),
    Blocked,
    Halted,
}

/// Dynamic instruction counts per class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    counts: HashMap<InstClass, u64>,
    /// Total retired instructions.
    pub total: u64,
}

impl ExecStats {
    /// Records one retired instruction.
    pub fn record(&mut self, class: InstClass) {
        *self.counts.entry(class).or_insert(0) += 1;
        self.total += 1;
    }

    /// Count for one class.
    #[must_use]
    pub fn count(&self, class: InstClass) -> u64 {
        self.counts.get(&class).copied().unwrap_or(0)
    }
}

/// Result of a completed single-threaded run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Value returned by the outermost function, if any.
    pub return_value: Option<i64>,
    /// Dynamic instruction statistics.
    pub stats: ExecStats,
}

/// Default instruction budget for convenience runs.
pub const DEFAULT_FUEL: u64 = 500_000_000;

/// Runs `func` to completion on `mem` with a [`LocalSys`].
///
/// # Errors
///
/// Returns any trap raised during execution, including
/// [`TrapKind::OutOfFuel`] if the run exceeds [`DEFAULT_FUEL`] instructions.
pub fn run_function(
    program: &Program,
    func: FuncId,
    args: &[i64],
    mem: &mut FlatMemory,
) -> Result<RunOutcome, TrapKind> {
    let mut sys = LocalSys::new();
    run_function_with(
        program,
        func,
        args,
        mem,
        &mut sys,
        DEFAULT_FUEL,
        |_, _, _| {},
    )
}

/// Runs `func` to completion with full control over the system port, fuel
/// budget and a per-instruction observer.
///
/// The observer is called before each instruction (not terminators) with the
/// current function, block and instruction; the value profiler and the
/// hotness measurement are built on it.
///
/// # Errors
///
/// Returns any trap raised during execution, [`TrapKind::OutOfFuel`] if the
/// fuel budget is exhausted, or [`TrapKind::UnsupportedIntrinsic`] if the
/// thread blocks forever on an empty channel.
pub fn run_function_with(
    program: &Program,
    func: FuncId,
    args: &[i64],
    mem: &mut impl MemPort,
    sys: &mut impl SysPort,
    fuel: u64,
    mut observer: impl FnMut(FuncId, BlockId, &Inst),
) -> Result<RunOutcome, TrapKind> {
    let mut thread = ThreadState::new(program, func, args);
    let mut stats = ExecStats::default();
    let mut steps: u64 = 0;
    loop {
        if steps >= fuel {
            return Err(TrapKind::OutOfFuel);
        }
        steps += 1;
        // Observe the instruction about to execute.
        let f = program.func(thread.func);
        let blk = f.block(thread.block);
        if thread.ip < blk.insts.len() {
            observer(thread.func, thread.block, &blk.insts[thread.ip]);
        }
        match thread.step(program, mem, sys)? {
            StepEvent::Executed(info) => stats.record(info.class),
            StepEvent::Blocked => {
                // Single-threaded: nobody will ever fill the channel.
                return Err(TrapKind::UnsupportedIntrinsic);
            }
            StepEvent::Halted => {
                return Ok(RunOutcome {
                    return_value: None,
                    stats,
                })
            }
            StepEvent::Finished(v) => {
                return Ok(RunOutcome {
                    return_value: v,
                    stats,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::BinOp;

    fn simple_add_program() -> (Program, FuncId) {
        let mut b = FunctionBuilder::new("add");
        let x = b.param();
        let y = b.param();
        let s = b.binop(BinOp::Add, x, y);
        b.ret(Some(Operand::Reg(s)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        (p, f)
    }

    #[test]
    fn add_function_returns_sum() {
        let (p, f) = simple_add_program();
        let mut mem = FlatMemory::new(2048);
        let out = run_function(&p, f, &[2, 40], &mut mem).unwrap();
        assert_eq!(out.return_value, Some(42));
        assert_eq!(out.stats.count(InstClass::IntAlu), 1);
        // The outermost `ret` is reported as `Finished`, not as a retired
        // branch, so only the ALU op is counted.
        assert_eq!(out.stats.total, 1);
    }

    #[test]
    fn wrong_arity_panics() {
        let (p, f) = simple_add_program();
        let result = std::panic::catch_unwind(|| ThreadState::new(&p, f, &[1]));
        assert!(result.is_err());
    }

    #[test]
    fn calls_push_and_pop_frames() {
        // callee(x) = x * 2 ; main() = callee(21)
        let mut cb = FunctionBuilder::new("callee");
        let x = cb.param();
        let d = cb.binop(BinOp::Mul, x, 2i64);
        cb.ret(Some(Operand::Reg(d)));

        let mut p = Program::new();
        let callee = p.add_func(cb.finish());

        let mut mb = FunctionBuilder::new("main");
        let r = mb.call(callee, vec![Operand::Imm(21)]);
        let r2 = mb.binop(BinOp::Add, r, 0i64);
        mb.ret(Some(Operand::Reg(r2)));
        let main = p.add_func(mb.finish());

        let mut mem = FlatMemory::new(2048);
        let out = run_function(&p, main, &[], &mut mem).unwrap();
        assert_eq!(out.return_value, Some(42));
    }

    #[test]
    fn load_store_roundtrip() {
        let mut b = FunctionBuilder::new("mem");
        let addr = b.param();
        b.store(99i64, addr, 3);
        let v = b.load(addr, 3);
        b.ret(Some(Operand::Reg(v)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(2048);
        let out = run_function(&p, f, &[1500], &mut mem).unwrap();
        assert_eq!(out.return_value, Some(99));
        assert_eq!(mem.read(1503).unwrap(), 99);
    }

    #[test]
    fn out_of_bounds_load_traps() {
        let mut b = FunctionBuilder::new("oob");
        let v = b.load(1_000_000i64, 0);
        b.ret(Some(Operand::Reg(v)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(2048);
        let err = run_function(&p, f, &[], &mut mem).unwrap_err();
        assert_eq!(err, TrapKind::OutOfBoundsAccess { addr: 1_000_000 });
    }

    #[test]
    fn alloc_bumps_heap() {
        let mut b = FunctionBuilder::new("alloc");
        let a = b.alloc(4i64);
        let c = b.alloc(4i64);
        let diff = b.binop(BinOp::Sub, c, a);
        b.ret(Some(Operand::Reg(diff)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(4096);
        let out = run_function(&p, f, &[], &mut mem).unwrap();
        assert_eq!(out.return_value, Some(4));
    }

    #[test]
    fn alloc_failure_traps() {
        let mut b = FunctionBuilder::new("big");
        let a = b.alloc(1_000_000i64);
        b.ret(Some(Operand::Reg(a)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(2048);
        assert_eq!(
            run_function(&p, f, &[], &mut mem).unwrap_err(),
            TrapKind::OutOfMemory
        );
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let mut b = FunctionBuilder::new("spin");
        let header = b.new_block();
        b.br(header);
        b.switch_to(header);
        b.br(header);
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(64);
        let mut sys = LocalSys::new();
        let err =
            run_function_with(&p, f, &[], &mut mem, &mut sys, 1000, |_, _, _| {}).unwrap_err();
        assert_eq!(err, TrapKind::OutOfFuel);
    }

    #[test]
    fn halt_stops_thread() {
        let mut b = FunctionBuilder::new("halts");
        b.push(Inst::Halt);
        b.ret(None);
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(64);
        let out = run_function(&p, f, &[], &mut mem).unwrap();
        assert_eq!(out.return_value, None);
    }

    #[test]
    fn send_recv_through_local_sys() {
        let mut b = FunctionBuilder::new("chan");
        b.send(7i64, 123i64);
        let v = b.recv(7i64);
        b.ret(Some(Operand::Reg(v)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(64);
        let out = run_function(&p, f, &[], &mut mem).unwrap();
        assert_eq!(out.return_value, Some(123));
    }

    #[test]
    fn blocked_recv_is_reported() {
        let mut b = FunctionBuilder::new("block");
        let v = b.recv(1i64);
        b.ret(Some(Operand::Reg(v)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(64);
        let mut sys = LocalSys::new();
        let mut t = ThreadState::new(&p, f, &[]);
        assert_eq!(t.step(&p, &mut mem, &mut sys).unwrap(), StepEvent::Blocked);
        // Still runnable; delivering a value unblocks it.
        sys.send(1, 5);
        assert!(matches!(
            t.step(&p, &mut mem, &mut sys).unwrap(),
            StepEvent::Executed(_)
        ));
    }

    #[test]
    fn profile_hook_reports_registers() {
        let mut b = FunctionBuilder::new("prof");
        let r = b.copy(17i64);
        b.profile_hook(3, vec![r]);
        b.ret(None);
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(64);
        let mut sys = LocalSys::new();
        run_function_with(&p, f, &[], &mut mem, &mut sys, 1000, |_, _, _| {}).unwrap();
        assert_eq!(sys.profile_events, vec![(3, vec![17])]);
    }

    #[test]
    fn resteer_recovers_trapped_thread() {
        let mut b = FunctionBuilder::new("fault");
        let recover = b.new_labeled_block("recover");
        let v = b.load(1_000_000i64, 0); // traps
        b.ret(Some(Operand::Reg(v)));
        b.switch_to(recover);
        b.ret(Some(Operand::Imm(-1)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut mem = FlatMemory::new(64);
        let mut sys = LocalSys::new();
        let mut t = ThreadState::new(&p, f, &[]);
        assert!(t.step(&p, &mut mem, &mut sys).is_err());
        assert!(matches!(t.status(), ThreadStatus::Trapped(_)));
        t.resteer_to(recover);
        assert_eq!(t.status(), ThreadStatus::Runnable);
        let ev = t.step(&p, &mut mem, &mut sys).unwrap();
        assert_eq!(ev, StepEvent::Finished(Some(-1)));
    }

    #[test]
    fn globals_are_materialized_by_for_program() {
        let mut p = Program::new();
        let base = p.add_global_init("table", 4, vec![9, 8]);
        let mem = FlatMemory::for_program(&p, 128);
        assert_eq!(mem.read(base).unwrap(), 9);
        assert_eq!(mem.read(base + 1).unwrap(), 8);
        assert_eq!(mem.read(base + 2).unwrap(), 0);
        assert_eq!(mem.heap_next(), p.data_end());
    }

    #[test]
    fn observer_sees_instructions() {
        let (p, f) = simple_add_program();
        let mut mem = FlatMemory::new(64);
        let mut sys = LocalSys::new();
        let mut seen = 0;
        run_function_with(&p, f, &[1, 2], &mut mem, &mut sys, 100, |_, _, _| seen += 1).unwrap();
        assert_eq!(seen, 1); // one non-terminator instruction
    }
}
