//! Dominator tree construction (Cooper–Harvey–Kennedy iterative algorithm).

use crate::cfg::Cfg;
use crate::types::BlockId;

/// Dominator information for the reachable part of a CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block (`None` for the entry and for
    /// unreachable blocks).
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    /// Computes dominators over `cfg`.
    #[must_use]
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.block_count();
        let entry = cfg.entry();
        let rpo = cfg.rpo();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            // Walk up the tree using RPO indices as the ordering.
            while a != b {
                let (mut ai, mut bi) = (
                    cfg.rpo_index(a).expect("reachable"),
                    cfg.rpo_index(b).expect("reachable"),
                );
                while ai > bi {
                    a = idom[a.index()].expect("processed");
                    ai = cfg.rpo_index(a).expect("reachable");
                }
                while bi > ai {
                    b = idom[b.index()].expect("processed");
                    bi = cfg.rpo_index(b).expect("reachable");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // Pick the first processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if !cfg.is_reachable(p) {
                        continue;
                    }
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // The entry's idom is conventionally itself during computation; store
        // None so callers see a proper tree root.
        idom[entry.index()] = None;
        DomTree { idom, entry }
    }

    /// Immediate dominator of `b` (`None` for the entry block and for
    /// unreachable blocks).
    #[must_use]
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) => cur = next,
                None => return cur == a && a == self.entry,
            }
        }
    }

    /// Returns the blocks on the dominator-tree path from the entry to `b`,
    /// inclusive.
    #[must_use]
    pub fn dominators_of(&self, b: BlockId) -> Vec<BlockId> {
        let mut out = vec![b];
        let mut cur = b;
        while let Some(next) = self.idom(cur) {
            out.push(next);
            cur = next;
        }
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Function;
    use crate::types::{BinOp, Operand};

    fn diamond_with_loop() -> Function {
        // bb0 -> bb1(header) -> {bb2, bb4(exit)} ; bb2 -> {bb3} ; bb3 -> bb1
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let header = b.new_block();
        let body = b.new_block();
        let latch = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let c = b.binop(BinOp::Gt, x, 0i64);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        b.br(latch);
        b.switch_to(latch);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Imm(0)));
        b.finish()
    }

    #[test]
    fn idoms_follow_structure() {
        let f = diamond_with_loop();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        assert_eq!(dom.idom(BlockId(0)), None);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(2)));
        assert_eq!(dom.idom(BlockId(4)), Some(BlockId(1)));
    }

    #[test]
    fn dominance_queries() {
        let f = diamond_with_loop();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        assert!(dom.dominates(BlockId(0), BlockId(4)));
        assert!(dom.dominates(BlockId(1), BlockId(3)));
        assert!(dom.dominates(BlockId(2), BlockId(2)));
        assert!(!dom.dominates(BlockId(2), BlockId(4)));
        assert!(!dom.dominates(BlockId(3), BlockId(1)));
    }

    #[test]
    fn dominator_chain_is_rooted_at_entry() {
        let f = diamond_with_loop();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        let chain = dom.dominators_of(BlockId(3));
        assert_eq!(chain, vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3)]);
    }

    #[test]
    fn merge_point_dominated_by_branch_not_arms() {
        let mut b = FunctionBuilder::new("diamond");
        let x = b.param();
        let a = b.new_block();
        let c = b.new_block();
        let join = b.new_block();
        let cond = b.binop(BinOp::Gt, x, 0i64);
        b.cond_br(cond, a, c);
        b.switch_to(a);
        b.br(join);
        b.switch_to(c);
        b.br(join);
        b.switch_to(join);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        assert_eq!(dom.idom(join), Some(BlockId(0)));
        assert!(!dom.dominates(a, join));
        assert!(!dom.dominates(c, join));
    }
}
