//! A reusable forward/backward dataflow framework over [`Cfg`], plus the
//! standard instances the speculation-safety tooling is built from:
//! reaching definitions, available memory-base expressions, loop-carried
//! definition chains, and the static dependence pre-screen that classifies a
//! loop's store/load pairs.
//!
//! The framework is deliberately small: facts are per-block values joined at
//! control-flow merges by a caller-supplied `join`, propagated by a
//! caller-supplied block `transfer`, and iterated to a fixpoint on a
//! worklist seeded in (reverse) post order. Programs in this repository are
//! generated kernels of at most a few hundred instructions, so facts are
//! plain hash maps rather than bit vectors — clarity wins over constant
//! factors at this scale.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::cfg::Cfg;
use crate::function::Function;
use crate::inst::Inst;
use crate::types::{BinOp, BlockId, Operand, Reg};

// ---------------------------------------------------------------------------
// The framework.
// ---------------------------------------------------------------------------

/// Direction a dataflow analysis propagates facts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry along control-flow edges.
    Forward,
    /// Facts flow from exits against control-flow edges.
    Backward,
}

/// A dataflow analysis: fact type, lattice operations and block transfer.
pub trait Analysis {
    /// The fact attached to each block boundary.
    type Fact: Clone + PartialEq;

    /// Which way facts propagate.
    fn direction(&self) -> Direction;

    /// The fact at the analysis boundary: the function entry (forward) or
    /// every exit block (backward).
    fn boundary_fact(&self, func: &Function) -> Self::Fact;

    /// The most optimistic fact, used to initialize unvisited blocks.
    fn empty_fact(&self) -> Self::Fact;

    /// Joins `from` into `into`; returns `true` if `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Applies one whole block to `fact` (instructions in execution order
    /// for forward analyses, reverse order for backward ones).
    fn transfer(&self, func: &Function, block: BlockId, fact: Self::Fact) -> Self::Fact;
}

/// The fixpoint of a dataflow analysis: one input and one output fact per
/// block, indexed by [`BlockId::index`]. For a backward analysis the "input"
/// is still the fact *before* the block in propagation order, i.e. the fact
/// at the block's end.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact entering each block (block start for forward, block end for
    /// backward analyses).
    pub block_in: Vec<F>,
    /// Fact leaving each block after its transfer.
    pub block_out: Vec<F>,
}

/// Runs `analysis` to a fixpoint over `func`'s control-flow graph.
pub fn solve<A: Analysis>(analysis: &A, func: &Function, cfg: &Cfg) -> Solution<A::Fact> {
    let n = cfg.block_count();
    let mut block_in: Vec<A::Fact> = (0..n).map(|_| analysis.empty_fact()).collect();
    let mut block_out: Vec<A::Fact> = (0..n).map(|_| analysis.empty_fact()).collect();
    let forward = analysis.direction() == Direction::Forward;

    // Seed the boundary: the entry for forward analyses, every block with no
    // successors (or only back edges out of the reachable region) for
    // backward ones — joining the boundary fact in keeps exits correct even
    // when a `ret` appears mid-function.
    let order: Vec<BlockId> = if forward {
        cfg.rpo().to_vec()
    } else {
        cfg.rpo().iter().rev().copied().collect()
    };
    if forward {
        if let Some(entry) = order.first() {
            block_in[entry.index()] = analysis.boundary_fact(func);
        }
    } else {
        for &b in &order {
            if cfg.succs(b).is_empty() {
                block_in[b.index()] = analysis.boundary_fact(func);
            }
        }
    }

    let mut on_list: Vec<bool> = vec![false; n];
    let mut worklist: std::collections::VecDeque<BlockId> = order.iter().copied().collect();
    for &b in &worklist {
        on_list[b.index()] = true;
    }

    while let Some(b) = worklist.pop_front() {
        on_list[b.index()] = false;
        let out = analysis.transfer(func, b, block_in[b.index()].clone());
        if out == block_out[b.index()] {
            continue;
        }
        block_out[b.index()] = out;
        let next: Vec<BlockId> = if forward {
            cfg.succs(b).to_vec()
        } else {
            cfg.preds(b).to_vec()
        };
        for s in next {
            let changed = {
                let from = block_out[b.index()].clone();
                analysis.join(&mut block_in[s.index()], &from)
            };
            if changed && !on_list[s.index()] {
                on_list[s.index()] = true;
                worklist.push_back(s);
            }
        }
    }

    Solution {
        block_in,
        block_out,
    }
}

// ---------------------------------------------------------------------------
// Reaching definitions.
// ---------------------------------------------------------------------------

/// A definition of a register: either a function parameter or an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Def {
    /// The `i`-th function parameter, defined at entry.
    Param(usize),
    /// The instruction at `site`.
    Inst(DefSite),
}

/// The position of an instruction inside a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DefSite {
    /// Block containing the instruction.
    pub block: BlockId,
    /// Index of the instruction inside the block.
    pub ip: usize,
}

/// The reaching-definitions fact: for each register, the set of definitions
/// that may reach this program point.
pub type DefMap = BTreeMap<Reg, BTreeSet<Def>>;

struct ReachingAnalysis;

impl Analysis for ReachingAnalysis {
    type Fact = DefMap;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary_fact(&self, func: &Function) -> DefMap {
        func.params
            .iter()
            .enumerate()
            .map(|(i, r)| (*r, BTreeSet::from([Def::Param(i)])))
            .collect()
    }

    fn empty_fact(&self) -> DefMap {
        DefMap::new()
    }

    fn join(&self, into: &mut DefMap, from: &DefMap) -> bool {
        let mut changed = false;
        for (reg, defs) in from {
            let entry = into.entry(*reg).or_default();
            for d in defs {
                changed |= entry.insert(*d);
            }
        }
        changed
    }

    fn transfer(&self, func: &Function, block: BlockId, mut fact: DefMap) -> DefMap {
        for (ip, inst) in func.block(block).insts.iter().enumerate() {
            if let Some(dst) = inst.def() {
                fact.insert(dst, BTreeSet::from([Def::Inst(DefSite { block, ip })]));
            }
        }
        fact
    }
}

/// Reaching definitions for one function.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    solution: Solution<DefMap>,
}

impl ReachingDefs {
    /// Computes reaching definitions over `func`.
    #[must_use]
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        ReachingDefs {
            solution: solve(&ReachingAnalysis, func, cfg),
        }
    }

    /// The definitions reaching the start of `block`.
    #[must_use]
    pub fn reaching_in(&self, block: BlockId) -> &DefMap {
        &self.solution.block_in[block.index()]
    }

    /// The definitions reaching the end of `block`.
    #[must_use]
    pub fn reaching_out(&self, block: BlockId) -> &DefMap {
        &self.solution.block_out[block.index()]
    }
}

/// For each register defined inside the loop, the in-loop definition sites
/// that reach the loop header along a back edge — the loop-carried definition
/// chains. Registers whose in-loop definitions never reach a latch exit (or
/// that are not redefined in the loop at all) are absent.
#[must_use]
pub fn loop_carried_defs(
    rd: &ReachingDefs,
    loop_blocks: &[BlockId],
    latches: &[BlockId],
) -> BTreeMap<Reg, BTreeSet<DefSite>> {
    let in_loop: BTreeSet<BlockId> = loop_blocks.iter().copied().collect();
    let mut carried: BTreeMap<Reg, BTreeSet<DefSite>> = BTreeMap::new();
    for &latch in latches {
        for (reg, defs) in rd.reaching_out(latch) {
            for d in defs {
                if let Def::Inst(site) = d {
                    if in_loop.contains(&site.block) {
                        carried.entry(*reg).or_default().insert(*site);
                    }
                }
            }
        }
    }
    carried
}

// ---------------------------------------------------------------------------
// Available memory-base expressions.
// ---------------------------------------------------------------------------

/// The symbolic base of an address expression.
///
/// `Param` and `Const` bases are *anchored*: their runtime value is fixed for
/// a whole function invocation, so two anchored expressions can be compared
/// exactly across loop iterations. A `Load` base is a pointer chase (the
/// value the load at `DefSite` produced — different in every iteration of a
/// list walk), and `Unknown` is everything the analysis cannot name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base {
    /// The `i`-th function parameter.
    Param(usize),
    /// An absolute constant address; the full address lives in
    /// [`AddrExpr::offset`].
    Const,
    /// The result of the load instruction at this site.
    Load(DefSite),
    /// Not representable as base + constant offset.
    Unknown,
}

/// A symbolic address: `base + offset` words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrExpr {
    /// Symbolic base.
    pub base: Base,
    /// Constant word offset from the base (the absolute address for
    /// [`Base::Const`]).
    pub offset: i64,
}

impl AddrExpr {
    /// The unknown address.
    #[must_use]
    pub fn unknown() -> Self {
        AddrExpr {
            base: Base::Unknown,
            offset: 0,
        }
    }

    /// The constant absolute address `addr`.
    #[must_use]
    pub fn constant(addr: i64) -> Self {
        AddrExpr {
            base: Base::Const,
            offset: addr,
        }
    }

    /// The fully resolved absolute address, when the expression is constant.
    #[must_use]
    pub fn as_const(&self) -> Option<i64> {
        match self.base {
            Base::Const => Some(self.offset),
            _ => None,
        }
    }

    /// Whether the base value is fixed for a whole invocation.
    #[must_use]
    pub fn is_anchored(&self) -> bool {
        matches!(self.base, Base::Param(_) | Base::Const)
    }

    fn add_const(self, k: i64) -> Self {
        match self.base {
            Base::Unknown => AddrExpr::unknown(),
            _ => AddrExpr {
                base: self.base,
                offset: self.offset.wrapping_add(k),
            },
        }
    }
}

type ExprMap = HashMap<Reg, AddrExpr>;

struct BaseExprAnalysis;

fn eval_operand(map: &ExprMap, op: &Operand) -> AddrExpr {
    match op {
        Operand::Imm(v) => AddrExpr::constant(*v),
        Operand::Reg(r) => map.get(r).copied().unwrap_or_else(AddrExpr::unknown),
    }
}

fn transfer_inst(map: &mut ExprMap, block: BlockId, ip: usize, inst: &Inst) {
    let Some(dst) = inst.def() else {
        return;
    };
    let value = match inst {
        Inst::Copy { src, .. } => eval_operand(map, src),
        Inst::Binary { op, lhs, rhs, .. } => {
            let a = eval_operand(map, lhs);
            let b = eval_operand(map, rhs);
            match (op, a.as_const(), b.as_const()) {
                (BinOp::Add, Some(ka), Some(kb)) => AddrExpr::constant(ka.wrapping_add(kb)),
                (BinOp::Sub, Some(ka), Some(kb)) => AddrExpr::constant(ka.wrapping_sub(kb)),
                (BinOp::Mul, Some(ka), Some(kb)) => AddrExpr::constant(ka.wrapping_mul(kb)),
                (BinOp::Add, Some(ka), None) => b.add_const(ka),
                (BinOp::Add, None, Some(kb)) => a.add_const(kb),
                (BinOp::Sub, None, Some(kb)) => a.add_const(kb.wrapping_neg()),
                _ => AddrExpr::unknown(),
            }
        }
        Inst::Load { .. } => AddrExpr {
            base: Base::Load(DefSite { block, ip }),
            offset: 0,
        },
        _ => AddrExpr::unknown(),
    };
    map.insert(dst, value);
}

impl Analysis for BaseExprAnalysis {
    type Fact = ExprMap;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary_fact(&self, func: &Function) -> ExprMap {
        func.params
            .iter()
            .enumerate()
            .map(|(i, r)| {
                (
                    *r,
                    AddrExpr {
                        base: Base::Param(i),
                        offset: 0,
                    },
                )
            })
            .collect()
    }

    fn empty_fact(&self) -> ExprMap {
        ExprMap::new()
    }

    fn join(&self, into: &mut ExprMap, from: &ExprMap) -> bool {
        let mut changed = false;
        // A register absent from one side was never defined on that path;
        // the verifier's definite-assignment pass guarantees such a value is
        // never used, so keeping the defined side's expression is sound.
        for (reg, expr) in from {
            match into.get_mut(reg) {
                None => {
                    into.insert(*reg, *expr);
                    changed = true;
                }
                Some(have) if have != expr => {
                    if have.base != Base::Unknown {
                        *have = AddrExpr::unknown();
                        changed = true;
                    }
                }
                Some(_) => {}
            }
        }
        changed
    }

    fn transfer(&self, func: &Function, block: BlockId, mut fact: ExprMap) -> ExprMap {
        for (ip, inst) in func.block(block).insts.iter().enumerate() {
            transfer_inst(&mut fact, block, ip, inst);
        }
        fact
    }
}

/// Available memory-base expressions: for every program point, the symbolic
/// `base + offset` value of each register, suitable for resolving load/store
/// addresses.
#[derive(Debug, Clone)]
pub struct BaseExprs {
    solution: Solution<ExprMap>,
}

/// One memory access (load or store) with its resolved symbolic address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Where the access sits.
    pub site: DefSite,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
    /// The accessed address, with the instruction's static offset folded in.
    pub expr: AddrExpr,
}

impl BaseExprs {
    /// Computes available base expressions over `func`.
    #[must_use]
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        BaseExprs {
            solution: solve(&BaseExprAnalysis, func, cfg),
        }
    }

    /// The symbolic value of `op` just before instruction `ip` of `block`,
    /// obtained by replaying the block prefix over the block-entry fact.
    #[must_use]
    pub fn eval_before(
        &self,
        func: &Function,
        block: BlockId,
        ip: usize,
        op: &Operand,
    ) -> AddrExpr {
        let mut map = self.solution.block_in[block.index()].clone();
        for (i, inst) in func.block(block).insts.iter().enumerate().take(ip) {
            transfer_inst(&mut map, block, i, inst);
        }
        eval_operand(&map, op)
    }

    /// Every load and store in `blocks` with its resolved address
    /// expression, in block order.
    #[must_use]
    pub fn accesses(&self, func: &Function, blocks: &[BlockId]) -> Vec<MemAccess> {
        let mut out = Vec::new();
        for &b in blocks {
            let mut map = self.solution.block_in[b.index()].clone();
            for (ip, inst) in func.block(b).insts.iter().enumerate() {
                match inst {
                    Inst::Load { addr, offset, .. } => out.push(MemAccess {
                        site: DefSite { block: b, ip },
                        is_store: false,
                        expr: eval_operand(&map, addr).add_const(*offset),
                    }),
                    Inst::Store { addr, offset, .. } => out.push(MemAccess {
                        site: DefSite { block: b, ip },
                        is_store: true,
                        expr: eval_operand(&map, addr).add_const(*offset),
                    }),
                    _ => {}
                }
                transfer_inst(&mut map, b, ip, inst);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Static dependence pre-screen.
// ---------------------------------------------------------------------------

/// How a loop's cross-iteration store/load dependences classify statically.
///
/// The lattice is ordered by certainty of *safety*: `ProvablyDisjoint` means
/// no chunk of iterations can read a word another chunk wrote (so conflict
/// detection can never fire), `ProvablyDependent` names a concrete
/// same-address store/load pair, and `Unknown` is everything in between —
/// pointer chases, calls, or unresolved bases. Only the disjoint claim is a
/// proof; the safety-critical soundness direction is that a loop with
/// dynamically measured dependence violations is never classified
/// `ProvablyDisjoint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DependenceClass {
    /// Every store/load pair provably touches distinct addresses (or the
    /// loop performs no stores at all).
    ProvablyDisjoint,
    /// At least one store/load pair could not be resolved.
    Unknown,
    /// A store and a load provably touch the same address.
    ProvablyDependent,
}

impl std::fmt::Display for DependenceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DependenceClass::ProvablyDisjoint => write!(f, "provably-disjoint"),
            DependenceClass::Unknown => write!(f, "unknown"),
            DependenceClass::ProvablyDependent => write!(f, "provably-dependent"),
        }
    }
}

/// The dependence pre-screen summary for one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopDependence {
    /// Overall classification.
    pub class: DependenceClass,
    /// Stores inside the loop body.
    pub stores: usize,
    /// Loads inside the loop body.
    pub loads: usize,
    /// Store/load pairs proved to touch distinct addresses.
    pub disjoint_pairs: usize,
    /// Store/load pairs proved to touch the same address.
    pub dependent_pairs: usize,
    /// Store/load pairs the analysis could not resolve.
    pub unknown_pairs: usize,
    /// Whether the loop contains calls (whose callees may store).
    pub has_calls: bool,
}

/// Classifies one store/load pair from their symbolic addresses.
fn classify_pair(store: &AddrExpr, load: &AddrExpr) -> DependenceClass {
    if let (Some(a), Some(b)) = (store.as_const(), load.as_const()) {
        return if a == b {
            DependenceClass::ProvablyDependent
        } else {
            DependenceClass::ProvablyDisjoint
        };
    }
    // Anchored bases hold one fixed value for the whole invocation, so a
    // shared base compares by offset — valid across iterations, not just
    // within one.
    if store.is_anchored() && load.is_anchored() && store.base == load.base {
        return if store.offset == load.offset {
            DependenceClass::ProvablyDependent
        } else {
            DependenceClass::ProvablyDisjoint
        };
    }
    DependenceClass::Unknown
}

/// Statically classifies the store/load pairs of the loop spanning `blocks`
/// in `func`.
///
/// Only store/load pairs matter for Spice's speculation safety: chunks
/// commit in iteration order, so a write/write overlap resolves exactly as
/// it would sequentially, while a later chunk *reading* a word an earlier
/// chunk wrote is the dependence violation the conflict detector hunts.
#[must_use]
pub fn classify_loop_dependences(func: &Function, cfg: &Cfg, blocks: &[BlockId]) -> LoopDependence {
    let exprs = BaseExprs::compute(func, cfg);
    let accesses = exprs.accesses(func, blocks);
    let has_calls = blocks.iter().any(|&b| {
        func.block(b)
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Call { .. }))
    });

    let stores: Vec<&MemAccess> = accesses.iter().filter(|a| a.is_store).collect();
    let loads: Vec<&MemAccess> = accesses.iter().filter(|a| !a.is_store).collect();

    let mut dep = LoopDependence {
        class: DependenceClass::Unknown,
        stores: stores.len(),
        loads: loads.len(),
        disjoint_pairs: 0,
        dependent_pairs: 0,
        unknown_pairs: 0,
        has_calls,
    };

    for s in &stores {
        for l in &loads {
            match classify_pair(&s.expr, &l.expr) {
                DependenceClass::ProvablyDisjoint => dep.disjoint_pairs += 1,
                DependenceClass::ProvablyDependent => dep.dependent_pairs += 1,
                DependenceClass::Unknown => dep.unknown_pairs += 1,
            }
        }
    }

    dep.class = if has_calls {
        // A callee can store anywhere; nothing is provable.
        DependenceClass::Unknown
    } else if dep.dependent_pairs > 0 {
        DependenceClass::ProvablyDependent
    } else if stores.is_empty() || dep.unknown_pairs == 0 {
        // No stores means chunks write nothing a later chunk could read;
        // otherwise every pair was proved disjoint.
        DependenceClass::ProvablyDisjoint
    } else {
        DependenceClass::Unknown
    };
    dep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    /// `for (c = head; c != 0; c = c->next) sum += c->val;` — read-only body.
    fn list_sum() -> (Function, Cfg, Vec<BlockId>, BlockId, Vec<BlockId>) {
        let mut b = FunctionBuilder::new("list_sum");
        let head = b.param();
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let exit = b.new_labeled_block("exit");
        let c = b.copy(head);
        let sum = b.copy(0i64);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let v = b.load(c, 1);
        let s2 = b.binop(BinOp::Add, sum, v);
        b.copy_into(sum, s2);
        let next = b.load(c, 0);
        b.copy_into(c, next);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        (f, cfg, vec![header, body], header, vec![body])
    }

    #[test]
    fn reaching_defs_sees_params_and_loop_redefinitions() {
        let (f, cfg, blocks, header, latches) = list_sum();
        let rd = ReachingDefs::compute(&f, &cfg);
        // At the header, `c` has both the entry copy and the in-body
        // redefinition reaching it.
        let c = f.params[0];
        let defs_of_c: Vec<&BTreeSet<Def>> = rd
            .reaching_in(header)
            .iter()
            .filter(|(r, _)| **r != c)
            .map(|(_, d)| d)
            .collect();
        assert!(defs_of_c.iter().any(|d| d.len() >= 2));
        let carried = loop_carried_defs(&rd, &blocks, &latches);
        // Both the cursor and the accumulator are loop-carried.
        assert!(carried.len() >= 2, "carried: {carried:?}");
    }

    #[test]
    fn read_only_loop_is_provably_disjoint() {
        let (f, cfg, blocks, _, _) = list_sum();
        let dep = classify_loop_dependences(&f, &cfg, &blocks);
        assert_eq!(dep.stores, 0);
        assert_eq!(dep.class, DependenceClass::ProvablyDisjoint);
    }

    #[test]
    fn pointer_chase_store_is_unknown() {
        // Walk a list and store through the cursor: cross-iteration
        // dependences cannot be ruled out.
        let mut b = FunctionBuilder::new("list_store");
        let head = b.param();
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let exit = b.new_labeled_block("exit");
        let c = b.copy(head);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let v = b.load(c, 1);
        let v2 = b.binop(BinOp::Add, v, 1i64);
        b.store(v2, c, 1);
        let next = b.load(c, 0);
        b.copy_into(c, next);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dep = classify_loop_dependences(&f, &cfg, &[header, body]);
        assert_eq!(dep.class, DependenceClass::Unknown);
        assert!(dep.unknown_pairs > 0);
    }

    #[test]
    fn anchored_same_base_distinct_offsets_are_disjoint() {
        // store [p+0], load [p+1] with p a parameter: fixed base, distinct
        // offsets — provably disjoint even across iterations.
        let mut b = FunctionBuilder::new("strided");
        let p = b.param();
        let n = b.param();
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let exit = b.new_labeled_block("exit");
        let i = b.copy(0i64);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Ge, i, n);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let v = b.load(p, 1);
        b.store(v, p, 0);
        let i2 = b.binop(BinOp::Add, i, 1i64);
        b.copy_into(i, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dep = classify_loop_dependences(&f, &cfg, &[header, body]);
        assert_eq!(dep.class, DependenceClass::ProvablyDisjoint);
        assert_eq!(dep.disjoint_pairs, 1);
    }

    #[test]
    fn anchored_same_address_is_provably_dependent() {
        // store [p+0] then load [p+0]: the same word every iteration.
        let mut b = FunctionBuilder::new("same_addr");
        let p = b.param();
        let n = b.param();
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let exit = b.new_labeled_block("exit");
        let i = b.copy(0i64);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Ge, i, n);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let v = b.load(p, 0);
        let v2 = b.binop(BinOp::Add, v, 1i64);
        b.store(v2, p, 0);
        let i2 = b.binop(BinOp::Add, i, 1i64);
        b.copy_into(i, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dep = classify_loop_dependences(&f, &cfg, &[header, body]);
        assert_eq!(dep.class, DependenceClass::ProvablyDependent);
    }

    #[test]
    fn constant_addresses_resolve_exactly() {
        let mut b = FunctionBuilder::new("consts");
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let exit = b.new_labeled_block("exit");
        let i = b.copy(0i64);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Ge, i, 4i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let v = b.load(2000i64, 0);
        b.store(v, 3000i64, 0);
        let i2 = b.binop(BinOp::Add, i, 1i64);
        b.copy_into(i, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dep = classify_loop_dependences(&f, &cfg, &[header, body]);
        assert_eq!(dep.class, DependenceClass::ProvablyDisjoint);

        // Base-expression resolution sees through an add chain.
        let exprs = BaseExprs::compute(&f, &cfg);
        let accesses = exprs.accesses(&f, &[body]);
        assert_eq!(accesses.len(), 2);
        assert_eq!(accesses[0].expr.as_const(), Some(2000));
        assert_eq!(accesses[1].expr.as_const(), Some(3000));
    }
}
