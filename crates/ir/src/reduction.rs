//! Reduction-candidate detection.
//!
//! The Spice transformation removes loop-carried live-ins that can be handled
//! by a classical reduction transformation (paper §4: "Those live-ins in this
//! set that can be subjected to reduction transformations such as sum
//! reduction or MIN/MAX reduction do not require prediction").
//!
//! Two shapes are recognised:
//!
//! * **binop accumulators** — `acc = acc ⊕ x` (directly or through a
//!   temporary) with `⊕` associative and commutative,
//! * **select-based MIN/MAX** — `better = x < acc; acc = select(better, x,
//!   acc)`, optionally with *payload* registers updated under the same
//!   condition (`argmin`/`argmax`, like the `cm` pointer that accompanies the
//!   `wm` weight in the paper's Figure 1 loop).

use std::collections::{HashMap, HashSet};

use crate::function::Function;
use crate::inst::Inst;
use crate::liveness::LoopLiveIns;
use crate::loops::Loop;
use crate::types::{BinOp, Operand, Reg};

/// The combining operation of a recognised reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionKind {
    /// Accumulation with an associative/commutative [`BinOp`]
    /// (`Add`, `Mul`, `And`, `Or`, `Xor`, `Min`, `Max`).
    Binop(BinOp),
    /// Select-based minimum (`acc = x < acc ? x : acc`).
    Min,
    /// Select-based maximum (`acc = x > acc ? x : acc`).
    Max,
}

impl ReductionKind {
    /// Neutral element used to initialize speculative threads' accumulators.
    #[must_use]
    pub fn identity(self) -> i64 {
        match self {
            ReductionKind::Binop(op) => op.reduction_identity().unwrap_or(0),
            ReductionKind::Min => i64::MAX,
            ReductionKind::Max => i64::MIN,
        }
    }

    /// The binary operation used when combining two partial accumulators.
    #[must_use]
    pub fn combine_op(self) -> BinOp {
        match self {
            ReductionKind::Binop(op) => op,
            ReductionKind::Min => BinOp::Min,
            ReductionKind::Max => BinOp::Max,
        }
    }
}

/// A recognised reduction over one loop-carried register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reduction {
    /// The accumulator register.
    pub reg: Reg,
    /// How partial results combine.
    pub kind: ReductionKind,
    /// Payload registers that follow the accumulator (argmin/argmax). Only
    /// populated for [`ReductionKind::Min`] / [`ReductionKind::Max`].
    pub payloads: Vec<Reg>,
}

/// All reductions recognised in one loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReductionSet {
    /// The recognised reductions.
    pub reductions: Vec<Reduction>,
}

impl ReductionSet {
    /// Registers covered by some reduction (accumulators and payloads).
    #[must_use]
    pub fn covered_regs(&self) -> HashSet<Reg> {
        let mut s = HashSet::new();
        for r in &self.reductions {
            s.insert(r.reg);
            s.extend(r.payloads.iter().copied());
        }
        s
    }

    /// Looks up the reduction whose accumulator is `reg`.
    #[must_use]
    pub fn for_reg(&self, reg: Reg) -> Option<&Reduction> {
        self.reductions.iter().find(|r| r.reg == reg)
    }
}

/// Detects reduction candidates among the carried live-ins of `l`.
///
/// Detection is conservative: a carried register is only reported as a
/// reduction if *every* use of it inside the loop participates in the
/// accumulation pattern, so rewriting it is always sound.
#[must_use]
pub fn detect_reductions(func: &Function, l: &Loop, live: &LoopLiveIns) -> ReductionSet {
    let carried: HashSet<Reg> = live.carried.iter().copied().collect();

    // Gather, per register, the instructions (block-local indices are not
    // needed — patterns are matched structurally) defining and using it
    // inside the loop.
    let mut defs: HashMap<Reg, Vec<&Inst>> = HashMap::new();
    let mut use_count: HashMap<Reg, usize> = HashMap::new();
    for &b in &l.blocks {
        let blk = func.block(b);
        for inst in &blk.insts {
            if let Some(d) = inst.def() {
                defs.entry(d).or_default().push(inst);
            }
            for u in inst.uses() {
                *use_count.entry(u).or_insert(0) += 1;
            }
        }
        for u in blk.terminator.uses() {
            *use_count.entry(u).or_insert(0) += 1;
        }
    }

    let single_def = |r: Reg| -> Option<&Inst> {
        match defs.get(&r) {
            Some(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    };

    let mut out = ReductionSet::default();
    let mut payload_candidates: Vec<(Reg, Reg)> = Vec::new(); // (payload reg, cond reg)

    for &acc in &live.carried {
        // The accumulator must be defined exactly once in the loop.
        let Some(def) = single_def(acc) else { continue };
        match def {
            // Direct form: acc = acc ⊕ x  or  acc = x ⊕ acc.
            Inst::Binary { op, dst, lhs, rhs } if *dst == acc && op.is_reduction_op() => {
                let reads_self = *lhs == Operand::Reg(acc) || *rhs == Operand::Reg(acc);
                // The only use of acc inside the loop must be this update.
                if reads_self && use_count.get(&acc).copied().unwrap_or(0) == 1 {
                    out.reductions.push(Reduction {
                        reg: acc,
                        kind: ReductionKind::Binop(*op),
                        payloads: Vec::new(),
                    });
                }
            }
            // Through a temporary: t = acc ⊕ x ; acc = t.
            Inst::Copy {
                dst,
                src: Operand::Reg(t),
            } if *dst == acc => {
                let Some(tdef) = single_def(*t) else { continue };
                match tdef {
                    Inst::Binary {
                        op,
                        dst: td,
                        lhs,
                        rhs,
                    } if td == t && op.is_reduction_op() => {
                        let reads_self = *lhs == Operand::Reg(acc) || *rhs == Operand::Reg(acc);
                        // acc used only in the binop; t used only in the copy.
                        if reads_self
                            && use_count.get(&acc).copied().unwrap_or(0) == 1
                            && use_count.get(t).copied().unwrap_or(0) == 1
                        {
                            out.reductions.push(Reduction {
                                reg: acc,
                                kind: ReductionKind::Binop(*op),
                                payloads: Vec::new(),
                            });
                        }
                    }
                    // Select-based min/max: t = select(cond, x, acc);
                    // cond = (x < acc) or similar.
                    Inst::Select {
                        dst: td,
                        cond: Operand::Reg(cond),
                        if_true,
                        if_false,
                    } if td == t && *if_false == Operand::Reg(acc) => {
                        let Some(cdef) = single_def(*cond) else {
                            continue;
                        };
                        let Inst::Binary { op, lhs, rhs, .. } = cdef else {
                            continue;
                        };
                        // Recognise x REL acc (or acc REL x) with x being the
                        // selected new value.
                        let x = *if_true;
                        let kind = match (op, lhs, rhs) {
                            (BinOp::Lt | BinOp::Le, l, r) if *l == x && *r == Operand::Reg(acc) => {
                                Some(ReductionKind::Min)
                            }
                            (BinOp::Gt | BinOp::Ge, l, r) if *l == x && *r == Operand::Reg(acc) => {
                                Some(ReductionKind::Max)
                            }
                            (BinOp::Gt | BinOp::Ge, l, r) if *r == x && *l == Operand::Reg(acc) => {
                                Some(ReductionKind::Min)
                            }
                            (BinOp::Lt | BinOp::Le, l, r) if *r == x && *l == Operand::Reg(acc) => {
                                Some(ReductionKind::Max)
                            }
                            _ => None,
                        };
                        let Some(kind) = kind else { continue };
                        // acc is used in the compare, the select and nothing
                        // else; t only in the copy.
                        if use_count.get(&acc).copied().unwrap_or(0) == 2
                            && use_count.get(t).copied().unwrap_or(0) == 1
                        {
                            // Record the condition register so payloads can
                            // attach to this reduction.
                            out.reductions.push(Reduction {
                                reg: acc,
                                kind,
                                payloads: Vec::new(),
                            });
                            payload_candidates.push((acc, *cond));
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    // Attach payloads: carried registers whose single definition is
    // `p = copy(select(cond, y, p))` with `cond` the condition register of a
    // recognised min/max reduction and whose only use is in that select.
    for &p in &live.carried {
        if out.covered_regs().contains(&p) {
            continue;
        }
        let Some(def) = single_def(p) else { continue };
        let Inst::Copy {
            dst,
            src: Operand::Reg(t),
        } = def
        else {
            continue;
        };
        if *dst != p {
            continue;
        }
        let Some(tdef) = single_def(*t) else { continue };
        let Inst::Select {
            dst: td,
            cond: Operand::Reg(cond),
            if_false,
            ..
        } = tdef
        else {
            continue;
        };
        if td != t || *if_false != Operand::Reg(p) {
            continue;
        }
        if use_count.get(&p).copied().unwrap_or(0) != 1
            || use_count.get(t).copied().unwrap_or(0) != 1
        {
            continue;
        }
        if let Some(&(acc, _)) = payload_candidates.iter().find(|&&(_, c)| c == *cond) {
            if let Some(red) = out.reductions.iter_mut().find(|r| r.reg == acc) {
                red.payloads.push(p);
            }
        }
    }

    let _ = carried;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::cfg::Cfg;
    use crate::liveness::{loop_live_ins, Liveness};
    use crate::loops::LoopForest;
    use crate::types::Operand;

    fn analyze(f: &Function) -> (ReductionSet, LoopLiveIns) {
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        let forest = LoopForest::of(f);
        let (_, l) = forest.iter().next().expect("function must have a loop");
        let lli = loop_live_ins(f, &cfg, &live, l);
        (detect_reductions(f, l, &lli), lli)
    }

    /// sum accumulation through a temporary
    #[test]
    fn sum_reduction_detected() {
        let mut b = FunctionBuilder::new("sum");
        let base = b.param();
        let n = b.param();
        let sum = b.copy(0i64);
        let i = b.copy(0i64);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Ge, i, n);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let addr = b.binop(BinOp::Add, base, i);
        let v = b.load(addr, 0);
        let s2 = b.binop(BinOp::Add, sum, v);
        b.copy_into(sum, s2);
        let i2 = b.binop(BinOp::Add, i, 1i64);
        b.copy_into(i, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));
        let f = b.finish();
        let (reds, _) = analyze(&f);
        let red = reds.for_reg(sum).expect("sum should be a reduction");
        assert_eq!(red.kind, ReductionKind::Binop(BinOp::Add));
        assert!(red.payloads.is_empty());
        // `i` is NOT reported: it is read by the exit condition as well as by
        // its own increment, so rewriting it as a reduction would be unsound.
        assert!(reds.for_reg(i).is_none());
    }

    /// The paper's Figure 1(a): wm/cm must be recognised as MIN with payload.
    #[test]
    fn min_with_payload_detected() {
        let mut b = FunctionBuilder::new("find_lightest");
        let c = b.param();
        let wm = b.param();
        let cm = b.param();
        let out_addr = b.param();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let w = b.load(c, 0);
        let better = b.binop(BinOp::Lt, w, wm);
        let new_wm = b.select(better, w, wm);
        b.copy_into(wm, new_wm);
        let new_cm = b.select(better, c, cm);
        b.copy_into(cm, new_cm);
        let next = b.load(c, 1);
        b.copy_into(c, next);
        b.br(header);
        b.switch_to(exit);
        b.store(cm, out_addr, 0);
        b.ret(Some(Operand::Reg(wm)));
        let f = b.finish();

        let (reds, lli) = analyze(&f);
        let red = reds.for_reg(wm).expect("wm should be a MIN reduction");
        assert_eq!(red.kind, ReductionKind::Min);
        assert_eq!(red.payloads, vec![cm]);
        // The pointer c is carried but NOT a reduction — it is exactly the
        // register Spice must value-speculate.
        assert!(reds.for_reg(c).is_none());
        let speculated: Vec<Reg> = lli
            .carried
            .iter()
            .copied()
            .filter(|r| !reds.covered_regs().contains(r))
            .collect();
        assert_eq!(speculated, vec![c]);
    }

    /// A register read by something else in the loop must not be treated as
    /// a reduction even if it is also accumulated.
    #[test]
    fn accumulator_with_extra_use_rejected() {
        let mut b = FunctionBuilder::new("notred");
        let n = b.param();
        let sum = b.copy(0i64);
        let i = b.copy(0i64);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Ge, i, n);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        // sum is both accumulated and used as an address -> not a reduction.
        let v = b.load(sum, 1024);
        let s2 = b.binop(BinOp::Add, sum, v);
        b.copy_into(sum, s2);
        let i2 = b.binop(BinOp::Add, i, 1i64);
        b.copy_into(i, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));
        let f = b.finish();
        let (reds, _) = analyze(&f);
        assert!(reds.for_reg(sum).is_none());
    }

    #[test]
    fn max_reduction_detected_with_swapped_compare() {
        let mut b = FunctionBuilder::new("maxloop");
        let base = b.param();
        let n = b.param();
        let best = b.copy(i64::MIN);
        let i = b.copy(0i64);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Ge, i, n);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let addr = b.binop(BinOp::Add, base, i);
        let v = b.load(addr, 0);
        // best < v  (accumulator on the left) => MAX
        let better = b.binop(BinOp::Lt, best, v);
        let nb = b.select(better, v, best);
        b.copy_into(best, nb);
        let i2 = b.binop(BinOp::Add, i, 1i64);
        b.copy_into(i, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(best)));
        let f = b.finish();
        let (reds, _) = analyze(&f);
        assert_eq!(reds.for_reg(best).map(|r| r.kind), Some(ReductionKind::Max));
    }

    #[test]
    fn identities_are_neutral() {
        assert_eq!(ReductionKind::Binop(BinOp::Add).identity(), 0);
        assert_eq!(ReductionKind::Binop(BinOp::Mul).identity(), 1);
        assert_eq!(ReductionKind::Min.identity(), i64::MAX);
        assert_eq!(ReductionKind::Max.identity(), i64::MIN);
        assert_eq!(ReductionKind::Min.combine_op(), BinOp::Min);
        assert_eq!(ReductionKind::Binop(BinOp::Xor).combine_op(), BinOp::Xor);
    }
}
