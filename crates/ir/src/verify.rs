//! Structural verification of functions and programs.
//!
//! The verifier catches the mistakes a transformation is most likely to make
//! when splicing blocks between functions: dangling block targets, registers
//! used before any definition, unfinished (unreachable) terminators on
//! reachable blocks, and calls with the wrong arity.

use std::collections::HashSet;
use std::fmt;

use crate::cfg::Cfg;
use crate::function::{Function, Program};
use crate::inst::{Inst, Terminator};
use crate::types::{BlockId, FuncId, Reg};

/// A single verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A terminator targets a block that does not exist.
    DanglingBlockTarget {
        /// Function being verified.
        func: String,
        /// Block containing the bad terminator.
        block: BlockId,
        /// The missing target.
        target: BlockId,
    },
    /// A reachable block still has the builder's placeholder terminator.
    UnfinishedBlock {
        /// Function being verified.
        func: String,
        /// The offending block.
        block: BlockId,
    },
    /// A register is referenced but was never created by the function.
    RegisterOutOfRange {
        /// Function being verified.
        func: String,
        /// The offending register.
        reg: Reg,
    },
    /// A register may be read before it is written on some path.
    UseBeforeDef {
        /// Function being verified.
        func: String,
        /// The offending register.
        reg: Reg,
        /// Block where the questionable use occurs.
        block: BlockId,
    },
    /// A call references a function id that does not exist in the program.
    UnknownCallee {
        /// Function being verified.
        func: String,
        /// The missing callee.
        callee: FuncId,
    },
    /// A call passes the wrong number of arguments.
    CallArityMismatch {
        /// Function being verified.
        func: String,
        /// The callee.
        callee: FuncId,
        /// Arguments passed.
        passed: usize,
        /// Parameters expected.
        expected: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::DanglingBlockTarget {
                func,
                block,
                target,
            } => write!(f, "{func}: {block} branches to missing block {target}"),
            VerifyError::UnfinishedBlock { func, block } => {
                write!(f, "{func}: reachable block {block} has no terminator")
            }
            VerifyError::RegisterOutOfRange { func, reg } => {
                write!(f, "{func}: register {reg} was never allocated")
            }
            VerifyError::UseBeforeDef { func, reg, block } => {
                write!(
                    f,
                    "{func}: register {reg} may be used before definition in {block}"
                )
            }
            VerifyError::UnknownCallee { func, callee } => {
                write!(f, "{func}: call to unknown function {callee}")
            }
            VerifyError::CallArityMismatch {
                func,
                callee,
                passed,
                expected,
            } => write!(
                f,
                "{func}: call to {callee} passes {passed} arguments, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

impl VerifyError {
    /// The name of the function the error points into.
    #[must_use]
    pub fn func_name(&self) -> &str {
        match self {
            VerifyError::DanglingBlockTarget { func, .. }
            | VerifyError::UnfinishedBlock { func, .. }
            | VerifyError::RegisterOutOfRange { func, .. }
            | VerifyError::UseBeforeDef { func, .. }
            | VerifyError::UnknownCallee { func, .. }
            | VerifyError::CallArityMismatch { func, .. } => func,
        }
    }

    /// The block the error points at, if any.
    #[must_use]
    pub fn block(&self) -> Option<BlockId> {
        match self {
            VerifyError::DanglingBlockTarget { block, .. }
            | VerifyError::UnfinishedBlock { block, .. }
            | VerifyError::UseBeforeDef { block, .. } => Some(*block),
            _ => None,
        }
    }

    /// Renders the error as a compiler-style diagnostic, quoting the
    /// offending block and pointing at the first implicated instruction
    /// (the questionable use for [`VerifyError::UseBeforeDef`], the
    /// terminator for [`VerifyError::DanglingBlockTarget`]).
    #[must_use]
    pub fn render(&self, program: &Program) -> String {
        let mut out = format!("error[verify]: {self}\n");
        let Some(fid) = program.func_by_name(self.func_name()) else {
            return out;
        };
        let func = program.func(fid);
        if let Some(block) = self.block() {
            let highlight = match self {
                VerifyError::DanglingBlockTarget { .. } => Some(func.block(block).insts.len()),
                VerifyError::UseBeforeDef { reg, .. } => func
                    .block(block)
                    .insts
                    .iter()
                    .position(|i| i.uses().contains(reg))
                    .or(Some(func.block(block).insts.len())),
                _ => None,
            };
            out.push_str(&crate::pretty::block_listing(func, block, highlight));
        }
        out
    }
}

/// Verifies a single function (ignoring inter-function properties).
///
/// # Errors
///
/// Returns every problem found; an empty `Ok(())` means the function is
/// structurally sound.
pub fn verify_function(func: &Function) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    let nblocks = func.blocks.len();
    let nregs = func.reg_count() as u32;

    let check_reg = |r: Reg, errors: &mut Vec<VerifyError>| {
        if r.0 >= nregs {
            errors.push(VerifyError::RegisterOutOfRange {
                func: func.name.clone(),
                reg: r,
            });
        }
    };

    for (id, block) in func.iter_blocks() {
        for inst in &block.insts {
            for r in inst.uses() {
                check_reg(r, &mut errors);
            }
            if let Some(d) = inst.def() {
                check_reg(d, &mut errors);
            }
        }
        for t in block.terminator.successors() {
            if t.index() >= nblocks {
                errors.push(VerifyError::DanglingBlockTarget {
                    func: func.name.clone(),
                    block: id,
                    target: t,
                });
            }
        }
        for r in block.terminator.uses() {
            check_reg(r, &mut errors);
        }
    }

    // The remaining checks need a well-formed CFG; bail out if branch
    // targets dangle.
    if errors
        .iter()
        .any(|e| matches!(e, VerifyError::DanglingBlockTarget { .. }))
    {
        return Err(errors);
    }

    let cfg = Cfg::new(func);
    for (id, block) in func.iter_blocks() {
        if cfg.is_reachable(id) && block.terminator == Terminator::Unreachable {
            errors.push(VerifyError::UnfinishedBlock {
                func: func.name.clone(),
                block: id,
            });
        }
    }

    // Conservative use-before-def: a forward dataflow of "definitely
    // assigned" registers. Parameters start assigned. Reads of registers not
    // definitely assigned at that point are flagged. To keep the check useful
    // for code produced by the builder (which often assigns in the entry
    // block), the analysis is flow-sensitive over blocks but flow-insensitive
    // within a block after the first def.
    let mut assigned_in: Vec<Option<HashSet<Reg>>> = vec![None; nblocks];
    let params: HashSet<Reg> = func.params.iter().copied().collect();
    assigned_in[func.entry.index()] = Some(params);
    let mut worklist = vec![func.entry];
    let mut reported: HashSet<(Reg, BlockId)> = HashSet::new();
    while let Some(b) = worklist.pop() {
        let mut assigned = assigned_in[b.index()].clone().unwrap_or_default();
        let block = func.block(b);
        for inst in &block.insts {
            for r in inst.uses() {
                if r.0 < nregs && !assigned.contains(&r) && reported.insert((r, b)) {
                    errors.push(VerifyError::UseBeforeDef {
                        func: func.name.clone(),
                        reg: r,
                        block: b,
                    });
                }
            }
            if let Some(d) = inst.def() {
                assigned.insert(d);
            }
        }
        for r in block.terminator.uses() {
            if r.0 < nregs && !assigned.contains(&r) && reported.insert((r, b)) {
                errors.push(VerifyError::UseBeforeDef {
                    func: func.name.clone(),
                    reg: r,
                    block: b,
                });
            }
        }
        for s in block.terminator.successors() {
            if s.index() >= nblocks {
                continue;
            }
            let entry = &mut assigned_in[s.index()];
            match entry {
                None => {
                    *entry = Some(assigned.clone());
                    worklist.push(s);
                }
                Some(prev) => {
                    // Meet = intersection (must be assigned on all paths).
                    let inter: HashSet<Reg> = prev.intersection(&assigned).copied().collect();
                    if inter.len() != prev.len() {
                        *prev = inter;
                        worklist.push(s);
                    }
                }
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Verifies every function of a program plus inter-function properties
/// (callee existence and arity).
///
/// # Errors
///
/// Returns every problem found across all functions.
pub fn verify_program(program: &Program) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    for func in &program.funcs {
        if let Err(mut e) = verify_function(func) {
            errors.append(&mut e);
        }
        for block in &func.blocks {
            for inst in &block.insts {
                if let Inst::Call {
                    func: callee, args, ..
                } = inst
                {
                    if callee.index() >= program.funcs.len() {
                        errors.push(VerifyError::UnknownCallee {
                            func: func.name.clone(),
                            callee: *callee,
                        });
                    } else {
                        let expected = program.func(*callee).params.len();
                        if expected != args.len() {
                            errors.push(VerifyError::CallArityMismatch {
                                func: func.name.clone(),
                                callee: *callee,
                                passed: args.len(),
                                expected,
                            });
                        }
                    }
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{BinOp, Operand};

    #[test]
    fn well_formed_function_passes() {
        let mut b = FunctionBuilder::new("ok");
        let x = b.param();
        let y = b.binop(BinOp::Add, x, 1i64);
        b.ret(Some(Operand::Reg(y)));
        assert!(verify_function(&b.finish()).is_ok());
    }

    #[test]
    fn dangling_target_is_reported() {
        let mut f = Function::new("bad");
        f.block_mut(BlockId(0)).terminator = Terminator::Br(BlockId(7));
        let errs = verify_function(&f).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::DanglingBlockTarget { target, .. } if *target == BlockId(7))));
    }

    #[test]
    fn unfinished_reachable_block_is_reported() {
        let mut b = FunctionBuilder::new("unfinished");
        let other = b.new_block();
        b.br(other);
        // `other` never gets a terminator.
        let errs = verify_function(&b.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::UnfinishedBlock { block, .. } if *block == other)));
    }

    #[test]
    fn unreachable_unfinished_block_is_allowed() {
        let mut b = FunctionBuilder::new("deadblock");
        let _dead = b.new_block();
        b.ret(None);
        assert!(verify_function(&b.finish()).is_ok());
    }

    #[test]
    fn use_before_def_is_reported() {
        let mut f = Function::new("ubd");
        let r = f.fresh_reg();
        let dst = f.fresh_reg();
        f.block_mut(BlockId(0)).insts.push(Inst::Copy {
            dst,
            src: Operand::Reg(r),
        });
        f.block_mut(BlockId(0)).terminator = Terminator::Ret { value: None };
        let errs = verify_function(&f).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::UseBeforeDef { reg, .. } if *reg == r)));
    }

    #[test]
    fn register_out_of_range_is_reported() {
        let mut f = Function::new("range");
        f.block_mut(BlockId(0)).insts.push(Inst::Copy {
            dst: Reg(99),
            src: Operand::Imm(0),
        });
        f.block_mut(BlockId(0)).terminator = Terminator::Ret { value: None };
        let errs = verify_function(&f).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::RegisterOutOfRange { reg, .. } if *reg == Reg(99))));
    }

    #[test]
    fn call_arity_checked_at_program_level() {
        let mut p = Program::new();
        let mut cb = FunctionBuilder::new("callee");
        let _x = cb.param();
        cb.ret(None);
        let callee = p.add_func(cb.finish());

        let mut mb = FunctionBuilder::new("main");
        mb.call_void(callee, vec![]); // missing argument
        mb.ret(None);
        p.add_func(mb.finish());

        let errs = verify_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            VerifyError::CallArityMismatch {
                expected: 1,
                passed: 0,
                ..
            }
        )));
    }

    #[test]
    fn unknown_callee_reported() {
        let mut p = Program::new();
        let mut mb = FunctionBuilder::new("main");
        mb.call_void(FuncId(9), vec![]);
        mb.ret(None);
        p.add_func(mb.finish());
        let errs = verify_program(&p).unwrap_err();
        assert!(errs.iter().any(
            |e| matches!(e, VerifyError::UnknownCallee { callee, .. } if *callee == FuncId(9))
        ));
    }

    #[test]
    fn error_messages_are_nonempty() {
        let e = VerifyError::UnknownCallee {
            func: "f".into(),
            callee: FuncId(1),
        };
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn diamond_assignment_meets_conservatively() {
        // A register assigned on only one arm of a diamond and used at the
        // join must be flagged.
        let mut b = FunctionBuilder::new("diamond_ubd");
        let cond = b.param();
        let val = b.fresh();
        let a = b.new_block();
        let c = b.new_block();
        let join = b.new_block();
        b.cond_br(cond, a, c);
        b.switch_to(a);
        b.copy_into(val, 1i64);
        b.br(join);
        b.switch_to(c);
        b.br(join);
        b.switch_to(join);
        b.ret(Some(Operand::Reg(val)));
        let errs = verify_function(&b.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::UseBeforeDef { reg, .. } if *reg == val)));
    }
}
