//! Register liveness analysis and loop live-in classification.
//!
//! The Spice transformation needs three register sets for the loop it
//! parallelizes (paper §4, Algorithm 1 steps 2–4):
//!
//! * **inter-iteration (loop-carried) live-ins** — registers live at the loop
//!   header that are also defined inside the loop; these are the candidates
//!   for reduction transformation or value speculation,
//! * **invariant live-ins** — registers live into the loop but never defined
//!   inside it; these only need to be communicated to the worker threads once
//!   per invocation,
//! * **live-outs** — registers defined in the loop that are consumed after
//!   it; the worker threads send these back at the end of an invocation.

use std::collections::{HashMap, HashSet};

use crate::cfg::Cfg;
use crate::function::Function;
use crate::loops::Loop;
use crate::types::{BlockId, Reg};

/// Per-block liveness sets, computed with the standard backward fixed point.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<HashSet<Reg>>,
    live_out: Vec<HashSet<Reg>>,
}

impl Liveness {
    /// Computes liveness for `func`.
    #[must_use]
    pub fn new(func: &Function, cfg: &Cfg) -> Self {
        let n = func.blocks.len();
        // Per-block use/def.
        let mut uses: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        let mut defs: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        for (id, block) in func.iter_blocks() {
            let (u, d) = (&mut uses[id.index()], &mut defs[id.index()]);
            for inst in &block.insts {
                for r in inst.uses() {
                    if !d.contains(&r) {
                        u.insert(r);
                    }
                }
                if let Some(r) = inst.def() {
                    d.insert(r);
                }
            }
            for r in block.terminator.uses() {
                if !d.contains(&r) {
                    u.insert(r);
                }
            }
        }

        let mut live_in: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            // Iterate in reverse RPO for fast convergence.
            for &b in cfg.rpo().iter().rev() {
                let bi = b.index();
                let mut out: HashSet<Reg> = HashSet::new();
                for &s in cfg.succs(b) {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn: HashSet<Reg> = uses[bi].clone();
                for r in &out {
                    if !defs[bi].contains(r) {
                        inn.insert(*r);
                    }
                }
                if out != live_out[bi] || inn != live_in[bi] {
                    live_out[bi] = out;
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to `b`.
    #[must_use]
    pub fn live_in(&self, b: BlockId) -> &HashSet<Reg> {
        &self.live_in[b.index()]
    }

    /// Registers live on exit from `b`.
    #[must_use]
    pub fn live_out(&self, b: BlockId) -> &HashSet<Reg> {
        &self.live_out[b.index()]
    }
}

/// Classification of the registers flowing into and out of a loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopLiveIns {
    /// Loop-carried live-ins: live at the header and (re)defined inside the
    /// loop. Sorted by register index for determinism.
    pub carried: Vec<Reg>,
    /// Invariant live-ins: live at the header, never defined inside the loop.
    pub invariant: Vec<Reg>,
    /// Registers defined inside the loop that are live after it.
    pub live_outs: Vec<Reg>,
}

/// Computes the loop live-in classification for `l`.
#[must_use]
pub fn loop_live_ins(func: &Function, cfg: &Cfg, liveness: &Liveness, l: &Loop) -> LoopLiveIns {
    let mut defined_in_loop: HashSet<Reg> = HashSet::new();
    for &b in &l.blocks {
        for inst in &func.block(b).insts {
            if let Some(d) = inst.def() {
                defined_in_loop.insert(d);
            }
        }
    }
    let header_live: &HashSet<Reg> = liveness.live_in(l.header);

    let mut carried: Vec<Reg> = header_live
        .iter()
        .copied()
        .filter(|r| defined_in_loop.contains(r))
        .collect();
    let mut invariant: Vec<Reg> = header_live
        .iter()
        .copied()
        .filter(|r| !defined_in_loop.contains(r))
        .collect();

    // Live-outs: defined in the loop and live on entry to some exit target.
    let mut out_set: HashSet<Reg> = HashSet::new();
    for &(_, target) in &l.exits {
        for r in liveness.live_in(target) {
            if defined_in_loop.contains(r) {
                out_set.insert(*r);
            }
        }
    }
    let _ = cfg;
    let mut live_outs: Vec<Reg> = out_set.into_iter().collect();

    carried.sort();
    invariant.sort();
    live_outs.sort();
    LoopLiveIns {
        carried,
        invariant,
        live_outs,
    }
}

/// Returns, for every register, the number of definitions inside the loop —
/// used by reduction detection to require a unique update site.
#[must_use]
pub fn defs_in_loop(func: &Function, l: &Loop) -> HashMap<Reg, usize> {
    let mut map: HashMap<Reg, usize> = HashMap::new();
    for &b in &l.blocks {
        for inst in &func.block(b).insts {
            if let Some(d) = inst.def() {
                *map.entry(d).or_insert(0) += 1;
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::dom::DomTree;
    use crate::loops::LoopForest;
    use crate::types::{BinOp, Operand};

    /// The paper's Figure 1(a) loop, lowered by hand:
    ///
    /// ```text
    /// c  = param            (pointer into the list)
    /// wm = param            (current minimum weight)
    /// cm = param            (current minimum node)
    /// header:  if c == 0 goto exit
    /// body:    w = load c.weight
    ///          better = w < wm
    ///          wm = select(better, w, wm)
    ///          cm = select(better, c, cm)
    ///          c  = load c.next
    ///          goto header
    /// exit:    ret wm (cm also live out via store)
    /// ```
    fn otter_like() -> (Function, Reg, Reg, Reg) {
        let mut b = FunctionBuilder::new("find_lightest");
        let c = b.param();
        let wm = b.param();
        let cm = b.param();
        let out_addr = b.param();
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let exit = b.new_labeled_block("exit");
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let w = b.load(c, 0);
        let better = b.binop(BinOp::Lt, w, wm);
        let new_wm = b.select(better, w, wm);
        b.copy_into(wm, new_wm);
        let new_cm = b.select(better, c, cm);
        b.copy_into(cm, new_cm);
        let next = b.load(c, 1);
        b.copy_into(c, next);
        b.br(header);
        b.switch_to(exit);
        b.store(cm, out_addr, 0);
        b.ret(Some(Operand::Reg(wm)));
        (b.finish(), c, wm, cm)
    }

    #[test]
    fn liveness_fixed_point_on_loop() {
        let (f, c, wm, cm) = otter_like();
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        let header = BlockId(1);
        assert!(live.live_in(header).contains(&c));
        assert!(live.live_in(header).contains(&wm));
        assert!(live.live_in(header).contains(&cm));
        // The body keeps all three alive as well.
        assert!(live.live_out(BlockId(2)).contains(&c));
    }

    #[test]
    fn loop_live_in_classification_matches_paper_example() {
        let (f, c, wm, cm) = otter_like();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&f, &cfg, &dom);
        assert_eq!(forest.len(), 1);
        let live = Liveness::new(&f, &cfg);
        let (_, l) = forest.iter().next().unwrap();
        let lli = loop_live_ins(&f, &cfg, &live, l);
        // c, wm and cm are all loop-carried.
        assert_eq!(lli.carried, {
            let mut v = vec![c, wm, cm];
            v.sort();
            v
        });
        // The output address is only used after the loop, but it stays live
        // *through* the loop (the exit block is a successor of the header),
        // so it is classified as an invariant live-in.
        let out_addr = f.params[3];
        assert_eq!(lli.invariant, vec![out_addr]);
        // wm is returned and cm is stored after the loop: both live-out.
        let mut expect = vec![wm, cm];
        expect.sort();
        assert_eq!(lli.live_outs, expect);
    }

    #[test]
    fn invariant_live_in_detected() {
        // sum += mem[base + i] style loop: `base` is invariant, `sum` and `i`
        // are carried.
        let mut b = FunctionBuilder::new("arraysum");
        let base = b.param();
        let n = b.param();
        let sum = b.copy(0i64);
        let i = b.copy(0i64);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Ge, i, n);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let addr = b.binop(BinOp::Add, base, i);
        let v = b.load(addr, 0);
        let s2 = b.binop(BinOp::Add, sum, v);
        b.copy_into(sum, s2);
        let i2 = b.binop(BinOp::Add, i, 1i64);
        b.copy_into(i, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));
        let f = b.finish();

        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        let forest = LoopForest::of(&f);
        let (_, l) = forest.iter().next().unwrap();
        let lli = loop_live_ins(&f, &cfg, &live, l);
        assert!(lli.invariant.contains(&base));
        assert!(lli.invariant.contains(&n));
        assert!(lli.carried.contains(&sum));
        assert!(lli.carried.contains(&i));
        assert_eq!(lli.live_outs, vec![sum]);
    }

    #[test]
    fn defs_in_loop_counts_multiple_definitions() {
        let (f, c, _, _) = otter_like();
        let forest = LoopForest::of(&f);
        let (_, l) = forest.iter().next().unwrap();
        let defs = defs_in_loop(&f, l);
        assert_eq!(defs.get(&c), Some(&1));
        // Temporaries defined once.
        assert!(defs.values().all(|&count| count >= 1));
    }

    #[test]
    fn dead_register_is_not_live() {
        let mut b = FunctionBuilder::new("dead");
        let x = b.param();
        let _unused = b.binop(BinOp::Add, x, 1i64);
        b.ret(Some(Operand::Reg(x)));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let live = Liveness::new(&f, &cfg);
        assert!(live.live_in(f.entry).contains(&x));
        assert_eq!(live.live_out(f.entry).len(), 0);
    }
}
