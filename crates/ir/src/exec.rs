//! The execution-backend abstraction: one API over every way of running a
//! Spice-parallelizable loop.
//!
//! The reproduction has two execution substrates — the cycle-accurate timing
//! simulator (`spice-sim`, driven through the transformation pipeline in
//! `spice-core`) and the native-OS-thread chunk runtime (`spice-runtime`).
//! Historically they exposed disjoint APIs (`RunSummary`/`InvocationStats`
//! vs. `ChunkOutcome`), so every workload, bench and test was hard-wired to
//! exactly one of them. This module defines the shared seam:
//!
//! * [`ExecutionBackend`] — load an IR program once, then run the target
//!   loop invocation by invocation, with the backend carrying the memoized
//!   chunk-boundary predictions and load-balancing state across invocations
//!   (paper Algorithm 2);
//! * [`ExecutionReport`] — the common per-invocation result: a cost that is
//!   either simulated cycles or wall time, the return value, committed and
//!   squashed chunk counts, per-worker mis-speculation causes and per-thread
//!   work counters;
//! * [`SpiceLoopSpec`] / [`derive_loop_spec`] — the backend-neutral summary
//!   of the target loop (header, speculated cursor registers, recognised
//!   reductions, live-outs) that a backend needs to execute it in chunks.
//!
//! Consumers hold a `Box<dyn ExecutionBackend>` and never mention a machine
//! or a thread pool: `spice_workloads::run_workload_on` drives any workload
//! over any backend from a single call site.
//!
//! The [`conflict`] submodule adds the memory-dependence speculation layer:
//! word-granular [`AccessSet`] read/write-set summaries and the
//! [`ConflictPolicy`] chosen per [`LoadOptions`]. Under the default
//! [`ConflictPolicy::Detect`], every backend tracks each speculative chunk's
//! read set alongside its store buffer and squashes — with
//! [`MisspeculationCause::DependenceViolation`] — any chunk whose reads
//! intersect an earlier uncommitted chunk's writes, so loops with genuine
//! cross-chunk memory flow dependences (e.g. mcf's real
//! `refresh_potential`) execute correctly on both substrates.

pub mod conflict;
pub mod dense;

pub use conflict::{AccessSet, ConflictPolicy};
pub use dense::DenseMap;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::interp::FlatMemory;
use crate::liveness::{loop_live_ins, Liveness};
use crate::loops::{LoopForest, LoopId};
use crate::reduction::{detect_reductions, Reduction};
use crate::types::{BlockId, FuncId, Reg, TrapKind};
use crate::Program;

/// Backend-neutral description of a Spice-parallelizable loop: everything an
/// execution backend needs to chunk the iteration space, start speculative
/// chunks from predicted live-ins, and recombine partial results.
#[derive(Debug, Clone)]
pub struct SpiceLoopSpec {
    /// Function containing the loop.
    pub func: FuncId,
    /// The loop's header block — the per-iteration chunk boundary.
    pub header: BlockId,
    /// The unique preheader block.
    pub preheader: BlockId,
    /// The loop's single exit target block.
    pub exit_block: BlockId,
    /// All blocks of the loop, sorted.
    pub blocks: Vec<BlockId>,
    /// Loop-carried live-ins that must be value-speculated — the set `S` of
    /// Algorithm 1 (the "cursor" registers a chunk starts from).
    pub cursors: Vec<Reg>,
    /// Recognised reductions (removed from `S` by the reduction
    /// transformation; combined across chunks at commit time).
    pub reductions: Vec<Reduction>,
    /// Invariant live-ins (safe to read from the sequential entry state).
    pub invariant: Vec<Reg>,
    /// Registers defined inside the loop that are live after it.
    pub live_outs: Vec<Reg>,
}

/// Why a loop cannot be described by a [`SpiceLoopSpec`]. Mirrors the
/// applicability conditions of the transformation (paper §4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The function has no loop (with the requested header).
    NoSuchLoop,
    /// The loop has no unique preheader block.
    NoPreheader,
    /// The loop exits through more than one edge.
    MultipleExits,
    /// Every loop-carried live-in is a reduction; nothing to speculate.
    NothingToSpeculate,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NoSuchLoop => f.write_str("no loop with the requested header"),
            SpecError::NoPreheader => f.write_str("loop has no unique preheader"),
            SpecError::MultipleExits => f.write_str("loop has more than one exit edge"),
            SpecError::NothingToSpeculate => {
                f.write_str("all loop-carried live-ins are reductions; nothing to speculate")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Derives the [`SpiceLoopSpec`] of the loop of `func` whose header is
/// `header`, or of the largest top-level loop when `header` is `None`.
///
/// This bundles the same IR analyses the transformation front-end uses
/// (natural loops, liveness, reduction detection) so that backends with no
/// access to the `spice-core` analysis stack — notably the native-thread
/// runtime — can chunk a loop on their own.
///
/// # Errors
///
/// Returns the applicability condition that failed.
pub fn derive_loop_spec(
    program: &Program,
    func: FuncId,
    header: Option<BlockId>,
) -> Result<SpiceLoopSpec, SpecError> {
    let f = program.func(func);
    let cfg = Cfg::new(f);
    let dom = DomTree::new(&cfg);
    let forest = LoopForest::new(f, &cfg, &dom);
    let loop_id: LoopId = match header {
        Some(h) => forest.loop_with_header(h).ok_or(SpecError::NoSuchLoop)?,
        None => {
            let mut best: Option<(usize, LoopId)> = None;
            for id in forest.top_level() {
                let size = forest.get(id).blocks.len();
                if best.is_none_or(|(s, _)| size > s) {
                    best = Some((size, id));
                }
            }
            best.ok_or(SpecError::NoSuchLoop)?.1
        }
    };
    let l = forest.get(loop_id);
    let preheader = forest
        .preheader(loop_id, f, &cfg)
        .ok_or(SpecError::NoPreheader)?;
    if l.exits.len() != 1 {
        return Err(SpecError::MultipleExits);
    }
    let exit_block = l.exits[0].1;

    let liveness = Liveness::new(f, &cfg);
    let live = loop_live_ins(f, &cfg, &liveness, l);
    let reductions = detect_reductions(f, l, &live);
    let covered = reductions.covered_regs();
    let cursors: Vec<Reg> = live
        .carried
        .iter()
        .copied()
        .filter(|r| !covered.contains(r))
        .collect();
    if cursors.is_empty() {
        return Err(SpecError::NothingToSpeculate);
    }

    Ok(SpiceLoopSpec {
        func,
        header: l.header,
        preheader,
        exit_block,
        blocks: l.blocks_sorted(),
        cursors,
        reductions: reductions.reductions,
        invariant: live.invariant,
        live_outs: live.live_outs,
    })
}

/// What one invocation cost, in the backend's native unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionCost {
    /// Simulated cycles (timing-model backends).
    Cycles(u64),
    /// Wall-clock nanoseconds (native-thread backends).
    WallNanos(u128),
}

impl ExecutionCost {
    /// The raw magnitude, unit discarded — only comparable against costs of
    /// the same backend.
    #[must_use]
    pub fn magnitude(&self) -> u128 {
        match self {
            ExecutionCost::Cycles(c) => u128::from(*c),
            ExecutionCost::WallNanos(n) => *n,
        }
    }
}

/// Why a speculative chunk was squashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisspeculationCause {
    /// The chunk's starting prediction no longer appeared in the traversal
    /// (boundary mismatch — the paper's primary squash reason).
    StalePrediction,
    /// The chunk trapped while executing (e.g. chased a dangling pointer).
    Fault(TrapKind),
    /// An earlier chunk failed, so this chunk's starting point was never
    /// validated and it was squashed in the cascade.
    SquashCascade,
    /// The chunk never ran (no prediction was available yet — e.g. the
    /// first invocation, before anything was memoized).
    NoPrediction,
    /// The chunk read a word that a logically earlier, not-yet-committed
    /// chunk wrote — a cross-chunk memory flow (RAW) dependence violated by
    /// the speculation ([`ConflictPolicy::Detect`]). `addr` is the smallest
    /// conflicting word address, as a diagnosis witness.
    DependenceViolation {
        /// Smallest word address present in both the chunk's read set and an
        /// earlier chunk's write set.
        addr: i64,
    },
}

/// Per-worker slice of an [`ExecutionReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// Whether the chunk was validated and committed.
    pub committed: bool,
    /// Squash cause for uncommitted chunks.
    pub cause: Option<MisspeculationCause>,
    /// Iterations (or retired instructions, for timing backends) executed.
    pub work: u64,
}

/// The common result of one parallel loop invocation, produced by every
/// [`ExecutionBackend`].
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Which backend produced this report.
    pub backend: &'static str,
    /// Cost of the invocation in the backend's native unit.
    pub cost: ExecutionCost,
    /// Return value of the kernel function.
    pub return_value: Option<i64>,
    /// Whether any speculative chunk was squashed.
    pub misspeculated: bool,
    /// Number of speculative chunks validated and committed.
    pub committed_chunks: usize,
    /// Number of speculative chunks squashed.
    pub squashed_chunks: usize,
    /// Per-worker outcomes (speculative threads only; the main thread is
    /// never squashed).
    pub workers: Vec<WorkerReport>,
    /// Work executed by each thread, main thread first.
    pub work_per_thread: Vec<u64>,
}

impl ExecutionReport {
    /// Convenience: the per-worker squash causes of this invocation.
    #[must_use]
    pub fn misspeculation_causes(&self) -> Vec<MisspeculationCause> {
        self.workers.iter().filter_map(|w| w.cause).collect()
    }
}

/// Mean, over invocations, of the coefficient of variation of per-thread
/// work — 0 means perfectly balanced chunks. Every thread the invocation
/// configured counts, *including* threads that did no work: a starved
/// worker is the worst imbalance there is, not a thread to exclude from the
/// statistic. Invocations configured with fewer than two threads, or where
/// no thread did any work, are skipped. One definition shared by every
/// backend's aggregate statistics, so "imbalance" means the same thing in
/// every table.
#[must_use]
pub fn work_imbalance(work_per_invocation: &[Vec<u64>]) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for inv in work_per_invocation {
        if inv.len() < 2 || inv.iter().all(|&w| w == 0) {
            continue;
        }
        let threads: Vec<f64> = inv.iter().map(|&w| w as f64).collect();
        let mean = threads.iter().sum::<f64>() / threads.len() as f64;
        let var =
            threads.iter().map(|w| (w - mean) * (w - mean)).sum::<f64>() / threads.len() as f64;
        total += var.sqrt() / mean;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Errors surfaced by an execution backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// `run_invocation` was called before `load`.
    NotLoaded,
    /// The target loop cannot be executed by this backend.
    Spec(SpecError),
    /// The loop analysis or transformation failed (message from the
    /// backend's front-end).
    Analysis(String),
    /// The underlying engine failed (simulator error, deadlocked thread…).
    Engine(String),
    /// A non-speculative memory access trapped.
    Memory(TrapKind),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::NotLoaded => f.write_str("backend has no loaded program"),
            BackendError::Spec(e) => write!(f, "loop not chunkable: {e}"),
            BackendError::Analysis(m) => write!(f, "analysis failed: {m}"),
            BackendError::Engine(m) => write!(f, "execution failed: {m}"),
            BackendError::Memory(t) => write!(f, "non-speculative memory access failed: {t}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<SpecError> for BackendError {
    fn from(e: SpecError) -> Self {
        BackendError::Spec(e)
    }
}

impl From<TrapKind> for BackendError {
    fn from(t: TrapKind) -> Self {
        BackendError::Memory(t)
    }
}

/// Options for [`ExecutionBackend::load`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadOptions {
    /// Heap words to reserve past the program's globals.
    pub heap_words: usize,
    /// Header of the target loop; `None` selects the function's largest
    /// top-level loop.
    pub loop_header: Option<BlockId>,
    /// Expected iterations of the first invocation — seeds the load
    /// balancer so memoization starts immediately (paper Algorithm 2).
    pub work_estimate: Option<u64>,
    /// How the backend treats cross-chunk memory dependences. The default,
    /// [`ConflictPolicy::Detect`], tracks read/write sets and squashes
    /// violating chunks; [`ConflictPolicy::AssumeIndependent`] skips all
    /// tracking for loops known to carry no cross-chunk memory flow.
    pub conflict_policy: ConflictPolicy,
    /// Conflict-detection granularity as a power-of-two word count: every
    /// tracked address is coarsened to a `2^conflict_granularity_log2`-word
    /// grain before the read/write-set comparison. `0` (the default) is
    /// exact word granularity; `3` models 64-byte-line hardware detection,
    /// which trades set size for false conflicts between distinct words
    /// sharing a line.
    pub conflict_granularity_log2: u8,
}

impl LoadOptions {
    /// Options with a heap reservation and a first-invocation estimate.
    #[must_use]
    pub fn new(heap_words: usize, work_estimate: Option<u64>) -> Self {
        LoadOptions {
            heap_words,
            loop_header: None,
            work_estimate,
            conflict_policy: ConflictPolicy::default(),
            conflict_granularity_log2: 0,
        }
    }

    /// The same options with an explicit conflict policy.
    #[must_use]
    pub fn with_conflict_policy(mut self, policy: ConflictPolicy) -> Self {
        self.conflict_policy = policy;
        self
    }

    /// The same options with a conflict-detection granularity (power-of-two
    /// words per grain; `0` = exact words, `3` = 64-byte lines).
    #[must_use]
    pub fn with_conflict_granularity_log2(mut self, granularity_log2: u8) -> Self {
        self.conflict_granularity_log2 = granularity_log2;
        self
    }
}

/// One way of executing a Spice loop: the timing simulator, the
/// native-thread chunk runtime, or anything future PRs add (sharded,
/// distributed, …).
///
/// Lifecycle: [`load`](ExecutionBackend::load) once per program, mutate the
/// canonical memory through [`mem_mut`](ExecutionBackend::mem_mut) (workload
/// drivers build their data structures there), then call
/// [`run_invocation`](ExecutionBackend::run_invocation) per loop invocation.
/// The backend carries predictions and load-balancing state between
/// invocations, exactly like the paper's runtime.
pub trait ExecutionBackend {
    /// Short stable name ("sim", "native", …) used in reports.
    fn name(&self) -> &'static str;

    /// Total threads (main + speculative workers) this backend runs with.
    fn threads(&self) -> usize;

    /// Loads a program and prepares the target loop of `kernel` for chunked
    /// execution. Resets any predictor state from a previous program.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if the loop cannot be analysed, chunked,
    /// or transformed by this backend.
    fn load(
        &mut self,
        program: Program,
        kernel: FuncId,
        options: LoadOptions,
    ) -> Result<(), BackendError>;

    /// The canonical flat memory image. Workload drivers read expected
    /// results from here between invocations.
    ///
    /// # Panics
    ///
    /// May panic if called before [`load`](ExecutionBackend::load).
    fn mem(&self) -> &FlatMemory;

    /// Mutable canonical memory — workload drivers initialize and mutate
    /// their data structures here between invocations.
    ///
    /// # Panics
    ///
    /// May panic if called before [`load`](ExecutionBackend::load).
    fn mem_mut(&mut self) -> &mut FlatMemory;

    /// Runs one invocation of the loaded kernel with `args`.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] if the non-speculative execution itself
    /// fails. Mis-speculation is *not* an error — it is reported in the
    /// [`ExecutionReport`].
    fn run_invocation(&mut self, args: &[i64]) -> Result<ExecutionReport, BackendError>;

    /// Turns on structured event tracing with a ring buffer of `capacity`
    /// events. Backends that do not support tracing ignore the call; tracing
    /// is observational only and must never change execution outcomes (for
    /// the simulator: never change simulated cycles).
    fn enable_trace(&mut self, _capacity: usize) {}

    /// The trace recorded so far, if tracing is supported and enabled.
    fn trace(&self) -> Option<&crate::trace::TraceRecorder> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{BinOp, Operand};

    fn list_min_program() -> (Program, FuncId) {
        let mut program = Program::new();
        let _nodes = program.add_global("nodes", 64);
        let mut b = FunctionBuilder::new("list_min");
        let head = b.param();
        let pre = b.new_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.copy(head);
        let wm = b.copy(i64::MAX);
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let w = b.load(c, 0);
        let better = b.binop(BinOp::Lt, w, wm);
        let nw = b.select(better, w, wm);
        b.copy_into(wm, nw);
        let nx = b.load(c, 1);
        b.copy_into(c, nx);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(wm)));
        let f = program.add_func(b.finish());
        (program, f)
    }

    #[test]
    fn derive_finds_cursor_and_reduction() {
        let (p, f) = list_min_program();
        let spec = derive_loop_spec(&p, f, None).unwrap();
        assert_eq!(spec.cursors.len(), 1, "one speculated cursor");
        assert_eq!(spec.reductions.len(), 1, "the min reduction");
        assert!(!spec.blocks.is_empty());
        assert_ne!(spec.header, spec.exit_block);
    }

    #[test]
    fn derive_rejects_loopless_functions() {
        let mut b = FunctionBuilder::new("noloop");
        b.ret(None);
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        assert_eq!(
            derive_loop_spec(&p, f, None).unwrap_err(),
            SpecError::NoSuchLoop
        );
    }

    /// Regression: an invocation where one worker starved entirely must read
    /// as *less* balanced than one where every thread worked — the old code
    /// filtered zero-work threads out before computing the CV, so a fully
    /// starved `[N, 0, 0, 0]` invocation scored a perfect 0.
    #[test]
    fn starved_threads_count_as_imbalance() {
        let starved = work_imbalance(&[vec![8, 0, 0, 0]]);
        // CV of [8,0,0,0]: mean 2, stddev 2*sqrt(3).
        assert!(
            (starved - 3f64.sqrt()).abs() < 1e-12,
            "starved CV was {starved}"
        );
        let balanced = work_imbalance(&[vec![8, 8, 8, 8]]);
        assert!(balanced.abs() < 1e-12);
        let skewed = work_imbalance(&[vec![6, 2, 0, 0]]);
        assert!(
            balanced < skewed && skewed < starved,
            "ordering violated: balanced {balanced}, skewed {skewed}, starved {starved}"
        );
        // Nothing-ran invocations and single-thread vectors are still skipped.
        assert_eq!(work_imbalance(&[vec![0, 0, 0]]), 0.0);
        assert_eq!(work_imbalance(&[vec![100]]), 0.0);
        assert_eq!(work_imbalance(&[]), 0.0);
    }

    #[test]
    fn report_helpers() {
        let report = ExecutionReport {
            backend: "test",
            cost: ExecutionCost::Cycles(100),
            return_value: Some(7),
            misspeculated: true,
            committed_chunks: 1,
            squashed_chunks: 1,
            workers: vec![
                WorkerReport {
                    committed: true,
                    cause: None,
                    work: 10,
                },
                WorkerReport {
                    committed: false,
                    cause: Some(MisspeculationCause::StalePrediction),
                    work: 3,
                },
            ],
            work_per_thread: vec![10, 10, 0],
        };
        assert_eq!(report.cost.magnitude(), 100);
        assert_eq!(
            report.misspeculation_causes(),
            vec![MisspeculationCause::StalePrediction]
        );
        assert_eq!(ExecutionCost::WallNanos(5).magnitude(), 5);
    }
}
