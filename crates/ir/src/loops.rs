//! Natural-loop detection and the loop-nest tree.
//!
//! The Spice transformation (paper §4) and the value profiler (paper §6)
//! both start from the set of natural loops of a function: the transformation
//! needs the header, body, latches and exits of the loop it parallelizes, and
//! the profiler walks the loop-nest tree to decide which loops to instrument
//! and at what granularity.

use std::collections::{HashMap, HashSet};

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::function::Function;
use crate::types::BlockId;

/// Identifier of a loop within a [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub usize);

/// A single natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (the single entry point of the loop).
    pub header: BlockId,
    /// All blocks in the loop, header included.
    pub blocks: HashSet<BlockId>,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// Exit edges `(from_block_in_loop, to_block_outside_loop)`.
    pub exits: Vec<(BlockId, BlockId)>,
    /// Parent loop in the nest, if any.
    pub parent: Option<LoopId>,
    /// Nesting depth (outermost loops have depth 1).
    pub depth: usize,
}

impl Loop {
    /// Returns `true` if `b` belongs to the loop.
    #[must_use]
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// Blocks of the loop in ascending id order (deterministic iteration for
    /// code generation and printing).
    #[must_use]
    pub fn blocks_sorted(&self) -> Vec<BlockId> {
        let mut v: Vec<BlockId> = self.blocks.iter().copied().collect();
        v.sort();
        v
    }
}

/// All natural loops of a function, with nesting.
#[derive(Debug, Clone)]
pub struct LoopForest {
    loops: Vec<Loop>,
}

impl LoopForest {
    /// Detects the natural loops of `func`.
    ///
    /// Back edges are edges `n -> h` where `h` dominates `n`; the natural
    /// loop of the back edge is `h` plus every block that can reach `n`
    /// without passing through `h`. Loops sharing a header are merged.
    #[must_use]
    pub fn new(func: &Function, cfg: &Cfg, dom: &DomTree) -> Self {
        let _ = func; // loop structure is fully determined by the CFG and dominators
        let mut by_header: HashMap<BlockId, Loop> = HashMap::new();
        for &n in cfg.rpo() {
            for &h in cfg.succs(n) {
                if dom.dominates(h, n) {
                    // Back edge n -> h.
                    let entry = by_header.entry(h).or_insert_with(|| Loop {
                        header: h,
                        blocks: HashSet::from([h]),
                        latches: Vec::new(),
                        exits: Vec::new(),
                        parent: None,
                        depth: 1,
                    });
                    entry.latches.push(n);
                    // Collect the loop body with a backward walk from the latch.
                    let mut stack = vec![n];
                    while let Some(b) = stack.pop() {
                        if entry.blocks.insert(b) {
                            for &p in cfg.preds(b) {
                                if cfg.is_reachable(p) {
                                    stack.push(p);
                                }
                            }
                        }
                    }
                }
            }
        }

        let mut loops: Vec<Loop> = by_header.into_values().collect();
        // Deterministic order: by header id.
        loops.sort_by_key(|l| l.header);

        // Exits.
        for l in &mut loops {
            let mut exits = Vec::new();
            for &b in &l.blocks {
                for &s in cfg.succs(b) {
                    if !l.blocks.contains(&s) {
                        exits.push((b, s));
                    }
                }
            }
            exits.sort();
            l.exits = exits;
        }

        // Nesting: the parent of a loop is the smallest strictly-containing loop.
        let snapshots: Vec<(BlockId, HashSet<BlockId>)> =
            loops.iter().map(|l| (l.header, l.blocks.clone())).collect();
        #[allow(clippy::needless_range_loop)]
        for i in 0..loops.len() {
            let mut best: Option<(usize, usize)> = None; // (index, size)
            for (j, (hdr, blocks)) in snapshots.iter().enumerate() {
                if i == j {
                    continue;
                }
                if blocks.contains(&loops[i].header)
                    && *hdr != loops[i].header
                    && loops[i].blocks.is_subset(blocks)
                {
                    let size = blocks.len();
                    if best.is_none_or(|(_, s)| size < s) {
                        best = Some((j, size));
                    }
                }
            }
            loops[i].parent = best.map(|(j, _)| LoopId(j));
        }
        // Depths.
        let parents: Vec<Option<LoopId>> = loops.iter().map(|l| l.parent).collect();
        for i in 0..loops.len() {
            let mut depth = 1;
            let mut cur = parents[i];
            while let Some(LoopId(p)) = cur {
                depth += 1;
                cur = parents[p];
            }
            loops[i].depth = depth;
        }
        LoopForest { loops }
    }

    /// Convenience constructor that computes the CFG and dominators itself.
    #[must_use]
    pub fn of(func: &Function) -> Self {
        let cfg = Cfg::new(func);
        let dom = DomTree::new(&cfg);
        LoopForest::new(func, &cfg, &dom)
    }

    /// Number of loops found.
    #[must_use]
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Returns `true` if the function has no loops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Returns a loop by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.0]
    }

    /// Iterates over `(LoopId, &Loop)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LoopId, &Loop)> {
        self.loops.iter().enumerate().map(|(i, l)| (LoopId(i), l))
    }

    /// Finds the loop whose header is `header`.
    #[must_use]
    pub fn loop_with_header(&self, header: BlockId) -> Option<LoopId> {
        self.loops
            .iter()
            .position(|l| l.header == header)
            .map(LoopId)
    }

    /// Returns the innermost loop containing block `b`, if any.
    #[must_use]
    pub fn innermost_containing(&self, b: BlockId) -> Option<LoopId> {
        self.iter()
            .filter(|(_, l)| l.contains(b))
            .max_by_key(|(_, l)| l.depth)
            .map(|(id, _)| id)
    }

    /// Outermost loops (depth 1).
    #[must_use]
    pub fn top_level(&self) -> Vec<LoopId> {
        self.iter()
            .filter(|(_, l)| l.parent.is_none())
            .map(|(id, _)| id)
            .collect()
    }

    /// Finds the *preheader* of a loop: the unique predecessor of the header
    /// that lies outside the loop and whose only successor is the header.
    ///
    /// The Spice transformation requires a preheader to place the
    /// `new_invocation` token sends and the value-predictor setup; workloads
    /// built with [`crate::builder::FunctionBuilder`] naturally have one.
    #[must_use]
    pub fn preheader(&self, id: LoopId, func: &Function, cfg: &Cfg) -> Option<BlockId> {
        let l = self.get(id);
        let outside: Vec<BlockId> = cfg
            .preds(l.header)
            .iter()
            .copied()
            .filter(|p| !l.contains(*p))
            .collect();
        match outside.as_slice() {
            [single] if cfg.succs(*single).len() == 1 => Some(*single),
            _ => {
                let _ = func;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{BinOp, Operand};

    /// entry -> preheader -> header -> {body -> latch -> header, exit}
    fn single_loop() -> Function {
        let mut b = FunctionBuilder::new("single");
        let n = b.param();
        let i = b.copy(0i64);
        let pre = b.new_labeled_block("preheader");
        let header = b.new_labeled_block("header");
        let body = b.new_labeled_block("body");
        let latch = b.new_labeled_block("latch");
        let exit = b.new_labeled_block("exit");
        b.br(pre);
        b.switch_to(pre);
        b.br(header);
        b.switch_to(header);
        let c = b.binop(BinOp::Lt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, i, 1i64);
        b.copy_into(i, i2);
        b.br(latch);
        b.switch_to(latch);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(i)));
        b.finish()
    }

    /// Doubly-nested loop.
    fn nested_loops() -> Function {
        let mut b = FunctionBuilder::new("nested");
        let n = b.param();
        let i = b.copy(0i64);
        let oh = b.new_labeled_block("outer_header");
        let ob = b.new_labeled_block("outer_body");
        let ih = b.new_labeled_block("inner_header");
        let ib = b.new_labeled_block("inner_body");
        let olatch = b.new_labeled_block("outer_latch");
        let exit = b.new_labeled_block("exit");
        b.br(oh);
        b.switch_to(oh);
        let c = b.binop(BinOp::Lt, i, n);
        b.cond_br(c, ob, exit);
        b.switch_to(ob);
        let j = b.copy(0i64);
        b.br(ih);
        b.switch_to(ih);
        let cj = b.binop(BinOp::Lt, j, 10i64);
        b.cond_br(cj, ib, olatch);
        b.switch_to(ib);
        let j2 = b.binop(BinOp::Add, j, 1i64);
        b.copy_into(j, j2);
        b.br(ih);
        b.switch_to(olatch);
        let i2 = b.binop(BinOp::Add, i, 1i64);
        b.copy_into(i, i2);
        b.br(oh);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(i)));
        b.finish()
    }

    #[test]
    fn finds_single_loop_with_correct_membership() {
        let f = single_loop();
        let forest = LoopForest::of(&f);
        assert_eq!(forest.len(), 1);
        let (_, l) = forest.iter().next().unwrap();
        assert_eq!(l.header, BlockId(2));
        assert!(l.contains(BlockId(3)));
        assert!(l.contains(BlockId(4)));
        assert!(!l.contains(BlockId(5)));
        assert!(!l.contains(BlockId(1)));
        assert_eq!(l.latches, vec![BlockId(4)]);
        assert_eq!(l.exits, vec![(BlockId(2), BlockId(5))]);
        assert_eq!(l.depth, 1);
    }

    #[test]
    fn preheader_is_found() {
        let f = single_loop();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&f, &cfg, &dom);
        let id = forest.loop_with_header(BlockId(2)).unwrap();
        assert_eq!(forest.preheader(id, &f, &cfg), Some(BlockId(1)));
    }

    #[test]
    fn nested_loops_have_parent_links_and_depths() {
        let f = nested_loops();
        let forest = LoopForest::of(&f);
        assert_eq!(forest.len(), 2);
        let outer = forest.loop_with_header(BlockId(1)).unwrap();
        let inner = forest.loop_with_header(BlockId(3)).unwrap();
        assert_eq!(forest.get(inner).parent, Some(outer));
        assert_eq!(forest.get(outer).parent, None);
        assert_eq!(forest.get(outer).depth, 1);
        assert_eq!(forest.get(inner).depth, 2);
        assert_eq!(forest.top_level(), vec![outer]);
        // The inner body belongs to both loops; innermost query returns inner.
        assert_eq!(forest.innermost_containing(BlockId(4)), Some(inner));
        // The outer latch only belongs to the outer loop.
        assert_eq!(forest.innermost_containing(BlockId(5)), Some(outer));
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let mut b = FunctionBuilder::new("straight");
        let x = b.param();
        let y = b.binop(BinOp::Add, x, 1i64);
        b.ret(Some(Operand::Reg(y)));
        let forest = LoopForest::of(&b.finish());
        assert!(forest.is_empty());
    }

    #[test]
    fn self_loop_is_detected() {
        let mut b = FunctionBuilder::new("selfloop");
        let x = b.param();
        let header = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let c = b.binop(BinOp::Gt, x, 0i64);
        b.cond_br(c, header, exit);
        b.switch_to(exit);
        b.ret(None);
        let forest = LoopForest::of(&b.finish());
        assert_eq!(forest.len(), 1);
        let (_, l) = forest.iter().next().unwrap();
        assert_eq!(l.blocks.len(), 1);
        assert_eq!(l.latches, vec![l.header]);
    }
}
