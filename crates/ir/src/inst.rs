//! Instructions and block terminators of the Spice IR.

use serde::{Deserialize, Serialize};

use crate::types::{BinOp, BlockId, FuncId, Operand, Reg};

/// A non-terminator instruction.
///
/// Besides ordinary arithmetic and memory operations, the IR carries the
/// intrinsics the Spice transformation needs from the target machine
/// (paper §3): scalar send/receive between cores, entering/committing/
/// discarding speculative memory state, and the remote `resteer` that
/// redirects a mis-speculated thread into its recovery code.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = op(lhs, rhs)`.
    Binary {
        /// Operation to apply.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = src`.
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = cond != 0 ? if_true : if_false` — a branch-free select.
    Select {
        /// Destination register.
        dst: Reg,
        /// Condition operand.
        cond: Operand,
        /// Value when the condition is non-zero.
        if_true: Operand,
        /// Value when the condition is zero.
        if_false: Operand,
    },
    /// `dst = mem[addr + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address operand (word address).
        addr: Operand,
        /// Constant word offset added to the base.
        offset: i64,
    },
    /// `mem[addr + offset] = src`.
    Store {
        /// Value to store.
        src: Operand,
        /// Base address operand (word address).
        addr: Operand,
        /// Constant word offset added to the base.
        offset: i64,
    },
    /// Bump-allocate `words` words from the heap; `dst` receives the base
    /// address of the new object.
    Alloc {
        /// Destination register for the allocated base address.
        dst: Reg,
        /// Number of words to allocate.
        words: Operand,
    },
    /// Call a function with arguments, optionally receiving its return value.
    Call {
        /// Register receiving the return value, if any.
        dst: Option<Reg>,
        /// Callee.
        func: FuncId,
        /// Argument operands, bound to the callee's parameter registers.
        args: Vec<Operand>,
    },
    /// Send a scalar on an inter-thread channel (paper: value forwarding /
    /// token communication between cores).
    Send {
        /// Channel identifier operand.
        chan: Operand,
        /// Value to enqueue.
        value: Operand,
    },
    /// Receive a scalar from an inter-thread channel, blocking until one is
    /// available.
    Recv {
        /// Destination register.
        dst: Reg,
        /// Channel identifier operand.
        chan: Operand,
    },
    /// Enter speculative execution: subsequent stores are buffered and can be
    /// discarded by [`Inst::SpecAbort`] or made architectural by
    /// [`Inst::SpecCommit`].
    SpecBegin,
    /// Commit buffered speculative state to memory.
    SpecCommit,
    /// Discard buffered speculative state.
    SpecAbort,
    /// Query the memory system's conflict detection (paper §3, "Conflict
    /// Detection"): `dst` receives 1 if the speculative read set of the
    /// thread on `core` intersects the write set already committed during
    /// this loop invocation — a cross-chunk memory dependence violation —
    /// and 0 otherwise. Executed by the non-speculative main thread while
    /// validating chunks in order.
    SpecCheck {
        /// Destination register for the conflict verdict (0 or 1).
        dst: Reg,
        /// Core whose speculative read set is checked.
        core: Operand,
    },
    /// Redirect the thread running on `core` to `target` in its own
    /// function — the paper's remote resteer instruction used to force a
    /// mis-speculated thread into its recovery block.
    Resteer {
        /// Core whose thread is redirected.
        core: Operand,
        /// Block, within the redirected thread's current function, where
        /// execution resumes.
        target: BlockId,
    },
    /// Stop this thread permanently.
    Halt,
    /// No operation. Used by instrumentation passes as an anchor.
    Nop,
    /// Profiling hook: reports the values of `regs` to the attached profiler
    /// with an opaque site identifier. Costs nothing in the timing model and
    /// behaves as a no-op without a profiler.
    ProfileHook {
        /// Profiling site identifier.
        site: u32,
        /// Registers whose values are reported.
        regs: Vec<Reg>,
    },
}

impl Inst {
    /// Returns the register defined by this instruction, if any.
    #[must_use]
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Binary { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Alloc { dst, .. }
            | Inst::Recv { dst, .. }
            | Inst::SpecCheck { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. }
            | Inst::Send { .. }
            | Inst::SpecBegin
            | Inst::SpecCommit
            | Inst::SpecAbort
            | Inst::Resteer { .. }
            | Inst::Halt
            | Inst::Nop
            | Inst::ProfileHook { .. } => None,
        }
    }

    /// Appends the registers read by this instruction to `out`.
    pub fn uses_into(&self, out: &mut Vec<Reg>) {
        let mut push = |op: &Operand| {
            if let Operand::Reg(r) = op {
                out.push(*r);
            }
        };
        match self {
            Inst::Binary { lhs, rhs, .. } => {
                push(lhs);
                push(rhs);
            }
            Inst::Copy { src, .. } => push(src),
            Inst::Select {
                cond,
                if_true,
                if_false,
                ..
            } => {
                push(cond);
                push(if_true);
                push(if_false);
            }
            Inst::Load { addr, .. } => push(addr),
            Inst::Store { src, addr, .. } => {
                push(src);
                push(addr);
            }
            Inst::Alloc { words, .. } => push(words),
            Inst::Call { args, .. } => {
                for a in args {
                    push(a);
                }
            }
            Inst::Send { chan, value } => {
                push(chan);
                push(value);
            }
            Inst::Recv { chan, .. } => push(chan),
            Inst::Resteer { core, .. } => push(core),
            Inst::SpecCheck { core, .. } => push(core),
            Inst::ProfileHook { regs, .. } => out.extend(regs.iter().copied()),
            Inst::SpecBegin | Inst::SpecCommit | Inst::SpecAbort | Inst::Halt | Inst::Nop => {}
        }
    }

    /// Returns the registers read by this instruction.
    #[must_use]
    pub fn uses(&self) -> Vec<Reg> {
        let mut v = Vec::new();
        self.uses_into(&mut v);
        v
    }

    /// Returns `true` if this instruction may access memory.
    #[must_use]
    pub fn touches_memory(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::Alloc { .. }
        )
    }

    /// Rewrites every register mentioned by this instruction through `map`.
    ///
    /// Used when the Spice transformation clones a loop body into a new
    /// thread procedure and needs fresh virtual registers.
    pub fn remap_regs(&mut self, mut map: impl FnMut(Reg) -> Reg) {
        let map_op = |op: &mut Operand, map: &mut dyn FnMut(Reg) -> Reg| {
            if let Operand::Reg(r) = op {
                *r = map(*r);
            }
        };
        match self {
            Inst::Binary { dst, lhs, rhs, .. } => {
                map_op(lhs, &mut map);
                map_op(rhs, &mut map);
                *dst = map(*dst);
            }
            Inst::Copy { dst, src } => {
                map_op(src, &mut map);
                *dst = map(*dst);
            }
            Inst::Select {
                dst,
                cond,
                if_true,
                if_false,
            } => {
                map_op(cond, &mut map);
                map_op(if_true, &mut map);
                map_op(if_false, &mut map);
                *dst = map(*dst);
            }
            Inst::Load { dst, addr, .. } => {
                map_op(addr, &mut map);
                *dst = map(*dst);
            }
            Inst::Store { src, addr, .. } => {
                map_op(src, &mut map);
                map_op(addr, &mut map);
            }
            Inst::Alloc { dst, words } => {
                map_op(words, &mut map);
                *dst = map(*dst);
            }
            Inst::Call { dst, args, .. } => {
                for a in args.iter_mut() {
                    map_op(a, &mut map);
                }
                if let Some(d) = dst {
                    *d = map(*d);
                }
            }
            Inst::Send { chan, value } => {
                map_op(chan, &mut map);
                map_op(value, &mut map);
            }
            Inst::Recv { dst, chan } => {
                map_op(chan, &mut map);
                *dst = map(*dst);
            }
            Inst::Resteer { core, .. } => map_op(core, &mut map),
            Inst::SpecCheck { dst, core } => {
                map_op(core, &mut map);
                *dst = map(*dst);
            }
            Inst::ProfileHook { regs, .. } => {
                for r in regs.iter_mut() {
                    *r = map(*r);
                }
            }
            Inst::SpecBegin | Inst::SpecCommit | Inst::SpecAbort | Inst::Halt | Inst::Nop => {}
        }
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch: taken when `cond` is non-zero.
    CondBr {
        /// Condition operand.
        cond: Operand,
        /// Target when the condition is non-zero.
        then_bb: BlockId,
        /// Target when the condition is zero.
        else_bb: BlockId,
    },
    /// Return from the current function.
    Ret {
        /// Optional return value.
        value: Option<Operand>,
    },
    /// Placeholder used by builders for not-yet-finished blocks. Invalid in a
    /// verified function.
    Unreachable,
}

/// The successor blocks of a terminator: at most two, stored inline so CFG
/// walks and the instruction decoder never allocate per query. Dereferences
/// to a slice and iterates by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Successors {
    targets: [BlockId; 2],
    len: u8,
}

impl Default for Successors {
    fn default() -> Self {
        Successors::NONE
    }
}

impl Successors {
    const NONE: Successors = Successors {
        targets: [BlockId(0); 2],
        len: 0,
    };

    fn one(t: BlockId) -> Self {
        Successors {
            targets: [t, BlockId(0)],
            len: 1,
        }
    }

    fn two(a: BlockId, b: BlockId) -> Self {
        Successors {
            targets: [a, b],
            len: 2,
        }
    }

    /// The successors as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[BlockId] {
        &self.targets[..self.len as usize]
    }
}

impl std::ops::Deref for Successors {
    type Target = [BlockId];

    fn deref(&self) -> &[BlockId] {
        self.as_slice()
    }
}

impl IntoIterator for Successors {
    type Item = BlockId;
    type IntoIter = std::iter::Take<std::array::IntoIter<BlockId, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.targets.into_iter().take(self.len as usize)
    }
}

impl<'a> IntoIterator for &'a Successors {
    type Item = &'a BlockId;
    type IntoIter = std::slice::Iter<'a, BlockId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl Terminator {
    /// Returns the possible successor blocks of this terminator, inline —
    /// no allocation per call.
    #[must_use]
    pub fn successors(&self) -> Successors {
        match self {
            Terminator::Br(t) => Successors::one(*t),
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                if then_bb == else_bb {
                    Successors::one(*then_bb)
                } else {
                    Successors::two(*then_bb, *else_bb)
                }
            }
            Terminator::Ret { .. } | Terminator::Unreachable => Successors::NONE,
        }
    }

    /// Returns the registers read by this terminator.
    #[must_use]
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Terminator::CondBr {
                cond: Operand::Reg(r),
                ..
            } => vec![*r],
            Terminator::Ret {
                value: Some(Operand::Reg(r)),
            } => vec![*r],
            _ => Vec::new(),
        }
    }

    /// Rewrites every register mentioned by this terminator through `map`.
    pub fn remap_regs(&mut self, mut map: impl FnMut(Reg) -> Reg) {
        match self {
            Terminator::CondBr {
                cond: Operand::Reg(r),
                ..
            } => *r = map(*r),
            Terminator::Ret {
                value: Some(Operand::Reg(r)),
            } => *r = map(*r),
            _ => {}
        }
    }

    /// Rewrites every block target of this terminator through `map`.
    pub fn remap_blocks(&mut self, mut map: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Br(t) => *t = map(*t),
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                *then_bb = map(*then_bb);
                *else_bb = map(*else_bb);
            }
            Terminator::Ret { .. } | Terminator::Unreachable => {}
        }
    }
}

/// Coarse classification of an executed instruction, used by the timing
/// simulator to charge functional-unit latencies and by profilers to count
/// instruction mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstClass {
    /// Simple integer ALU operation (add, compare, logical, copy, select).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder.
    IntDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Heap allocation.
    Alloc,
    /// Control transfer (branch, call, return).
    Branch,
    /// Inter-core send.
    Send,
    /// Inter-core receive.
    Recv,
    /// Speculation control (begin/commit/abort).
    Spec,
    /// Remote resteer.
    Resteer,
    /// Everything else (nop, halt, profile hooks).
    Other,
}

impl InstClass {
    /// Number of distinct classes — the length of a dense per-class counter
    /// array indexed by [`InstClass::index`].
    pub const COUNT: usize = 12;

    /// Every class, in [`InstClass::index`] order.
    pub const ALL: [InstClass; InstClass::COUNT] = [
        InstClass::IntAlu,
        InstClass::IntMul,
        InstClass::IntDiv,
        InstClass::Load,
        InstClass::Store,
        InstClass::Alloc,
        InstClass::Branch,
        InstClass::Send,
        InstClass::Recv,
        InstClass::Spec,
        InstClass::Resteer,
        InstClass::Other,
    ];

    /// Dense index of this class, for fixed-size counter arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl Inst {
    /// Returns the timing class of this instruction.
    #[must_use]
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Binary { op, .. } => match op {
                BinOp::Mul => InstClass::IntMul,
                BinOp::Div | BinOp::Rem => InstClass::IntDiv,
                _ => InstClass::IntAlu,
            },
            Inst::Copy { .. } | Inst::Select { .. } => InstClass::IntAlu,
            Inst::Load { .. } => InstClass::Load,
            Inst::Store { .. } => InstClass::Store,
            Inst::Alloc { .. } => InstClass::Alloc,
            Inst::Call { .. } => InstClass::Branch,
            Inst::Send { .. } => InstClass::Send,
            Inst::Recv { .. } => InstClass::Recv,
            Inst::SpecBegin | Inst::SpecCommit | Inst::SpecAbort | Inst::SpecCheck { .. } => {
                InstClass::Spec
            }
            Inst::Resteer { .. } => InstClass::Resteer,
            Inst::Halt | Inst::Nop | Inst::ProfileHook { .. } => InstClass::Other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_binary() -> Inst {
        Inst::Binary {
            op: BinOp::Add,
            dst: Reg(2),
            lhs: Operand::Reg(Reg(0)),
            rhs: Operand::Imm(1),
        }
    }

    #[test]
    fn defs_and_uses() {
        let i = sample_binary();
        assert_eq!(i.def(), Some(Reg(2)));
        assert_eq!(i.uses(), vec![Reg(0)]);

        let st = Inst::Store {
            src: Operand::Reg(Reg(3)),
            addr: Operand::Reg(Reg(4)),
            offset: 1,
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![Reg(3), Reg(4)]);

        let call = Inst::Call {
            dst: Some(Reg(9)),
            func: FuncId(1),
            args: vec![Operand::Reg(Reg(5)), Operand::Imm(2)],
        };
        assert_eq!(call.def(), Some(Reg(9)));
        assert_eq!(call.uses(), vec![Reg(5)]);
    }

    #[test]
    fn remap_regs_rewrites_all_mentions() {
        let mut i = Inst::Select {
            dst: Reg(1),
            cond: Operand::Reg(Reg(2)),
            if_true: Operand::Reg(Reg(3)),
            if_false: Operand::Imm(0),
        };
        i.remap_regs(|r| Reg(r.0 + 10));
        assert_eq!(
            i,
            Inst::Select {
                dst: Reg(11),
                cond: Operand::Reg(Reg(12)),
                if_true: Operand::Reg(Reg(13)),
                if_false: Operand::Imm(0),
            }
        );
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(
            Terminator::Br(BlockId(3)).successors().as_slice(),
            [BlockId(3)]
        );
        let c = Terminator::CondBr {
            cond: Operand::Reg(Reg(0)),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(c.successors().as_slice(), [BlockId(1), BlockId(2)]);
        // By-value and by-reference iteration agree with the slice view.
        assert_eq!(
            c.successors().into_iter().collect::<Vec<_>>(),
            vec![BlockId(1), BlockId(2)]
        );
        let same = Terminator::CondBr {
            cond: Operand::Reg(Reg(0)),
            then_bb: BlockId(1),
            else_bb: BlockId(1),
        };
        assert_eq!(same.successors().as_slice(), [BlockId(1)]);
        assert!(Terminator::Ret { value: None }.successors().is_empty());
    }

    #[test]
    fn inst_class_indices_are_dense_and_unique() {
        let mut seen = [false; InstClass::COUNT];
        for c in InstClass::ALL {
            let i = c.index();
            assert!(i < InstClass::COUNT);
            assert!(!seen[i], "duplicate index for {c:?}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn terminator_remapping() {
        let mut t = Terminator::CondBr {
            cond: Operand::Reg(Reg(1)),
            then_bb: BlockId(0),
            else_bb: BlockId(1),
        };
        t.remap_blocks(|b| BlockId(b.0 + 5));
        t.remap_regs(|r| Reg(r.0 + 1));
        assert_eq!(
            t,
            Terminator::CondBr {
                cond: Operand::Reg(Reg(2)),
                then_bb: BlockId(5),
                else_bb: BlockId(6),
            }
        );
    }

    #[test]
    fn instruction_classes() {
        assert_eq!(sample_binary().class(), InstClass::IntAlu);
        assert_eq!(
            Inst::Binary {
                op: BinOp::Mul,
                dst: Reg(0),
                lhs: Operand::Imm(1),
                rhs: Operand::Imm(2)
            }
            .class(),
            InstClass::IntMul
        );
        assert_eq!(
            Inst::Load {
                dst: Reg(0),
                addr: Operand::Imm(0),
                offset: 0
            }
            .class(),
            InstClass::Load
        );
        assert_eq!(Inst::SpecBegin.class(), InstClass::Spec);
        assert_eq!(Inst::Nop.class(), InstClass::Other);
    }

    #[test]
    fn memory_touch_classification() {
        assert!(Inst::Load {
            dst: Reg(0),
            addr: Operand::Imm(0),
            offset: 0
        }
        .touches_memory());
        assert!(!sample_binary().touches_memory());
        assert!(!Inst::Send {
            chan: Operand::Imm(0),
            value: Operand::Imm(0)
        }
        .touches_memory());
    }
}
