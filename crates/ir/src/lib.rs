//! # spice-ir — low-level IR substrate for the Spice reproduction
//!
//! This crate provides the compiler-side substrate that the CGO 2008 paper
//! *"Spice: Speculative Parallel Iteration Chunk Execution"* (Raman,
//! Vachharajani, Rangan, August) assumes from its research compiler: a
//! low-level register IR with loads/stores and the threading/speculation
//! intrinsics of the target machine, plus the analyses the Spice
//! transformation consumes.
//!
//! ## What lives here
//!
//! * [`Program`] / [`Function`] / [`Block`] / [`Inst`] — the IR itself, with
//!   an ergonomic [`builder::FunctionBuilder`].
//! * [`cfg::Cfg`], [`dom::DomTree`], [`loops::LoopForest`] — control-flow
//!   analyses, ending in natural-loop detection and the loop-nest tree the
//!   profiler walks (paper §6).
//! * [`liveness::Liveness`] and [`liveness::loop_live_ins`] — the
//!   classification of a loop's registers into loop-carried live-ins,
//!   invariant live-ins and live-outs (paper §4, Algorithm 1).
//! * [`reduction::detect_reductions`] — sum/MIN/MAX reduction candidates,
//!   which Spice removes from the set of values to speculate.
//! * [`interp`] — functional execution: a steppable [`interp::ThreadState`]
//!   used by the multi-core timing simulator, and single-threaded
//!   convenience runners used by tests and the value profiler.
//! * [`decoded`] — the pre-decoded execution form every executor steps
//!   over: dense, index-addressed instruction arrays with terminators
//!   inlined and branch targets resolved.
//! * [`exec`] — the [`exec::ExecutionBackend`] abstraction: one API over
//!   every way of running a Spice loop (timing simulator, native threads),
//!   with the backend-neutral [`exec::ExecutionReport`] and
//!   [`exec::SpiceLoopSpec`].
//! * [`verify`] — structural verification, run after every transformation.
//! * [`dataflow`] — a reusable forward/backward dataflow framework over
//!   [`cfg::Cfg`] (reaching definitions, available memory-base expressions,
//!   loop-carried definition chains) and the static dependence pre-screen.
//! * [`lint`] — speculation-safety lints checking every transformed program
//!   against the Spice protocol contract it was generated under.
//!
//! ## Quick example
//!
//! ```
//! use spice_ir::builder::FunctionBuilder;
//! use spice_ir::interp::{run_function, FlatMemory};
//! use spice_ir::{BinOp, Operand, Program};
//!
//! // sum(n) = 0 + 1 + ... + (n-1)
//! let mut b = FunctionBuilder::new("sum_to_n");
//! let n = b.param();
//! let sum = b.copy(0i64);
//! let i = b.copy(0i64);
//! let header = b.new_block();
//! let body = b.new_block();
//! let exit = b.new_block();
//! b.br(header);
//! b.switch_to(header);
//! let done = b.binop(BinOp::Ge, i, n);
//! b.cond_br(done, exit, body);
//! b.switch_to(body);
//! let s = b.binop(BinOp::Add, sum, i);
//! b.copy_into(sum, s);
//! let i2 = b.binop(BinOp::Add, i, 1i64);
//! b.copy_into(i, i2);
//! b.br(header);
//! b.switch_to(exit);
//! b.ret(Some(Operand::Reg(sum)));
//!
//! let mut program = Program::new();
//! let f = program.add_func(b.finish());
//! let mut mem = FlatMemory::new(4096);
//! let out = run_function(&program, f, &[10], &mut mem).unwrap();
//! assert_eq!(out.return_value, Some(45));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod cfg;
pub mod dataflow;
pub mod decoded;
pub mod dom;
pub mod exec;
mod function;
mod inst;
pub mod interp;
pub mod lint;
pub mod liveness;
pub mod loops;
pub mod pretty;
pub mod reduction;
pub mod trace;
mod types;
pub mod verify;

pub use dataflow::{classify_loop_dependences, DependenceClass, LoopDependence};
pub use decoded::{DecodeError, DecodeErrorKind, DecodedFunction, DecodedProgram};
pub use exec::{
    derive_loop_spec, BackendError, ExecutionBackend, ExecutionCost, ExecutionReport, LoadOptions,
    MisspeculationCause, SpecError, SpiceLoopSpec, WorkerReport,
};
pub use function::{Block, Function, Global, Program, GLOBAL_BASE};
pub use inst::{Inst, InstClass, Successors, Terminator};
pub use lint::{lint_spice, LintError, SpiceProtocol};
pub use trace::{SquashForensics, TraceEvent, TraceRecorder, TraceSink};
pub use types::{BinOp, BlockId, FuncId, Operand, Reg, TrapKind};

#[cfg(test)]
mod tests {
    /// The public API surface re-exported at the crate root stays usable
    /// together (a compile-time smoke test of the re-exports).
    #[test]
    fn reexports_compose() {
        use crate::{BinOp, BlockId, FuncId, Operand, Program, Reg};
        let _ = (
            BinOp::Add,
            BlockId(0),
            FuncId(0),
            Operand::Imm(0),
            Reg(0),
            Program::new(),
        );
    }
}
