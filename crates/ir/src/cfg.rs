//! Control-flow graph queries: successors, predecessors, reverse post-order
//! and reachability.

use std::collections::HashSet;

use crate::function::Function;
use crate::types::BlockId;

/// Precomputed CFG adjacency for a function.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<Option<usize>>,
    entry: BlockId,
}

impl Cfg {
    /// Builds the CFG of `func`.
    #[must_use]
    pub fn new(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, block) in func.iter_blocks() {
            for s in block.terminator.successors() {
                succs[id.index()].push(s);
                preds[s.index()].push(id);
            }
        }
        // Compute reverse post-order with an iterative DFS.
        let mut visited = vec![false; n];
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        // Stack of (block, next-successor-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(func.entry, 0)];
        visited[func.entry.index()] = true;
        while let Some((b, i)) = stack.last_mut() {
            let bs = *b;
            if *i < succs[bs.index()].len() {
                let s = succs[bs.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(bs);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![None; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = Some(i);
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
            entry: func.entry,
        }
    }

    /// The entry block.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Successors of `b`.
    #[must_use]
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b`.
    #[must_use]
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks reachable from the entry, in reverse post-order.
    #[must_use]
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the reverse post-order, or `None` if unreachable.
    #[must_use]
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        self.rpo_index[b.index()]
    }

    /// Whether `b` is reachable from the entry.
    #[must_use]
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index(b).is_some()
    }

    /// Number of blocks in the underlying function (reachable or not).
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.succs.len()
    }

    /// Set of blocks reachable from `from` without passing through `without`.
    ///
    /// Used by natural-loop construction and by the transformation to find
    /// the blocks belonging to a loop body.
    #[must_use]
    pub fn reachable_from_without(&self, from: BlockId, without: BlockId) -> HashSet<BlockId> {
        let mut seen: HashSet<BlockId> = HashSet::new();
        if from == without {
            return seen;
        }
        let mut stack = vec![from];
        seen.insert(from);
        while let Some(b) = stack.pop() {
            for &s in self.succs(b) {
                if s != without && seen.insert(s) {
                    stack.push(s);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{BinOp, Operand};

    /// Diamond: entry -> (a | b) -> join
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("diamond");
        let x = b.param();
        let a = b.new_block();
        let c = b.new_block();
        let join = b.new_block();
        let cond = b.binop(BinOp::Gt, x, 0i64);
        b.cond_br(cond, a, c);
        b.switch_to(a);
        b.br(join);
        b.switch_to(c);
        b.br(join);
        b.switch_to(join);
        b.ret(Some(Operand::Imm(0)));
        b.finish()
    }

    #[test]
    fn successors_and_predecessors() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(0)), &[] as &[BlockId]);
        assert_eq!(cfg.block_count(), 4);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_order() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let rpo = cfg.rpo();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        // Join must come after both branches.
        let join_pos = cfg.rpo_index(BlockId(3)).unwrap();
        assert!(join_pos > cfg.rpo_index(BlockId(1)).unwrap());
        assert!(join_pos > cfg.rpo_index(BlockId(2)).unwrap());
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let mut b = FunctionBuilder::new("unreach");
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert!(cfg.is_reachable(BlockId(0)));
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo().len(), 1);
    }

    #[test]
    fn reachable_without_excludes_paths_through_header() {
        // entry -> header -> body -> header (loop), header -> exit
        let mut b = FunctionBuilder::new("loop");
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let c = b.copy(1i64);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        // From body, not passing through header: just body itself.
        let r = cfg.reachable_from_without(body, header);
        assert!(r.contains(&body));
        assert!(!r.contains(&header));
        assert!(!r.contains(&exit));
    }
}
