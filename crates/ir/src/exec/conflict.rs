//! Memory-dependence speculation support: per-chunk read/write-set
//! summaries and the policy selecting how a backend uses them.
//!
//! The paper assumes hardware read/write-set conflict detection (§3,
//! "Conflict Detection"): speculative chunks may race through loops that
//! carry genuine cross-chunk memory flow dependences, because the memory
//! system compares every chunk's speculative *read set* against the *write
//! sets* of logically earlier chunks at commit time and squashes from the
//! first violation. This module is the software form of that hardware
//! contract, shared by every execution backend:
//!
//! * [`AccessSet`] — a word-granular set of memory addresses with a
//!   page-coarsened bitmap representation: membership and intersection
//!   operate on 64-word pages, so the common case (disjoint working sets)
//!   is rejected with a handful of page-key comparisons instead of a
//!   per-address scan. A coarse `[lo, hi]` span gives an O(1) fast reject
//!   before the page walk.
//! * [`ConflictPolicy`] — how a backend treats cross-chunk dependences:
//!   detect-and-squash (the default, faithful to the paper's hardware), or
//!   assume-independent (the pre-subsystem behaviour, for loops *known* to
//!   carry no cross-chunk memory flow, where tracking is pure overhead).
//!
//! A set's lifetime is one speculation epoch (a loop invocation): consumers
//! build fresh sets — or [`AccessSet::clear`] recycled ones — per epoch, as
//! the native backend's per-invocation validation and the simulator's
//! `ConflictTracker` both do.
//!
//! The violation condition is the classic TLS RAW check, applied in commit
//! order: chunk `k` is violated iff `reads(k) ∩ (writes(0) ∪ … ∪
//! writes(k-1))` is non-empty, where chunk 0 is the non-speculative main
//! chunk and only *committed* earlier chunks contribute their write sets.
//! Reads satisfied from a chunk's own store buffer are excluded by the
//! recording side (store-to-load forwarding cannot observe a stale value),
//! which keeps the check exact at word granularity.

use super::dense::DenseMap;

/// Number of words covered by one page bitmap (64 = one `u64` of bits).
const PAGE_WORDS: i64 = 64;

/// A word-granular set of memory addresses with a page-coarsened
/// representation: each 64-word page present in the set maps to a bitmap of
/// the words accessed within it. The page table is an open-addressed
/// [`DenseMap`] (not a `BTreeMap`): inserts are a hash probe, and
/// [`AccessSet::clear`] recycles the storage for the next epoch instead of
/// deallocating tree nodes.
#[derive(Debug, Clone, Default)]
pub struct AccessSet {
    pages: DenseMap<u64>,
    len: usize,
    /// Coarse `[lo, hi]` grain span, for an O(1) disjointness fast-path.
    span: Option<(i64, i64)>,
    /// Tracking granularity: addresses are coarsened to `2^granularity_log2`
    /// -word grains before insertion, so two distinct words in one grain
    /// alias (a deliberate false conflict, modelling line- or sector-granular
    /// hardware detection). `0` is exact word granularity.
    granularity_log2: u8,
}

impl PartialEq for AccessSet {
    fn eq(&self, other: &Self) -> bool {
        // Set equality over contents; the page tables' probe layouts and
        // insertion orders are representation detail.
        self.granularity_log2 == other.granularity_log2
            && self.len == other.len
            && self.pages.entries().len() == other.pages.entries().len()
            && self
                .pages
                .entries()
                .iter()
                .all(|&(page, bits)| other.pages.get(page) == Some(bits))
    }
}

impl Eq for AccessSet {}

impl AccessSet {
    /// Creates an empty set at exact word granularity.
    #[must_use]
    pub fn new() -> Self {
        AccessSet::default()
    }

    /// Creates an empty set that coarsens every address to a
    /// `2^granularity_log2`-word grain. `0` is exact word granularity; `3`
    /// models a 64-byte (8-word) detection line.
    #[must_use]
    pub fn with_granularity(granularity_log2: u8) -> Self {
        AccessSet {
            granularity_log2,
            ..AccessSet::default()
        }
    }

    /// The coarsening factor this set was built with.
    #[must_use]
    pub fn granularity_log2(&self) -> u8 {
        self.granularity_log2
    }

    /// Number of distinct grains in the set (word addresses when the
    /// granularity is 0).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Coarsens a word address to this set's grain. Arithmetic right shift
    /// is floor division by the power-of-two grain size, so negative
    /// addresses coarsen consistently with `div_euclid`.
    #[inline]
    fn grain_of(&self, addr: i64) -> i64 {
        addr >> self.granularity_log2
    }

    fn page_of(grain: i64) -> (i64, u64) {
        (
            grain.div_euclid(PAGE_WORDS),
            1u64 << grain.rem_euclid(PAGE_WORDS),
        )
    }

    /// Inserts a word address (coarsened to this set's grain). Returns
    /// `true` if its grain was not already present.
    #[inline]
    pub fn insert(&mut self, addr: i64) -> bool {
        let grain = self.grain_of(addr);
        let (page, bit) = Self::page_of(grain);
        let slot = self.pages.entry_or(page, 0);
        if *slot & bit != 0 {
            return false;
        }
        *slot |= bit;
        self.len += 1;
        self.span = Some(match self.span {
            None => (grain, grain),
            Some((lo, hi)) => (lo.min(grain), hi.max(grain)),
        });
        true
    }

    /// Inserts every address of `addrs`.
    pub fn extend(&mut self, addrs: impl IntoIterator<Item = i64>) {
        for a in addrs {
            self.insert(a);
        }
    }

    /// Whether `addr`'s grain is in the set.
    #[must_use]
    #[inline]
    pub fn contains(&self, addr: i64) -> bool {
        let (page, bit) = Self::page_of(self.grain_of(addr));
        self.pages.get(page).is_some_and(|slot| slot & bit != 0)
    }

    /// Whether the two sets share any word address.
    #[must_use]
    pub fn intersects(&self, other: &AccessSet) -> bool {
        self.first_overlap(other).is_some()
    }

    /// The smallest word address present in both sets, or `None` when they
    /// are disjoint. The witness address is what a squash report carries.
    #[must_use]
    pub fn first_overlap(&self, other: &AccessSet) -> Option<i64> {
        // Span fast reject, then walk the smaller page table. The table is
        // unordered, so every overlapping page is inspected and the minimum
        // shared address is taken — the witness stays the smallest one, as
        // the ordered walk used to guarantee.
        debug_assert_eq!(
            self.granularity_log2, other.granularity_log2,
            "intersecting sets of different granularity is meaningless"
        );
        let (a, b) = (self.span?, other.span?);
        if a.1 < b.0 || b.1 < a.0 {
            return None;
        }
        let (small, large) = if self.pages.len() <= other.pages.len() {
            (&self.pages, &other.pages)
        } else {
            (&other.pages, &self.pages)
        };
        let mut best: Option<i64> = None;
        for &(page, bits) in small.entries() {
            if let Some(other_bits) = large.get(page) {
                let both = bits & other_bits;
                if both != 0 {
                    let grain = page * PAGE_WORDS + i64::from(both.trailing_zeros());
                    best = Some(match best {
                        None => grain,
                        Some(b) => b.min(grain),
                    });
                }
            }
        }
        // Report the witness as the grain's lowest word address, so squash
        // diagnostics stay in address space whatever the coarsening.
        best.map(|grain| grain << self.granularity_log2)
    }

    /// Number of grains present in both sets — the size of the
    /// intersection at this set's granularity. Diagnostics only (squash
    /// forensics count real vs coarsening-invented conflicts with it); the
    /// hot conflict check stays [`AccessSet::first_overlap`].
    #[must_use]
    pub fn overlap_count(&self, other: &AccessSet) -> usize {
        debug_assert_eq!(
            self.granularity_log2, other.granularity_log2,
            "intersecting sets of different granularity is meaningless"
        );
        let (Some(a), Some(b)) = (self.span, other.span) else {
            return 0;
        };
        if a.1 < b.0 || b.1 < a.0 {
            return 0;
        }
        let (small, large) = if self.pages.len() <= other.pages.len() {
            (&self.pages, &other.pages)
        } else {
            (&other.pages, &self.pages)
        };
        small
            .entries()
            .iter()
            .map(|&(page, bits)| match large.get(page) {
                Some(other_bits) => (bits & other_bits).count_ones() as usize,
                None => 0,
            })
            .sum()
    }

    /// Removes every address, recycling the set (and its page-table storage)
    /// for a new epoch.
    pub fn clear(&mut self) {
        self.pages.clear();
        self.len = 0;
        self.span = None;
    }

    /// Iterates the grains in ascending order, each as its lowest word
    /// address (the word addresses themselves at granularity 0). (Sorts a
    /// snapshot of the page keys; diagnostics and tests only — the hot paths
    /// never enumerate a set.)
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        let shift = self.granularity_log2;
        let mut pages: Vec<(i64, u64)> = self.pages.entries().to_vec();
        pages.sort_unstable_by_key(|&(page, _)| page);
        pages.into_iter().flat_map(move |(page, bits)| {
            (0..PAGE_WORDS).filter_map(move |i| {
                if bits & (1u64 << i) != 0 {
                    Some((page * PAGE_WORDS + i) << shift)
                } else {
                    None
                }
            })
        })
    }
}

/// How an execution backend treats cross-chunk memory dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictPolicy {
    /// Track read/write sets and squash, from the first violating chunk, any
    /// speculative chunk whose read set intersects an earlier chunk's write
    /// set — the software realization of the paper's hardware conflict
    /// detection, and the default: correctness never depends on the loop
    /// being dependence-free.
    #[default]
    Detect,
    /// Skip all tracking: the caller asserts the loop carries no cross-chunk
    /// memory flow dependences (as every pre-subsystem workload did by
    /// construction), trading the safety net for zero tracking overhead.
    AssumeIndependent,
}

impl ConflictPolicy {
    /// Whether this policy requires read/write-set tracking.
    #[must_use]
    pub fn detects(&self) -> bool {
        matches!(self, ConflictPolicy::Detect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_and_len() {
        let mut s = AccessSet::new();
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5), "duplicate insert reports false");
        assert!(s.insert(64));
        assert!(s.insert(63));
        assert_eq!(s.len(), 3);
        assert!(s.contains(5) && s.contains(63) && s.contains(64));
        assert!(!s.contains(6));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 63, 64]);
    }

    #[test]
    fn word_granularity_within_a_page() {
        // Adjacent words on the same 64-word page must not alias.
        let mut a = AccessSet::new();
        let mut b = AccessSet::new();
        a.insert(100);
        b.insert(101);
        assert!(!a.intersects(&b), "adjacent words are distinct");
        b.insert(100);
        assert_eq!(a.first_overlap(&b), Some(100));
    }

    #[test]
    fn overlap_reports_smallest_witness() {
        let mut a = AccessSet::new();
        let mut b = AccessSet::new();
        a.extend([10, 200, 3000]);
        b.extend([3000, 200]);
        assert_eq!(a.first_overlap(&b), Some(200));
        assert_eq!(b.first_overlap(&a), Some(200));
    }

    #[test]
    fn span_fast_path_rejects_disjoint_ranges() {
        let mut a = AccessSet::new();
        let mut b = AccessSet::new();
        a.extend(0..100);
        b.extend(10_000..10_100);
        assert!(!a.intersects(&b));
        assert_eq!(a.first_overlap(&b), None);
        let empty = AccessSet::new();
        assert!(!a.intersects(&empty));
        assert!(!empty.intersects(&a));
    }

    /// Page-boundary audit: the last word of page `k` and the first word of
    /// page `k+1` are distinct set members, never alias through the bitmap,
    /// and the span fast-reject stays exact when two sets abut exactly at a
    /// page boundary.
    #[test]
    fn page_boundary_words_never_alias() {
        for k in [-3i64, -1, 0, 1, 7, 1_000] {
            let last_of_k = k * PAGE_WORDS + (PAGE_WORDS - 1);
            let first_of_next = (k + 1) * PAGE_WORDS;
            assert_eq!(first_of_next, last_of_k + 1);

            let mut a = AccessSet::new();
            let mut b = AccessSet::new();
            a.insert(last_of_k);
            b.insert(first_of_next);
            assert!(a.contains(last_of_k) && !a.contains(first_of_next), "k={k}");
            assert!(b.contains(first_of_next) && !b.contains(last_of_k), "k={k}");
            // Adjacent addresses across the page seam: spans touch
            // ([.., last] vs [last+1, ..]) but the sets are disjoint.
            assert!(!a.intersects(&b), "k={k}: seam-adjacent words aliased");
            assert_eq!(a.first_overlap(&b), None, "k={k}");

            // And a genuine overlap exactly on the seam word is found, with
            // the seam word as the witness.
            b.insert(last_of_k);
            assert_eq!(a.first_overlap(&b), Some(last_of_k), "k={k}");
            a.insert(first_of_next);
            assert_eq!(a.first_overlap(&b), Some(last_of_k), "k={k}");
        }
    }

    /// The overlap witness is the smallest shared address even when the
    /// shared page straddles positive and negative page keys.
    #[test]
    fn overlap_across_negative_page_seam() {
        let mut a = AccessSet::new();
        let mut b = AccessSet::new();
        // Page -1 holds [-64, -1]; page 0 holds [0, 63].
        a.extend([-1, 0]);
        b.extend([0, 63]);
        assert_eq!(a.first_overlap(&b), Some(0));
        b.insert(-1);
        assert_eq!(a.first_overlap(&b), Some(-1), "negative page walked first");
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            vec![-1, 0],
            "iteration crosses the seam in ascending order"
        );
    }

    /// Span fast-reject at the boundary: sets whose `[lo, hi]` spans overlap
    /// but whose pages interleave without sharing a word stay disjoint (the
    /// fast path must only ever *reject*, never accept).
    #[test]
    fn interleaved_spans_are_not_false_conflicts() {
        let mut a = AccessSet::new();
        let mut b = AccessSet::new();
        // a covers pages 0 and 2, b covers page 1 — spans overlap fully.
        a.extend([10, 2 * PAGE_WORDS + 5]);
        b.extend([PAGE_WORDS, PAGE_WORDS + 63]);
        assert!(!a.intersects(&b));
        assert!(!b.intersects(&a));
        // Same page, complementary bitmap halves: still disjoint.
        let mut lo_half = AccessSet::new();
        let mut hi_half = AccessSet::new();
        lo_half.extend(0..32);
        hi_half.extend(32..64);
        assert!(!lo_half.intersects(&hi_half));
        hi_half.insert(31);
        assert_eq!(lo_half.first_overlap(&hi_half), Some(31));
    }

    #[test]
    fn overlap_count_matches_intersection_size() {
        let mut a = AccessSet::new();
        let mut b = AccessSet::new();
        assert_eq!(a.overlap_count(&b), 0);
        a.extend([10, 200, 3000, 3001]);
        b.extend([200, 3000, 9999]);
        assert_eq!(a.overlap_count(&b), 2);
        assert_eq!(b.overlap_count(&a), 2);
        // Coarsened sets count grains, so two words in one line are one
        // overlap — the word-vs-line delta is the false-conflict count.
        let mut ga = AccessSet::with_granularity(3);
        let mut gb = AccessSet::with_granularity(3);
        ga.extend([16, 17]);
        gb.insert(23); // same 8-word grain as both
        assert_eq!(ga.overlap_count(&gb), 1);
    }

    #[test]
    fn clear_recycles_the_set() {
        let mut s = AccessSet::new();
        s.insert(9);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(9));
        s.insert(70);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![70]);
    }

    #[test]
    fn negative_addresses_are_handled() {
        // Out-of-range speculative addresses trap before reaching a set in
        // practice, but the representation must not panic on them.
        let mut s = AccessSet::new();
        s.insert(-1);
        s.insert(-64);
        assert!(s.contains(-1) && s.contains(-64));
        assert!(!s.contains(-2));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![-64, -1]);
    }

    /// Line-granular coarsening: distinct words inside one grain alias (the
    /// modelled false conflict), grain-adjacent words do not, the witness is
    /// the grain base address, and negative addresses coarsen by floor
    /// division so the grain at the origin is not double-width.
    #[test]
    fn coarsened_grains_alias_within_a_line() {
        let mut a = AccessSet::with_granularity(3);
        let mut b = AccessSet::with_granularity(3);
        assert_eq!(a.granularity_log2(), 3);
        a.insert(17); // grain 2 = words [16, 24)
        assert!(a.contains(23), "same 8-word grain aliases");
        assert!(!a.contains(24), "next grain does not");
        assert!(!a.insert(22), "grain already present");
        assert_eq!(a.len(), 1);
        b.insert(16);
        assert_eq!(a.first_overlap(&b), Some(16), "witness is the grain base");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![16]);

        // Floor coarsening across zero: words -8..0 share one grain, and
        // -1 does not alias 0.
        let mut n = AccessSet::with_granularity(3);
        n.insert(-1);
        assert!(n.contains(-8) && !n.contains(0) && !n.contains(-9));
        assert_eq!(n.iter().collect::<Vec<_>>(), vec![-8]);
        n.clear();
        assert_eq!(n.granularity_log2(), 3, "clear keeps the granularity");

        // Granularity 0 keeps today's exact-word behaviour.
        let exact = AccessSet::new();
        assert_eq!(exact.granularity_log2(), 0);
    }

    #[test]
    fn policy_default_detects() {
        assert_eq!(ConflictPolicy::default(), ConflictPolicy::Detect);
        assert!(ConflictPolicy::Detect.detects());
        assert!(!ConflictPolicy::AssumeIndependent.detects());
    }
}
