//! Reusable open-addressed containers for the execution hot paths.
//!
//! The speculative-state bookkeeping of both backends — store buffers,
//! write logs, access-set page tables — used to live in `std` `HashMap`s and
//! `BTreeMap`s, paying SipHash and node allocations on every buffered store
//! and recorded load. [`DenseMap`] replaces them: a flat insertion-ordered
//! entry vector plus an open-addressed index table of `u32` slots, with a
//! multiplicative (Fibonacci) hash. `clear` empties it without releasing
//! storage, so a per-core buffer is recycled across chunks and epochs
//! instead of reallocated.

/// An insertion-ordered map from `i64` keys to copyable values, built for
/// clear-and-reuse. Entries live in a dense vector (iteration order =
/// first-insert order, which is exactly the commit order a speculative
/// store buffer needs); an open-addressed table of indices makes lookups
/// O(1) without hashing overhead worth mentioning.
#[derive(Debug, Clone)]
pub struct DenseMap<V> {
    /// `(key, value)` in first-insert order.
    entries: Vec<(i64, V)>,
    /// Open-addressed table of indices into `entries`; `EMPTY` marks a free
    /// slot. Capacity is a power of two.
    table: Vec<u32>,
    mask: usize,
}

const EMPTY: u32 = u32::MAX;
const INITIAL_CAPACITY: usize = 16;

#[inline]
fn hash(key: i64) -> u64 {
    // Fibonacci hashing: one multiply, excellent spread for the small
    // word-address keys this map sees.
    (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl<V: Copy> DenseMap<V> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        DenseMap {
            entries: Vec::new(),
            table: vec![EMPTY; INITIAL_CAPACITY],
            mask: INITIAL_CAPACITY - 1,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in first-insert order.
    #[must_use]
    pub fn entries(&self) -> &[(i64, V)] {
        &self.entries
    }

    #[inline]
    fn slot_of(&self, key: i64) -> usize {
        // Linear probing from the hashed home slot; the load factor stays
        // under 3/4, so probe chains are short.
        let mut slot = (hash(key) as usize) & self.mask;
        loop {
            match self.table[slot] {
                EMPTY => return slot,
                idx if self.entries[idx as usize].0 == key => return slot,
                _ => slot = (slot + 1) & self.mask,
            }
        }
    }

    /// The value stored under `key`, if any.
    #[must_use]
    #[inline]
    pub fn get(&self, key: i64) -> Option<V> {
        match self.table[self.slot_of(key)] {
            EMPTY => None,
            idx => Some(self.entries[idx as usize].1),
        }
    }

    /// Inserts `value` under `key`, returning the previous value if the key
    /// was present (its position in the entry order is kept).
    #[inline]
    pub fn insert(&mut self, key: i64, value: V) -> Option<V> {
        let slot = self.slot_of(key);
        match self.table[slot] {
            EMPTY => {
                self.table[slot] = self.entries.len() as u32;
                self.entries.push((key, value));
                self.grow_if_needed();
                None
            }
            idx => {
                let old = self.entries[idx as usize].1;
                self.entries[idx as usize].1 = value;
                Some(old)
            }
        }
    }

    /// A mutable reference to the value under `key`, inserting `default`
    /// first if the key is absent.
    #[inline]
    pub fn entry_or(&mut self, key: i64, default: V) -> &mut V {
        let slot = self.slot_of(key);
        let idx = match self.table[slot] {
            EMPTY => {
                let idx = self.entries.len();
                self.table[slot] = idx as u32;
                self.entries.push((key, default));
                self.grow_if_needed();
                idx
            }
            idx => idx as usize,
        };
        &mut self.entries[idx].1
    }

    /// Empties the map while keeping its storage for reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.table.fill(EMPTY);
    }

    fn grow_if_needed(&mut self) {
        if self.entries.len() * 4 >= self.table.len() * 3 {
            let new_cap = self.table.len() * 2;
            self.table.clear();
            self.table.resize(new_cap, EMPTY);
            self.mask = new_cap - 1;
            for (i, &(key, _)) in self.entries.iter().enumerate() {
                let mut slot = (hash(key) as usize) & self.mask;
                while self.table[slot] != EMPTY {
                    slot = (slot + 1) & self.mask;
                }
                self.table[slot] = i as u32;
            }
        }
    }
}

impl<V: Copy> Default for DenseMap<V> {
    fn default() -> Self {
        DenseMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_order() {
        let mut m: DenseMap<i64> = DenseMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(20, 1), None);
        assert_eq!(m.insert(10, 2), None);
        assert_eq!(m.insert(20, 3), Some(1), "overwrite returns the old value");
        assert_eq!(m.get(20), Some(3));
        assert_eq!(m.get(10), Some(2));
        assert_eq!(m.get(99), None);
        // First-insert order is kept across overwrites.
        assert_eq!(m.entries(), &[(20, 3), (10, 2)]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn entry_or_inserts_and_updates_in_place() {
        let mut m: DenseMap<u64> = DenseMap::new();
        *m.entry_or(5, 0) |= 0b01;
        *m.entry_or(5, 0) |= 0b10;
        assert_eq!(m.get(5), Some(0b11));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn clear_reuses_storage() {
        let mut m: DenseMap<i64> = DenseMap::new();
        for k in 0..100 {
            m.insert(k, k);
        }
        let cap = m.table.len();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(7), None);
        assert_eq!(m.table.len(), cap, "clear must not shrink");
        m.insert(7, 70);
        assert_eq!(m.get(7), Some(70));
    }

    #[test]
    fn growth_keeps_every_key_reachable() {
        let mut m: DenseMap<i64> = DenseMap::new();
        // Adversarial keys: negative, huge, colliding low bits.
        let mut keys: Vec<i64> = (0..500)
            .map(|i| (i * 1_000_003) ^ (i << 40))
            .chain([-1, i64::MIN, i64::MAX])
            .collect();
        keys.dedup();
        for (i, &k) in keys.iter().enumerate() {
            m.insert(k, i as i64);
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(m.get(k), Some(i as i64), "key {k} lost");
        }
        assert_eq!(m.len(), keys.len());
    }
}
