//! Pre-decoded IR: the dense, index-addressed execution form shared by the
//! interpreter, the timing simulator's cores and the native backend's chunk
//! workers.
//!
//! [`crate::interp::ThreadState`] used to walk the structured IR directly —
//! two indirections per step (function, then block), a bounds-checked
//! instruction index, a terminator clone per control transfer, and a fresh
//! `Vec` for every call's arguments. None of that work depends on runtime
//! state, so it is hoisted here into a one-time decode:
//!
//! * every function is flattened into **one dense instruction array** with
//!   the block terminators inlined as ordinary decoded instructions, so the
//!   hot loop is a single `insts[pc]` index;
//! * branch targets are resolved to **instruction indices** (`pc`), with the
//!   successor [`BlockId`]s carried alongside purely so
//!   [`crate::interp::ThreadState::current_block`] stays observable (the
//!   native backend's chunk boundaries key on header arrivals);
//! * each instruction's [`InstClass`] is **precomputed** into a parallel
//!   array, so the simulator's latency lookup never re-classifies;
//! * a `pc → (block, intra-block index)` source map supports the profiling
//!   observer without keeping any structured-IR state in the thread.
//!
//! Decoding is semantically invisible: a decoded thread retires the exact
//! same [`crate::interp::ExecInfo`] stream, traps included, as the
//! structured walker did (enforced by the cross-representation equivalence
//! tests in `crates/tests`). The [`Program`] itself stays the single source
//! of truth — a `DecodedProgram` is a derived view, rebuilt after any
//! transformation.

use crate::function::Program;
use crate::inst::{Inst, InstClass, Terminator};
use crate::types::{BinOp, BlockId, FuncId, Operand, Reg};

/// A malformed input rejected while decoding, with enough context to point
/// at the offending instruction: the function (name and id), the block, and
/// the intra-block instruction index (`ip` equals the block's instruction
/// count when the terminator itself is at fault).
///
/// The lint/verify gate runs before any decode in the pipeline, so in
/// practice this error is reachable only from hand-built IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Name of the function that failed to decode.
    pub func: String,
    /// Id of the function that failed to decode.
    pub func_id: FuncId,
    /// Block holding the offending instruction.
    pub block: BlockId,
    /// Intra-block instruction index (the terminator slot is
    /// `insts.len()`).
    pub ip: usize,
    /// What went wrong.
    pub kind: DecodeErrorKind,
}

/// The ways decoding can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeErrorKind {
    /// A terminator targets a block the function does not have, so no entry
    /// pc exists for it.
    DanglingTarget {
        /// The missing target block.
        target: BlockId,
    },
    /// The function's entry block id is out of range.
    DanglingEntry {
        /// The missing entry block.
        entry: BlockId,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            DecodeErrorKind::DanglingTarget { target } => write!(
                f,
                "decode of @{} ({}): {}[{}] targets missing block {target}",
                self.func, self.func_id, self.block, self.ip
            ),
            DecodeErrorKind::DanglingEntry { entry } => write!(
                f,
                "decode of @{} ({}): entry block {entry} does not exist",
                self.func, self.func_id
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A decoded instruction: one element of a function's flat instruction
/// array. Non-terminator variants mirror [`Inst`]; terminators appear as
/// [`DInst::Br`]/[`DInst::CondBr`]/[`DInst::Ret`]/[`DInst::Unreachable`]
/// with their targets resolved to instruction indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum DInst {
    /// `dst = op(lhs, rhs)`.
    Binary {
        op: BinOp,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = src`.
    Copy { dst: u32, src: Operand },
    /// Branch-free select.
    Select {
        dst: u32,
        cond: Operand,
        if_true: Operand,
        if_false: Operand,
    },
    /// `dst = mem[addr + offset]`.
    Load {
        dst: u32,
        addr: Operand,
        offset: i64,
    },
    /// `mem[addr + offset] = src`.
    Store {
        src: Operand,
        addr: Operand,
        offset: i64,
    },
    /// Bump allocation.
    Alloc { dst: u32, words: Operand },
    /// Function call; argument operands are decoded into a boxed slice once,
    /// so the step loop never rebuilds them.
    Call {
        dst: Option<Reg>,
        func: FuncId,
        args: Box<[Operand]>,
    },
    /// Channel send.
    Send { chan: Operand, value: Operand },
    /// Channel receive (blocking).
    Recv { dst: u32, chan: Operand },
    /// Enter speculation.
    SpecBegin,
    /// Commit speculative state.
    SpecCommit,
    /// Discard speculative state.
    SpecAbort,
    /// Conflict-detection query.
    SpecCheck { dst: u32, core: Operand },
    /// Remote resteer.
    Resteer { core: Operand, target: BlockId },
    /// Stop the thread.
    Halt,
    /// No-op.
    Nop,
    /// Profiling hook.
    ProfileHook { site: u32, regs: Box<[Reg]> },
    /// Unconditional branch, target resolved to an instruction index.
    Br { pc: u32, block: BlockId },
    /// Conditional branch, both targets resolved.
    CondBr {
        cond: Operand,
        then_pc: u32,
        then_block: BlockId,
        else_pc: u32,
        else_block: BlockId,
    },
    /// Return from the current function.
    Ret { value: Option<Operand> },
    /// Builder placeholder; traps when executed.
    Unreachable,
}

/// One function in decoded form: a flat instruction array plus the tables
/// the interpreter and its drivers need (block entry points, precomputed
/// instruction classes, a source map back into the structured IR).
#[derive(Debug, Clone)]
pub struct DecodedFunction {
    pub(crate) insts: Vec<DInst>,
    /// Precomputed [`InstClass`] per instruction (terminators are
    /// [`InstClass::Branch`]; `Unreachable` never retires, its slot is
    /// arbitrary).
    pub(crate) classes: Vec<InstClass>,
    /// `block_entry[block.index()]` = pc of the block's first instruction.
    block_entry: Vec<u32>,
    /// `src[pc]` = (owning block, intra-block instruction index). The
    /// terminator's intra-block index equals the block's instruction count,
    /// mirroring the structured walker's cursor convention.
    src: Vec<(BlockId, u32)>,
    /// Parameter registers (callers bind arguments to these).
    pub(crate) params: Vec<Reg>,
    /// Size of the function's register file.
    pub(crate) reg_count: usize,
    /// Function name, for diagnostics.
    pub(crate) name: String,
    /// The function's entry block and its pc.
    entry_block: BlockId,
    entry_pc: u32,
}

impl DecodedFunction {
    fn try_decode(f: &crate::function::Function, func_id: FuncId) -> Result<Self, DecodeError> {
        let mut block_entry = Vec::with_capacity(f.blocks.len());
        let mut next_pc = 0u32;
        for b in &f.blocks {
            block_entry.push(next_pc);
            next_pc += b.insts.len() as u32 + 1; // + terminator
        }
        let mut insts = Vec::with_capacity(next_pc as usize);
        let mut classes = Vec::with_capacity(next_pc as usize);
        let mut src = Vec::with_capacity(next_pc as usize);
        for (bi, b) in f.blocks.iter().enumerate() {
            let block = BlockId(bi as u32);
            for (ip, inst) in b.insts.iter().enumerate() {
                classes.push(inst.class());
                src.push((block, ip as u32));
                insts.push(Self::decode_inst(inst));
            }
            classes.push(InstClass::Branch);
            src.push((block, b.insts.len() as u32));
            let decoded =
                Self::decode_terminator(&b.terminator, &block_entry).map_err(|target| {
                    DecodeError {
                        func: f.name.clone(),
                        func_id,
                        block,
                        ip: b.insts.len(),
                        kind: DecodeErrorKind::DanglingTarget { target },
                    }
                })?;
            insts.push(decoded);
        }
        let Some(&entry_pc) = block_entry.get(f.entry.index()) else {
            return Err(DecodeError {
                func: f.name.clone(),
                func_id,
                block: f.entry,
                ip: 0,
                kind: DecodeErrorKind::DanglingEntry { entry: f.entry },
            });
        };
        Ok(DecodedFunction {
            insts,
            classes,
            block_entry,
            src,
            params: f.params.clone(),
            reg_count: f.reg_count(),
            name: f.name.clone(),
            entry_block: f.entry,
            entry_pc,
        })
    }

    fn decode_inst(inst: &Inst) -> DInst {
        match inst {
            Inst::Binary { op, dst, lhs, rhs } => DInst::Binary {
                op: *op,
                dst: dst.0,
                lhs: *lhs,
                rhs: *rhs,
            },
            Inst::Copy { dst, src } => DInst::Copy {
                dst: dst.0,
                src: *src,
            },
            Inst::Select {
                dst,
                cond,
                if_true,
                if_false,
            } => DInst::Select {
                dst: dst.0,
                cond: *cond,
                if_true: *if_true,
                if_false: *if_false,
            },
            Inst::Load { dst, addr, offset } => DInst::Load {
                dst: dst.0,
                addr: *addr,
                offset: *offset,
            },
            Inst::Store { src, addr, offset } => DInst::Store {
                src: *src,
                addr: *addr,
                offset: *offset,
            },
            Inst::Alloc { dst, words } => DInst::Alloc {
                dst: dst.0,
                words: *words,
            },
            Inst::Call { dst, func, args } => DInst::Call {
                dst: *dst,
                func: *func,
                args: args.clone().into_boxed_slice(),
            },
            Inst::Send { chan, value } => DInst::Send {
                chan: *chan,
                value: *value,
            },
            Inst::Recv { dst, chan } => DInst::Recv {
                dst: dst.0,
                chan: *chan,
            },
            Inst::SpecBegin => DInst::SpecBegin,
            Inst::SpecCommit => DInst::SpecCommit,
            Inst::SpecAbort => DInst::SpecAbort,
            Inst::SpecCheck { dst, core } => DInst::SpecCheck {
                dst: dst.0,
                core: *core,
            },
            Inst::Resteer { core, target } => DInst::Resteer {
                core: *core,
                target: *target,
            },
            Inst::Halt => DInst::Halt,
            Inst::Nop => DInst::Nop,
            Inst::ProfileHook { site, regs } => DInst::ProfileHook {
                site: *site,
                regs: regs.clone().into_boxed_slice(),
            },
        }
    }

    /// Resolves a terminator's targets to instruction indices; a target
    /// with no entry pc is reported back as `Err(target)`.
    fn decode_terminator(t: &Terminator, block_entry: &[u32]) -> Result<DInst, BlockId> {
        let entry_of = |b: &BlockId| block_entry.get(b.index()).copied().ok_or(*b);
        Ok(match t {
            Terminator::Br(b) => DInst::Br {
                pc: entry_of(b)?,
                block: *b,
            },
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => DInst::CondBr {
                cond: *cond,
                then_pc: entry_of(then_bb)?,
                then_block: *then_bb,
                else_pc: entry_of(else_bb)?,
                else_block: *else_bb,
            },
            Terminator::Ret { value } => DInst::Ret { value: *value },
            Terminator::Unreachable => DInst::Unreachable,
        })
    }

    /// The function's entry block.
    #[must_use]
    pub fn entry_block(&self) -> BlockId {
        self.entry_block
    }

    /// The pc of the entry block's first instruction.
    #[must_use]
    pub fn entry_pc(&self) -> usize {
        self.entry_pc as usize
    }

    /// The pc of `block`'s first instruction.
    ///
    /// # Panics
    ///
    /// Panics if the block id is out of range for this function.
    #[must_use]
    pub fn block_entry(&self, block: BlockId) -> usize {
        self.block_entry[block.index()] as usize
    }

    /// The structured-IR position of the instruction at `pc`: its owning
    /// block and intra-block index (equal to the block's instruction count
    /// when `pc` addresses the terminator).
    #[must_use]
    pub fn source_of(&self, pc: usize) -> (BlockId, usize) {
        let (b, ip) = self.src[pc];
        (b, ip as usize)
    }

    /// Size of the function's register file.
    #[must_use]
    pub fn reg_count(&self) -> usize {
        self.reg_count
    }

    /// Number of decoded instructions (terminators included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the function decoded to zero instructions (never: every block
    /// contributes at least its terminator).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// The decoded form of a whole [`Program`]: one [`DecodedFunction`] per
/// function, produced once and shared (behind `Arc` where needed) by every
/// executor. Purely derived state — rebuild after transforming the program.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    funcs: Vec<DecodedFunction>,
}

impl DecodedProgram {
    /// Decodes every function of `program`.
    ///
    /// # Panics
    ///
    /// Panics on malformed input (a dangling block target). The pipeline
    /// verifies and lints programs before decoding, so this is the
    /// convenient entry point for known-good programs; use
    /// [`DecodedProgram::try_new`] to handle malformed IR gracefully.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        match Self::try_new(program) {
            Ok(dp) => dp,
            Err(e) => panic!("decoding a malformed program: {e}"),
        }
    }

    /// Decodes every function of `program`, reporting malformed input as a
    /// typed [`DecodeError`] with `(function, block, ip)` context instead of
    /// panicking mid-flatten.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] encountered, in function order.
    pub fn try_new(program: &Program) -> Result<Self, DecodeError> {
        let funcs = program
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| DecodedFunction::try_decode(f, FuncId(i as u32)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DecodedProgram { funcs })
    }

    /// The decoded form of one function.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn func(&self, id: FuncId) -> &DecodedFunction {
        &self.funcs[id.index()]
    }

    /// Number of functions.
    #[must_use]
    pub fn func_count(&self) -> usize {
        self.funcs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::BinOp;

    #[test]
    fn blocks_flatten_with_terminators_inlined() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let loop_bb = b.new_block();
        let exit = b.new_block();
        let y = b.binop(BinOp::Add, x, 1i64);
        b.br(loop_bb);
        b.switch_to(loop_bb);
        let done = b.binop(BinOp::Ge, y, 10i64);
        b.cond_br(done, exit, loop_bb);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(y)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());

        let dp = DecodedProgram::new(&p);
        let df = dp.func(f);
        // entry: 1 inst + br; loop: 1 inst + condbr; exit: ret.
        assert_eq!(df.len(), 5);
        assert_eq!(df.block_entry(BlockId(0)), 0);
        assert_eq!(df.block_entry(loop_bb), 2);
        assert_eq!(df.block_entry(exit), 4);
        assert!(matches!(df.insts[1], DInst::Br { pc: 2, .. }));
        assert!(matches!(
            df.insts[3],
            DInst::CondBr {
                then_pc: 4,
                else_pc: 2,
                ..
            }
        ));
        assert_eq!(df.classes[0], InstClass::IntAlu);
        assert_eq!(df.classes[1], InstClass::Branch);
        assert_eq!(df.source_of(0), (BlockId(0), 0));
        assert_eq!(df.source_of(1), (BlockId(0), 1)); // terminator slot
        assert_eq!(df.source_of(3), (loop_bb, 1));
        assert_eq!(df.reg_count(), 3);
        assert!(!df.is_empty());
        assert_eq!(dp.func_count(), 1);
    }

    #[test]
    fn dangling_target_reports_typed_context_instead_of_panicking() {
        let mut b = FunctionBuilder::new("broken");
        let bad = BlockId(99);
        let x = b.copy(1i64);
        b.push(Inst::Nop);
        b.br(bad);
        let mut f = b.finish();
        f.block_mut(BlockId(0)).terminator = Terminator::Br(bad);
        let mut p = Program::new();
        p.add_func(f);
        let _ = x;

        let err = DecodedProgram::try_new(&p).unwrap_err();
        assert_eq!(err.func, "broken");
        assert_eq!(err.func_id, FuncId(0));
        assert_eq!(err.block, BlockId(0));
        assert_eq!(err.ip, 2, "terminator slot is insts.len()");
        assert_eq!(err.kind, DecodeErrorKind::DanglingTarget { target: bad });
        assert!(err.to_string().contains("missing block bb99"));
    }
}
