//! An ergonomic builder for constructing IR functions.
//!
//! The builder keeps a *current block* cursor and offers one method per
//! instruction kind, returning the destination register where applicable so
//! that code generation reads close to the pseudo-code in the paper:
//!
//! ```
//! use spice_ir::builder::FunctionBuilder;
//! use spice_ir::{BinOp, Operand};
//!
//! // while (c != 0) { sum += mem[c]; c = mem[c + 1]; }
//! let mut b = FunctionBuilder::new("list_sum");
//! let c = b.param();
//! let sum = b.copy(0i64);
//! let header = b.new_block();
//! let body = b.new_block();
//! let exit = b.new_block();
//! b.br(header);
//! b.switch_to(header);
//! let done = b.binop(BinOp::Eq, c, 0i64);
//! b.cond_br(done, exit, body);
//! b.switch_to(body);
//! let v = b.load(c, 0);
//! let new_sum = b.binop(BinOp::Add, sum, v);
//! b.copy_into(sum, new_sum);
//! let next = b.load(c, 1);
//! b.copy_into(c, next);
//! b.br(header);
//! b.switch_to(exit);
//! b.ret(Some(Operand::Reg(sum)));
//! let f = b.finish();
//! assert_eq!(f.name, "list_sum");
//! ```

use crate::function::{Block, Function};
use crate::inst::{Inst, Terminator};
use crate::types::{BinOp, BlockId, FuncId, Operand, Reg};

/// Builder for a single [`Function`]. See the [module documentation]
/// (self) for an example.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
}

impl FunctionBuilder {
    /// Creates a builder whose cursor is at the function's entry block.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        let func = Function::new(name);
        FunctionBuilder {
            current: func.entry,
            func,
        }
    }

    /// Declares a new parameter register.
    pub fn param(&mut self) -> Reg {
        let r = self.func.fresh_reg();
        self.func.params.push(r);
        r
    }

    /// Allocates a fresh register without emitting anything.
    pub fn fresh(&mut self) -> Reg {
        self.func.fresh_reg()
    }

    /// Creates a new (empty, unreachable) block and returns its id; the
    /// cursor does not move.
    pub fn new_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Creates a new labeled block.
    pub fn new_labeled_block(&mut self, label: impl Into<String>) -> BlockId {
        self.func.add_labeled_block(label)
    }

    /// Moves the cursor to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// Returns the block the cursor is currently appending to.
    #[must_use]
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Returns the entry block id.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.func.entry
    }

    fn cur(&mut self) -> &mut Block {
        self.func.block_mut(self.current)
    }

    /// Appends a raw instruction at the cursor.
    pub fn push(&mut self, inst: Inst) {
        self.cur().insts.push(inst);
    }

    /// Emits `dst = op(lhs, rhs)` into a fresh register.
    pub fn binop(&mut self, op: BinOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Reg {
        let dst = self.func.fresh_reg();
        let inst = Inst::Binary {
            op,
            dst,
            lhs: lhs.into(),
            rhs: rhs.into(),
        };
        self.push(inst);
        dst
    }

    /// Emits `dst = op(lhs, rhs)` into an existing register.
    pub fn binop_into(
        &mut self,
        dst: Reg,
        op: BinOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) {
        let inst = Inst::Binary {
            op,
            dst,
            lhs: lhs.into(),
            rhs: rhs.into(),
        };
        self.push(inst);
    }

    /// Emits a copy into a fresh register.
    pub fn copy(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.func.fresh_reg();
        let inst = Inst::Copy {
            dst,
            src: src.into(),
        };
        self.push(inst);
        dst
    }

    /// Emits a copy into an existing register.
    pub fn copy_into(&mut self, dst: Reg, src: impl Into<Operand>) {
        let inst = Inst::Copy {
            dst,
            src: src.into(),
        };
        self.push(inst);
    }

    /// Emits a select into a fresh register.
    pub fn select(
        &mut self,
        cond: impl Into<Operand>,
        if_true: impl Into<Operand>,
        if_false: impl Into<Operand>,
    ) -> Reg {
        let dst = self.func.fresh_reg();
        let inst = Inst::Select {
            dst,
            cond: cond.into(),
            if_true: if_true.into(),
            if_false: if_false.into(),
        };
        self.push(inst);
        dst
    }

    /// Emits a load into a fresh register.
    pub fn load(&mut self, addr: impl Into<Operand>, offset: i64) -> Reg {
        let dst = self.func.fresh_reg();
        let inst = Inst::Load {
            dst,
            addr: addr.into(),
            offset,
        };
        self.push(inst);
        dst
    }

    /// Emits a load into an existing register.
    pub fn load_into(&mut self, dst: Reg, addr: impl Into<Operand>, offset: i64) {
        let inst = Inst::Load {
            dst,
            addr: addr.into(),
            offset,
        };
        self.push(inst);
    }

    /// Emits a store.
    pub fn store(&mut self, src: impl Into<Operand>, addr: impl Into<Operand>, offset: i64) {
        let inst = Inst::Store {
            src: src.into(),
            addr: addr.into(),
            offset,
        };
        self.push(inst);
    }

    /// Emits a heap allocation of `words` words.
    pub fn alloc(&mut self, words: impl Into<Operand>) -> Reg {
        let dst = self.func.fresh_reg();
        let inst = Inst::Alloc {
            dst,
            words: words.into(),
        };
        self.push(inst);
        dst
    }

    /// Emits a call whose return value is captured in a fresh register.
    pub fn call(&mut self, func: FuncId, args: Vec<Operand>) -> Reg {
        let dst = self.func.fresh_reg();
        self.push(Inst::Call {
            dst: Some(dst),
            func,
            args,
        });
        dst
    }

    /// Emits a call that ignores any return value.
    pub fn call_void(&mut self, func: FuncId, args: Vec<Operand>) {
        self.push(Inst::Call {
            dst: None,
            func,
            args,
        });
    }

    /// Emits a channel send.
    pub fn send(&mut self, chan: impl Into<Operand>, value: impl Into<Operand>) {
        self.push(Inst::Send {
            chan: chan.into(),
            value: value.into(),
        });
    }

    /// Emits a blocking channel receive into a fresh register.
    pub fn recv(&mut self, chan: impl Into<Operand>) -> Reg {
        let dst = self.func.fresh_reg();
        self.push(Inst::Recv {
            dst,
            chan: chan.into(),
        });
        dst
    }

    /// Emits a blocking channel receive into an existing register.
    pub fn recv_into(&mut self, dst: Reg, chan: impl Into<Operand>) {
        self.push(Inst::Recv {
            dst,
            chan: chan.into(),
        });
    }

    /// Emits a conflict-detection query for the thread on `core` into a
    /// fresh register (1 = its speculative read set conflicts with writes
    /// committed earlier in this invocation).
    pub fn spec_check(&mut self, core: impl Into<Operand>) -> Reg {
        let dst = self.func.fresh_reg();
        self.push(Inst::SpecCheck {
            dst,
            core: core.into(),
        });
        dst
    }

    /// Emits a profiling hook.
    pub fn profile_hook(&mut self, site: u32, regs: Vec<Reg>) {
        self.push(Inst::ProfileHook { site, regs });
    }

    /// Terminates the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.cur().terminator = Terminator::Br(target);
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: impl Into<Operand>, then_bb: BlockId, else_bb: BlockId) {
        self.cur().terminator = Terminator::CondBr {
            cond: cond.into(),
            then_bb,
            else_bb,
        };
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.cur().terminator = Terminator::Ret { value };
    }

    /// Consumes the builder and returns the finished function.
    #[must_use]
    pub fn finish(self) -> Function {
        self.func
    }

    /// Gives direct access to the function under construction (for passes
    /// that need to splice blocks, e.g. the Spice transformation).
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, FlatMemory};
    use crate::Program;

    /// Builds the module-level example and checks it sums a list.
    #[test]
    fn doc_example_executes() {
        let mut b = FunctionBuilder::new("list_sum");
        let c = b.param();
        let sum = b.copy(0i64);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let done = b.binop(BinOp::Eq, c, 0i64);
        b.cond_br(done, exit, body);
        b.switch_to(body);
        let v = b.load(c, 0);
        let new_sum = b.binop(BinOp::Add, sum, v);
        b.copy_into(sum, new_sum);
        let next = b.load(c, 1);
        b.copy_into(c, next);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(sum)));

        let mut p = Program::new();
        let f = p.add_func(b.finish());
        // List nodes at 2000: (5, ->2010), 2010: (7, ->0)
        let mut mem = FlatMemory::new(4096);
        mem.write(2000, 5).unwrap();
        mem.write(2001, 2010).unwrap();
        mem.write(2010, 7).unwrap();
        mem.write(2011, 0).unwrap();
        let out = run_function(&p, f, &[2000], &mut mem).unwrap();
        assert_eq!(out.return_value, Some(12));
    }

    #[test]
    fn cursor_moves_between_blocks() {
        let mut b = FunctionBuilder::new("f");
        assert_eq!(b.current_block(), b.entry());
        let other = b.new_labeled_block("other");
        b.br(other);
        b.switch_to(other);
        assert_eq!(b.current_block(), other);
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.block(other).label.as_deref(), Some("other"));
        assert_eq!(f.block(f.entry).terminator, Terminator::Br(other));
    }

    #[test]
    fn params_are_registered_in_order() {
        let mut b = FunctionBuilder::new("f");
        let p0 = b.param();
        let p1 = b.param();
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.params, vec![p0, p1]);
    }

    #[test]
    fn push_emits_into_current_block() {
        let mut b = FunctionBuilder::new("f");
        let r = b.copy(3i64);
        let s = b.select(r, 10i64, 20i64);
        b.store(s, 100i64, 0);
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.block(f.entry).insts.len(), 3);
    }
}
