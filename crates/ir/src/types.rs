//! Core identifier and operand types of the Spice low-level IR.
//!
//! The IR is a register machine over 64-bit integer words. Pointers are plain
//! word addresses (an `i64` index into the flat word-addressable memory of
//! [`crate::interp::FlatMemory`]), with `0` acting as the null pointer —
//! mirroring the low-level IR the paper's research compiler lowers C into
//! before the Spice transformation runs.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A virtual register.
///
/// Registers are function-local; the register allocator of the paper's
/// backend is irrelevant to the transformation, so the IR keeps an unbounded
/// virtual register file.
///
/// ```
/// use spice_ir::Reg;
/// let r = Reg(3);
/// assert_eq!(r.index(), 3);
/// assert_eq!(format!("{r}"), "r3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u32);

impl Reg {
    /// Returns the raw index of this register.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A basic block identifier, local to a [`crate::Function`].
///
/// ```
/// use spice_ir::BlockId;
/// assert_eq!(format!("{}", BlockId(2)), "bb2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Returns the raw index of this block.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A function identifier, local to a [`crate::Program`].
///
/// ```
/// use spice_ir::FuncId;
/// assert_eq!(format!("{}", FuncId(0)), "@f0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Returns the raw index of this function.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@f{}", self.0)
    }
}

/// An operand: either a virtual register or a 64-bit immediate.
///
/// ```
/// use spice_ir::{Operand, Reg};
/// assert_eq!(Operand::from(Reg(1)), Operand::Reg(Reg(1)));
/// assert_eq!(Operand::from(7i64), Operand::Imm(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// The value currently held in a virtual register.
    Reg(Reg),
    /// A constant.
    Imm(i64),
}

impl Operand {
    /// Returns the register if this operand reads one.
    #[must_use]
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// Returns the immediate if this operand is a constant.
    #[must_use]
    pub fn as_imm(self) -> Option<i64> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(v) => Some(v),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Binary operations of the IR.
///
/// Comparison operators produce `1` for true and `0` for false, as the
/// conditional branch terminator treats any non-zero value as taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division. Division by zero traps.
    Div,
    /// Signed remainder. Division by zero traps.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (modulo 64).
    Shl,
    /// Arithmetic right shift (modulo 64).
    Shr,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

impl BinOp {
    /// Evaluates the operation on two word values.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::DivideByZero`] for `Div`/`Rem` with a zero divisor.
    pub fn eval(self, lhs: i64, rhs: i64) -> Result<i64, TrapKind> {
        Ok(match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::Mul => lhs.wrapping_mul(rhs),
            BinOp::Div => {
                if rhs == 0 {
                    return Err(TrapKind::DivideByZero);
                }
                lhs.wrapping_div(rhs)
            }
            BinOp::Rem => {
                if rhs == 0 {
                    return Err(TrapKind::DivideByZero);
                }
                lhs.wrapping_rem(rhs)
            }
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Shl => lhs.wrapping_shl(rhs as u32 & 63),
            BinOp::Shr => lhs.wrapping_shr(rhs as u32 & 63),
            BinOp::Eq => i64::from(lhs == rhs),
            BinOp::Ne => i64::from(lhs != rhs),
            BinOp::Lt => i64::from(lhs < rhs),
            BinOp::Le => i64::from(lhs <= rhs),
            BinOp::Gt => i64::from(lhs > rhs),
            BinOp::Ge => i64::from(lhs >= rhs),
            BinOp::Min => lhs.min(rhs),
            BinOp::Max => lhs.max(rhs),
        })
    }

    /// Returns `true` if the operation is commutative and associative, which
    /// is what reduction detection requires of an accumulator update.
    #[must_use]
    pub fn is_reduction_op(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Min | BinOp::Max
        )
    }

    /// Identity element of a reduction operation, if it has one.
    #[must_use]
    pub fn reduction_identity(self) -> Option<i64> {
        match self {
            BinOp::Add | BinOp::Or | BinOp::Xor => Some(0),
            BinOp::Mul => Some(1),
            BinOp::And => Some(-1),
            BinOp::Min => Some(i64::MAX),
            BinOp::Max => Some(i64::MIN),
            _ => None,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::Gt => "gt",
            BinOp::Ge => "ge",
            BinOp::Min => "min",
            BinOp::Max => "max",
        };
        f.write_str(s)
    }
}

/// Reasons execution of a thread can trap.
///
/// Traps are *not* necessarily fatal to a Spice program: a speculative thread
/// that starts from a stale live-in prediction may chase a dangling pointer
/// and fault (the paper's Figure 6 discussion); the runtime squashes it and
/// rolls its state back instead of aborting the whole machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrapKind {
    /// A load or store touched an address outside the memory image.
    OutOfBoundsAccess {
        /// The faulting word address.
        addr: i64,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// A call stack grew beyond the configured limit.
    StackOverflow,
    /// The thread executed more instructions than the configured fuel limit.
    OutOfFuel,
    /// An intrinsic was executed in a context that does not support it.
    UnsupportedIntrinsic,
    /// A call referenced an unknown function.
    UnknownFunction,
    /// `alloc` could not be satisfied.
    OutOfMemory,
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapKind::OutOfBoundsAccess { addr } => {
                write!(f, "out-of-bounds memory access at word address {addr}")
            }
            TrapKind::DivideByZero => f.write_str("integer division by zero"),
            TrapKind::StackOverflow => f.write_str("call stack overflow"),
            TrapKind::OutOfFuel => f.write_str("instruction fuel exhausted"),
            TrapKind::UnsupportedIntrinsic => {
                f.write_str("intrinsic not supported by this execution context")
            }
            TrapKind::UnknownFunction => f.write_str("call to unknown function"),
            TrapKind::OutOfMemory => f.write_str("heap allocation failed"),
        }
    }
}

impl std::error::Error for TrapKind {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Reg(7).to_string(), "r7");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(FuncId(3).to_string(), "@f3");
        assert_eq!(Operand::Reg(Reg(1)).to_string(), "r1");
        assert_eq!(Operand::Imm(-4).to_string(), "-4");
        assert_eq!(BinOp::Add.to_string(), "add");
    }

    #[test]
    fn operand_accessors() {
        assert_eq!(Operand::Reg(Reg(2)).as_reg(), Some(Reg(2)));
        assert_eq!(Operand::Reg(Reg(2)).as_imm(), None);
        assert_eq!(Operand::Imm(5).as_imm(), Some(5));
        assert_eq!(Operand::Imm(5).as_reg(), None);
    }

    #[test]
    fn binop_arithmetic() {
        assert_eq!(BinOp::Add.eval(2, 3).unwrap(), 5);
        assert_eq!(BinOp::Sub.eval(2, 3).unwrap(), -1);
        assert_eq!(BinOp::Mul.eval(4, 3).unwrap(), 12);
        assert_eq!(BinOp::Div.eval(7, 2).unwrap(), 3);
        assert_eq!(BinOp::Rem.eval(7, 2).unwrap(), 1);
        assert_eq!(BinOp::Min.eval(7, 2).unwrap(), 2);
        assert_eq!(BinOp::Max.eval(7, 2).unwrap(), 7);
        assert_eq!(BinOp::Shl.eval(1, 4).unwrap(), 16);
        assert_eq!(BinOp::Shr.eval(-16, 2).unwrap(), -4);
    }

    #[test]
    fn binop_comparisons_produce_flags() {
        assert_eq!(BinOp::Eq.eval(3, 3).unwrap(), 1);
        assert_eq!(BinOp::Ne.eval(3, 3).unwrap(), 0);
        assert_eq!(BinOp::Lt.eval(2, 3).unwrap(), 1);
        assert_eq!(BinOp::Ge.eval(2, 3).unwrap(), 0);
    }

    #[test]
    fn binop_wrapping_does_not_panic() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1).unwrap(), i64::MIN);
        assert_eq!(BinOp::Mul.eval(i64::MAX, 2).unwrap(), -2);
        assert_eq!(BinOp::Div.eval(i64::MIN, -1).unwrap(), i64::MIN);
    }

    #[test]
    fn divide_by_zero_traps() {
        assert_eq!(BinOp::Div.eval(1, 0), Err(TrapKind::DivideByZero));
        assert_eq!(BinOp::Rem.eval(1, 0), Err(TrapKind::DivideByZero));
    }

    #[test]
    fn reduction_ops_and_identities() {
        assert!(BinOp::Add.is_reduction_op());
        assert!(BinOp::Min.is_reduction_op());
        assert!(!BinOp::Sub.is_reduction_op());
        assert_eq!(BinOp::Add.reduction_identity(), Some(0));
        assert_eq!(BinOp::Mul.reduction_identity(), Some(1));
        assert_eq!(BinOp::Min.reduction_identity(), Some(i64::MAX));
        assert_eq!(BinOp::Max.reduction_identity(), Some(i64::MIN));
        assert_eq!(BinOp::Sub.reduction_identity(), None);
    }

    #[test]
    fn trap_display() {
        let t = TrapKind::OutOfBoundsAccess { addr: 42 };
        assert!(t.to_string().contains("42"));
        assert!(!TrapKind::DivideByZero.to_string().is_empty());
    }
}
