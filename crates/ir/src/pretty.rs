//! Human-readable printing of IR entities.
//!
//! The textual form is for debugging and documentation only — there is no
//! parser. Example output:
//!
//! ```text
//! func @find_lightest(r0, r1, r2, r3) {
//! bb0:
//!     br bb1
//! bb1:                                    ; header
//!     r4 = eq r0, 0
//!     condbr r4, bb3, bb2
//! ...
//! }
//! ```

use std::fmt;

use crate::function::{Function, Program};
use crate::inst::{Inst, Terminator};
use crate::types::BlockId;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Binary { op, dst, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            Inst::Copy { dst, src } => write!(f, "{dst} = copy {src}"),
            Inst::Select {
                dst,
                cond,
                if_true,
                if_false,
            } => write!(f, "{dst} = select {cond}, {if_true}, {if_false}"),
            Inst::Load { dst, addr, offset } => write!(f, "{dst} = load [{addr} + {offset}]"),
            Inst::Store { src, addr, offset } => write!(f, "store {src}, [{addr} + {offset}]"),
            Inst::Alloc { dst, words } => write!(f, "{dst} = alloc {words}"),
            Inst::Call { dst, func, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = call {func}(")?;
                } else {
                    write!(f, "call {func}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::Send { chan, value } => write!(f, "send ch{chan}, {value}"),
            Inst::Recv { dst, chan } => write!(f, "{dst} = recv ch{chan}"),
            Inst::SpecBegin => f.write_str("spec.begin"),
            Inst::SpecCommit => f.write_str("spec.commit"),
            Inst::SpecAbort => f.write_str("spec.abort"),
            Inst::SpecCheck { dst, core } => write!(f, "{dst} = spec.check core {core}"),
            Inst::Resteer { core, target } => write!(f, "resteer core {core}, {target}"),
            Inst::Halt => f.write_str("halt"),
            Inst::Nop => f.write_str("nop"),
            Inst::ProfileHook { site, regs } => {
                write!(f, "profile.hook site={site} [")?;
                for (i, r) in regs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Br(t) => write!(f, "br {t}"),
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => write!(f, "condbr {cond}, {then_bb}, {else_bb}"),
            Terminator::Ret { value: Some(v) } => write!(f, "ret {v}"),
            Terminator::Ret { value: None } => f.write_str("ret"),
            Terminator::Unreachable => f.write_str("unreachable"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "func @{}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        writeln!(f, ") {{")?;
        for (id, block) in self.iter_blocks() {
            let marker = if id == self.entry { " ; entry" } else { "" };
            match &block.label {
                Some(l) => writeln!(f, "{id}:{marker}                ; {l}")?,
                None => writeln!(f, "{id}:{marker}")?,
            }
            for inst in &block.insts {
                writeln!(f, "    {inst}")?;
            }
            writeln!(f, "    {}", block.terminator)?;
        }
        writeln!(f, "}}")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.globals {
            writeln!(f, "global @{} : {} words @ {}", g.name, g.words, g.base)?;
        }
        if !self.globals.is_empty() {
            writeln!(f)?;
        }
        for (i, func) in self.funcs.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "; {}\n{func}", BlockId(0).index() + i)?;
        }
        Ok(())
    }
}

/// Renders one block of `func` as an indented diagnostic listing, pointing
/// an arrow at instruction `highlight` when given (the terminator counts as
/// instruction index `insts.len()`). Used by `VerifyError::render` and
/// `LintError::render` to produce compiler-style context.
///
/// ```text
///   --> @find_lightest, bb2 (body)
///    |     r5 = load [r0 + 0]
///    |---> store r6, [r1 + 0]
///    |     br bb1
/// ```
#[must_use]
pub fn block_listing(func: &Function, block: BlockId, highlight: Option<usize>) -> String {
    if block.index() >= func.blocks.len() {
        return format!("  --> @{}, {block} (block does not exist)\n", func.name);
    }
    let b = func.block(block);
    let mut out = match &b.label {
        Some(l) => format!("  --> @{}, {block} ({l})\n", func.name),
        None => format!("  --> @{}, {block}\n", func.name),
    };
    let prefix = |ip: usize| {
        if highlight == Some(ip) {
            "   |---> "
        } else {
            "   |     "
        }
    };
    for (ip, inst) in b.insts.iter().enumerate() {
        out.push_str(prefix(ip));
        out.push_str(&inst.to_string());
        out.push('\n');
    }
    out.push_str(prefix(b.insts.len()));
    out.push_str(&b.terminator.to_string());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{BinOp, Operand, Reg};

    #[test]
    fn instruction_rendering() {
        let i = Inst::Binary {
            op: BinOp::Add,
            dst: Reg(3),
            lhs: Operand::Reg(Reg(1)),
            rhs: Operand::Imm(4),
        };
        assert_eq!(i.to_string(), "r3 = add r1, 4");
        assert_eq!(
            Inst::Load {
                dst: Reg(0),
                addr: Operand::Reg(Reg(1)),
                offset: 2
            }
            .to_string(),
            "r0 = load [r1 + 2]"
        );
        assert_eq!(Inst::SpecCommit.to_string(), "spec.commit");
        assert_eq!(
            Terminator::CondBr {
                cond: Operand::Reg(Reg(9)),
                then_bb: BlockId(1),
                else_bb: BlockId(2)
            }
            .to_string(),
            "condbr r9, bb1, bb2"
        );
    }

    #[test]
    fn function_rendering_contains_blocks_and_labels() {
        let mut b = FunctionBuilder::new("f");
        let x = b.param();
        let exit = b.new_labeled_block("exit");
        b.br(exit);
        b.switch_to(exit);
        b.ret(Some(Operand::Reg(x)));
        let s = b.finish().to_string();
        assert!(s.contains("func @f(r0)"));
        assert!(s.contains("bb1:"));
        assert!(s.contains("; exit"));
        assert!(s.contains("ret r0"));
    }

    #[test]
    fn program_rendering_lists_globals() {
        let mut p = crate::Program::new();
        p.add_global("sva", 8);
        let mut b = FunctionBuilder::new("main");
        b.ret(None);
        p.add_func(b.finish());
        let s = p.to_string();
        assert!(s.contains("global @sva : 8 words"));
        assert!(s.contains("func @main"));
    }
}
