//! Structured event tracing shared by every execution backend.
//!
//! A [`TraceEvent`] is one observable fact about a run — an issue group
//! retiring, a scalar crossing a channel, a speculative chunk beginning,
//! validating, committing or squashing, the predictor planning or absorbing
//! feedback, a memory access missing to main memory, a watched address being
//! touched. Backends *emit* events into a [`TraceSink`]; the concrete
//! [`TraceRecorder`] keeps them in a bounded ring buffer so tracing an
//! arbitrarily long run costs bounded memory.
//!
//! The hard rule, shared with the simulator's `CycleAttribution`: **tracing
//! is observational.** An enabled sink must never change simulated cycles,
//! conflict verdicts, commit order, or any other architectural or
//! micro-architectural outcome — a traced run and an untraced run of the
//! same program are bit-identical in everything but the trace. The
//! simulator and the native chunk runtime both emit the chunk-lifecycle
//! subset (`ChunkBegin`/`ChunkValidate`/`ChunkCommit`/`ChunkSquash`) with
//! the same meaning, so their traces are directly comparable when
//! diagnosing a sim↔native divergence.
//!
//! Events are deterministic: the simulator is single-threaded, and the
//! native backend only emits from its ordered main-thread validation loop —
//! so two runs of the same prepared program produce byte-identical traces
//! regardless of host scheduling.

use std::collections::VecDeque;

use crate::exec::MisspeculationCause;
use crate::{BlockId, FuncId};

/// Forensic detail attached to a dependence-violation squash: the RAW chain
/// reconstructed at squash time, while the reader's read set and the
/// epoch's write origins are still alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SquashForensics {
    /// The violating address reported by the conflict check — the grain's
    /// base word address at the configured detection granularity.
    pub addr: i64,
    /// The smallest *word-granular* address the reader actually shares with
    /// the epoch's writes, when one exists. `None` means the conflict is a
    /// false conflict: two distinct words aliasing through a coarsened
    /// detection grain.
    pub word_addr: Option<i64>,
    /// Core that performed the conflicting write, if its origin was tracked.
    pub writer_core: Option<u32>,
    /// Chunk id of the writer at the time of the write (`None` for the
    /// non-speculative main chunk).
    pub writer_chunk: Option<u64>,
    /// Program location of the conflicting store.
    pub writer_site: Option<(FuncId, BlockId)>,
    /// Cycle (or native sequence point) of the conflicting store.
    pub writer_at: Option<u64>,
    /// Program location of the violating load on the squashed chunk.
    pub reader_site: Option<(FuncId, BlockId)>,
    /// Grains the reader's set shares with the epoch writes at the
    /// configured granularity *minus* the true word-level overlaps — the
    /// per-chunk count of false conflicts the coarsening invented.
    pub false_conflicts: u64,
    /// Detection granularity the run used (`0` = exact words).
    pub granularity_log2: u8,
}

/// One observable fact about a run. The `at` field carries simulated cycles
/// on the simulator and a monotone per-invocation sequence number on the
/// native backend (which has no cycle clock).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A new loop invocation started (emitted by the runner; `at` restarts
    /// from zero within each invocation on the simulator).
    InvocationBegin {
        /// Zero-based invocation index.
        index: u64,
    },
    /// One issue group retired on a core.
    Retire {
        /// Simulated cycle (or native sequence number).
        at: u64,
        /// Core that retired the group.
        core: u32,
        /// Function of the instruction that ended the group.
        func: FuncId,
        /// Block of the instruction that ended the group.
        block: BlockId,
        /// Instructions retired in the group.
        retired: u32,
    },
    /// A scalar was sent on an inter-core channel.
    ChannelSend {
        /// Simulated cycle (or native sequence number).
        at: u64,
        /// Sending core.
        core: u32,
        /// Channel id.
        chan: i64,
        /// Value sent.
        value: i64,
    },
    /// A scalar was received from an inter-core channel.
    ChannelRecv {
        /// Simulated cycle (or native sequence number).
        at: u64,
        /// Receiving core.
        core: u32,
        /// Channel id.
        chan: i64,
        /// Value received.
        value: i64,
    },
    /// A speculative chunk began (`spec.begin` retired / native worker
    /// chunk spawned).
    ChunkBegin {
        /// Simulated cycle (or native sequence number).
        at: u64,
        /// Core the chunk runs on.
        core: u32,
        /// Monotone chunk id, unique within the traced run.
        chunk: u64,
    },
    /// A chunk's read set was checked against the epoch's committed writes.
    ChunkValidate {
        /// Simulated cycle (or native sequence number).
        at: u64,
        /// Core whose read set was checked.
        core: u32,
        /// The checked chunk, if one is active on that core.
        chunk: Option<u64>,
        /// The violating address the check found, if any.
        conflict: Option<i64>,
    },
    /// A speculative chunk committed its buffered writes.
    ChunkCommit {
        /// Simulated cycle (or native sequence number).
        at: u64,
        /// Core the chunk ran on.
        core: u32,
        /// The committing chunk, if tracked.
        chunk: Option<u64>,
        /// Number of distinct words the commit drained to shared memory.
        writes: u64,
    },
    /// A speculative chunk was squashed.
    ChunkSquash {
        /// Simulated cycle (or native sequence number).
        at: u64,
        /// Core the chunk ran on.
        core: u32,
        /// The squashed chunk, if tracked.
        chunk: Option<u64>,
        /// Why it was squashed, as known at squash time.
        cause: MisspeculationCause,
        /// RAW-chain forensics for dependence violations.
        forensics: Option<SquashForensics>,
    },
    /// The value predictor produced a plan for an invocation.
    PredictorPlan {
        /// Simulated cycle (or native sequence number).
        at: u64,
        /// Chunks the plan tasked.
        chunks: u64,
    },
    /// The predictor absorbed an invocation's feedback.
    PredictorFeedback {
        /// Simulated cycle (or native sequence number).
        at: u64,
        /// Chunks that committed.
        committed: u64,
        /// Chunks that were squashed.
        squashed: u64,
    },
    /// A load or store missed every cache level and went to main memory.
    CacheMiss {
        /// Simulated cycle.
        at: u64,
        /// Core that issued the access.
        core: u32,
        /// Word address accessed.
        addr: i64,
        /// Whether the access was a store.
        is_store: bool,
    },
    /// A watched address was loaded or stored.
    Watch {
        /// Simulated cycle.
        at: u64,
        /// Core that touched the address.
        core: u32,
        /// Program location of the access.
        func: FuncId,
        /// Block of the access.
        block: BlockId,
        /// The watched address.
        addr: i64,
        /// Value at the address after the access (the store's value, or the
        /// loaded word).
        value: i64,
        /// Whether the access was a store.
        is_store: bool,
    },
}

impl TraceEvent {
    /// Short kind tag, used by serializers and filters.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::InvocationBegin { .. } => "invocation",
            TraceEvent::Retire { .. } => "retire",
            TraceEvent::ChannelSend { .. } => "send",
            TraceEvent::ChannelRecv { .. } => "recv",
            TraceEvent::ChunkBegin { .. } => "chunk_begin",
            TraceEvent::ChunkValidate { .. } => "chunk_validate",
            TraceEvent::ChunkCommit { .. } => "chunk_commit",
            TraceEvent::ChunkSquash { .. } => "chunk_squash",
            TraceEvent::PredictorPlan { .. } => "predictor_plan",
            TraceEvent::PredictorFeedback { .. } => "predictor_feedback",
            TraceEvent::CacheMiss { .. } => "cache_miss",
            TraceEvent::Watch { .. } => "watch",
        }
    }

    /// The event's time coordinate (simulated cycle, or the native sequence
    /// number); invocation markers report 0.
    #[must_use]
    pub fn at(&self) -> u64 {
        match *self {
            TraceEvent::InvocationBegin { .. } => 0,
            TraceEvent::Retire { at, .. }
            | TraceEvent::ChannelSend { at, .. }
            | TraceEvent::ChannelRecv { at, .. }
            | TraceEvent::ChunkBegin { at, .. }
            | TraceEvent::ChunkValidate { at, .. }
            | TraceEvent::ChunkCommit { at, .. }
            | TraceEvent::ChunkSquash { at, .. }
            | TraceEvent::PredictorPlan { at, .. }
            | TraceEvent::PredictorFeedback { at, .. }
            | TraceEvent::CacheMiss { at, .. }
            | TraceEvent::Watch { at, .. } => at,
        }
    }
}

/// A consumer of trace events. Implementations must be purely
/// observational: emitting into a sink may never change the emitting
/// backend's behaviour.
pub trait TraceSink {
    /// Consumes one event.
    fn emit(&mut self, event: TraceEvent);
}

/// Default ring capacity of a [`TraceRecorder`].
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// The standard [`TraceSink`]: a bounded ring buffer of events plus
/// lifetime counters that survive eviction. Cloneable so a machine
/// snapshot can carry the recorder's exact state and a resumed run
/// continues the identical trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    /// Events evicted from the ring to stay within capacity.
    dropped: u64,
    /// Events emitted over the recorder's lifetime (kept + dropped).
    total: u64,
    /// Lifetime `ChunkSquash` count (eviction-proof).
    squashes: u64,
    /// Addresses whose accesses the emitting backend should surface as
    /// [`TraceEvent::Watch`] events.
    watches: Vec<i64>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceRecorder {
    /// Creates a recorder keeping at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceRecorder {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
            total: 0,
            squashes: 0,
            watches: Vec::new(),
        }
    }

    /// Adds an address to the watch list (deduplicated).
    pub fn watch(&mut self, addr: i64) {
        if !self.watches.contains(&addr) {
            self.watches.push(addr);
        }
    }

    /// Whether `addr` is on the watch list.
    #[must_use]
    pub fn is_watched(&self, addr: i64) -> bool {
        self.watches.contains(&addr)
    }

    /// Whether any address is watched (the emitter's fast gate).
    #[must_use]
    pub fn has_watches(&self) -> bool {
        !self.watches.is_empty()
    }

    /// The events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted to stay within capacity.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events emitted over the recorder's lifetime.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Lifetime `ChunkSquash` count, immune to ring eviction.
    #[must_use]
    pub fn squashes(&self) -> u64 {
        self.squashes
    }

    /// The ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Discards held events (lifetime counters keep accumulating).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl TraceSink for TraceRecorder {
    fn emit(&mut self, event: TraceEvent) {
        self.total += 1;
        if matches!(event, TraceEvent::ChunkSquash { .. }) {
            self.squashes += 1;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retire(at: u64) -> TraceEvent {
        TraceEvent::Retire {
            at,
            core: 0,
            func: FuncId(0),
            block: BlockId(0),
            retired: 1,
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_everything() {
        let mut r = TraceRecorder::new(2);
        r.emit(retire(1));
        r.emit(retire(2));
        r.emit(retire(3));
        assert_eq!(r.len(), 2);
        assert_eq!(r.total(), 3);
        assert_eq!(r.dropped(), 1);
        let ats: Vec<u64> = r.events().map(TraceEvent::at).collect();
        assert_eq!(ats, vec![2, 3]);
    }

    #[test]
    fn squash_counter_survives_eviction() {
        let mut r = TraceRecorder::new(1);
        r.emit(TraceEvent::ChunkSquash {
            at: 5,
            core: 1,
            chunk: Some(0),
            cause: MisspeculationCause::StalePrediction,
            forensics: None,
        });
        r.emit(retire(6));
        assert_eq!(r.squashes(), 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.events().next().map(TraceEvent::kind), Some("retire"));
    }

    #[test]
    fn watches_deduplicate() {
        let mut r = TraceRecorder::new(4);
        assert!(!r.has_watches());
        r.watch(100);
        r.watch(100);
        r.watch(200);
        assert!(r.is_watched(100) && r.is_watched(200) && !r.is_watched(300));
        assert_eq!(r.events().count(), 0);
        assert!(r.has_watches());
    }

    #[test]
    fn snapshot_clone_continues_identically() {
        let mut a = TraceRecorder::new(3);
        a.emit(retire(1));
        a.emit(retire(2));
        let mut b = a.clone();
        a.emit(retire(3));
        b.emit(retire(3));
        assert_eq!(a, b);
    }
}
