//! Functions, basic blocks, globals and whole programs.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::inst::{Inst, Terminator};
use crate::types::{BlockId, FuncId, Reg};

/// A basic block: a straight-line sequence of instructions ended by a single
/// terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Optional human-readable label (used only for printing).
    pub label: Option<String>,
    /// Instructions in program order.
    pub insts: Vec<Inst>,
    /// The terminator of the block.
    pub terminator: Terminator,
}

impl Block {
    /// Creates an empty block with an [`Terminator::Unreachable`] placeholder
    /// terminator.
    #[must_use]
    pub fn new() -> Self {
        Block {
            label: None,
            insts: Vec::new(),
            terminator: Terminator::Unreachable,
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::new()
    }
}

/// A function: a CFG of [`Block`]s over virtual registers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// The function's name (unique within a [`Program`]).
    pub name: String,
    /// Parameter registers; callers bind argument values to these.
    pub params: Vec<Reg>,
    /// Basic blocks indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// The next unused virtual register index.
    next_reg: u32,
}

impl Function {
    /// Creates an empty function with a single unreachable entry block.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            params: Vec::new(),
            blocks: vec![Block::new()],
            entry: BlockId(0),
            next_reg: 0,
        }
    }

    /// Allocates a fresh virtual register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Returns the number of virtual registers allocated so far.
    #[must_use]
    pub fn reg_count(&self) -> usize {
        self.next_reg as usize
    }

    /// Declares that registers up to `n` (exclusive) are in use. Used when a
    /// function is assembled by cloning blocks from another function.
    pub fn reserve_regs(&mut self, n: u32) {
        self.next_reg = self.next_reg.max(n);
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block::new());
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Appends a new empty block with a label and returns its id.
    pub fn add_labeled_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = self.add_block();
        self.blocks[id.index()].label = Some(label.into());
        id
    }

    /// Returns a shared reference to a block.
    ///
    /// # Panics
    ///
    /// Panics if the block id is out of range.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Returns an exclusive reference to a block.
    ///
    /// # Panics
    ///
    /// Panics if the block id is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates over `(BlockId, &Block)` pairs in index order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Returns the ids of all blocks.
    #[must_use]
    pub fn block_ids(&self) -> Vec<BlockId> {
        (0..self.blocks.len()).map(|i| BlockId(i as u32)).collect()
    }

    /// Total number of instructions (terminators excluded).
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Copies the blocks `src_blocks` of `src` into `self`, remapping block
    /// ids and registers, and returns the mapping from old to new block ids
    /// together with the register mapping that was applied.
    ///
    /// Registers named in `shared_regs` keep their index (they are expected
    /// to already exist in `self`, e.g. parameters carrying live-ins); every
    /// other register is given a fresh index in `self`. Block targets that
    /// point outside `src_blocks` are left untouched and must be fixed up by
    /// the caller (the Spice transformation redirects loop exits this way).
    pub fn import_blocks(
        &mut self,
        src: &Function,
        src_blocks: &[BlockId],
        shared_regs: &[Reg],
    ) -> (HashMap<BlockId, BlockId>, HashMap<Reg, Reg>) {
        let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
        for &b in src_blocks {
            let nb = self.add_block();
            if let Some(lbl) = &src.block(b).label {
                self.blocks[nb.index()].label = Some(format!("{lbl}.copy"));
            }
            block_map.insert(b, nb);
        }
        let mut reg_map: HashMap<Reg, Reg> = HashMap::new();
        for &r in shared_regs {
            reg_map.insert(r, r);
        }
        // Pre-scan to build a deterministic register mapping.
        for &b in src_blocks {
            let blk = src.block(b);
            let mention = |r: Reg, this: &mut Function, reg_map: &mut HashMap<Reg, Reg>| {
                reg_map.entry(r).or_insert_with(|| this.fresh_reg());
            };
            for inst in &blk.insts {
                for r in inst.uses() {
                    mention(r, self, &mut reg_map);
                }
                if let Some(d) = inst.def() {
                    mention(d, self, &mut reg_map);
                }
            }
            for r in blk.terminator.uses() {
                mention(r, self, &mut reg_map);
            }
        }
        for &b in src_blocks {
            let mut blk = src.block(b).clone();
            for inst in &mut blk.insts {
                inst.remap_regs(|r| reg_map[&r]);
            }
            blk.terminator.remap_regs(|r| reg_map[&r]);
            blk.terminator
                .remap_blocks(|t| block_map.get(&t).copied().unwrap_or(t));
            let nb = block_map[&b];
            self.blocks[nb.index()].insts = blk.insts;
            self.blocks[nb.index()].terminator = blk.terminator;
        }
        (block_map, reg_map)
    }
}

/// A global variable: a named, statically sized region of shared memory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Global {
    /// Name (unique within the program).
    pub name: String,
    /// Base word address assigned at creation time.
    pub base: i64,
    /// Size in words.
    pub words: i64,
    /// Optional initial contents (shorter than `words` means the rest is 0).
    pub init: Vec<i64>,
}

/// Lowest word address handed out to globals. Address 0 is reserved as the
/// null pointer and the first kilobyte is left unused to catch small-offset
/// wild accesses.
pub const GLOBAL_BASE: i64 = 1024;

/// A whole program: functions, globals and channel identifiers shared by all
/// threads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Functions indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// Global variables.
    pub globals: Vec<Global>,
    next_global_base: i64,
    next_channel: i64,
}

impl Program {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> Self {
        Program {
            funcs: Vec::new(),
            globals: Vec::new(),
            next_global_base: GLOBAL_BASE,
            next_channel: 0,
        }
    }

    /// Adds a function and returns its id.
    pub fn add_func(&mut self, func: Function) -> FuncId {
        self.funcs.push(func);
        FuncId((self.funcs.len() - 1) as u32)
    }

    /// Returns a shared reference to a function.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Returns an exclusive reference to a function.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// The ids of every function, in definition order.
    #[must_use]
    pub fn func_ids(&self) -> Vec<FuncId> {
        (0..self.funcs.len()).map(|i| FuncId(i as u32)).collect()
    }

    /// Finds a function by name.
    #[must_use]
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Allocates a zero-initialized global of `words` words and returns its
    /// base address.
    pub fn add_global(&mut self, name: impl Into<String>, words: i64) -> i64 {
        self.add_global_init(name, words, Vec::new())
    }

    /// Allocates a global with initial contents and returns its base address.
    ///
    /// # Panics
    ///
    /// Panics if `init` is longer than `words` or `words` is negative.
    pub fn add_global_init(&mut self, name: impl Into<String>, words: i64, init: Vec<i64>) -> i64 {
        assert!(words >= 0, "global size must be non-negative");
        assert!(
            init.len() as i64 <= words,
            "global initializer longer than the global"
        );
        let base = self.next_global_base;
        self.next_global_base += words;
        self.globals.push(Global {
            name: name.into(),
            base,
            words,
            init,
        });
        base
    }

    /// Looks up a global by name.
    #[must_use]
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// First word address past all globals; the heap used by `alloc` starts
    /// here.
    #[must_use]
    pub fn data_end(&self) -> i64 {
        self.next_global_base
    }

    /// Allocates a fresh inter-thread channel identifier.
    pub fn fresh_channel(&mut self) -> i64 {
        let c = self.next_channel;
        self.next_channel += 1;
        c
    }

    /// Number of channels allocated so far.
    #[must_use]
    pub fn channel_count(&self) -> i64 {
        self.next_channel
    }
}

impl Default for Program {
    fn default() -> Self {
        Program::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BinOp, Operand};

    #[test]
    fn fresh_registers_are_distinct() {
        let mut f = Function::new("f");
        let a = f.fresh_reg();
        let b = f.fresh_reg();
        assert_ne!(a, b);
        assert_eq!(f.reg_count(), 2);
    }

    #[test]
    fn blocks_are_addressable() {
        let mut f = Function::new("f");
        let b1 = f.add_labeled_block("loop");
        assert_eq!(b1, BlockId(1));
        f.block_mut(b1).terminator = Terminator::Br(BlockId(0));
        assert_eq!(f.block(b1).terminator, Terminator::Br(BlockId(0)));
        assert_eq!(f.block_ids().len(), 2);
    }

    #[test]
    fn globals_get_disjoint_addresses() {
        let mut p = Program::new();
        let a = p.add_global("a", 10);
        let b = p.add_global_init("b", 4, vec![1, 2]);
        assert_eq!(a, GLOBAL_BASE);
        assert_eq!(b, GLOBAL_BASE + 10);
        assert_eq!(p.data_end(), GLOBAL_BASE + 14);
        assert_eq!(p.global("b").unwrap().init, vec![1, 2]);
        assert!(p.global("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "longer than the global")]
    fn oversized_initializer_panics() {
        let mut p = Program::new();
        p.add_global_init("bad", 1, vec![1, 2, 3]);
    }

    #[test]
    fn channels_are_fresh() {
        let mut p = Program::new();
        assert_eq!(p.fresh_channel(), 0);
        assert_eq!(p.fresh_channel(), 1);
        assert_eq!(p.channel_count(), 2);
    }

    #[test]
    fn func_lookup_by_name() {
        let mut p = Program::new();
        let f = p.add_func(Function::new("main"));
        assert_eq!(p.func_by_name("main"), Some(f));
        assert_eq!(p.func_by_name("other"), None);
        assert_eq!(p.func(f).name, "main");
    }

    #[test]
    fn import_blocks_remaps_registers_and_targets() {
        // Source: bb0: r0 = r0 + 1; br bb1   bb1: ret r0
        let mut src = Function::new("src");
        let r0 = src.fresh_reg();
        let bb1 = src.add_block();
        src.block_mut(BlockId(0)).insts.push(Inst::Binary {
            op: BinOp::Add,
            dst: r0,
            lhs: Operand::Reg(r0),
            rhs: Operand::Imm(1),
        });
        src.block_mut(BlockId(0)).terminator = Terminator::Br(bb1);
        src.block_mut(bb1).terminator = Terminator::Ret {
            value: Some(Operand::Reg(r0)),
        };

        let mut dst = Function::new("dst");
        let shared = dst.fresh_reg(); // r0 in dst, shared with src's r0
        let (bmap, rmap) = dst.import_blocks(&src, &[BlockId(0), bb1], &[r0]);
        assert_eq!(rmap[&r0], shared);
        let nb0 = bmap[&BlockId(0)];
        let nb1 = bmap[&bb1];
        assert_eq!(dst.block(nb0).terminator, Terminator::Br(nb1));
        assert_eq!(
            dst.block(nb0).insts[0],
            Inst::Binary {
                op: BinOp::Add,
                dst: shared,
                lhs: Operand::Reg(shared),
                rhs: Operand::Imm(1),
            }
        );
    }

    #[test]
    fn import_blocks_gives_fresh_registers_to_private_values() {
        let mut src = Function::new("src");
        let a = src.fresh_reg();
        let b = src.fresh_reg();
        src.block_mut(BlockId(0)).insts.push(Inst::Copy {
            dst: b,
            src: Operand::Reg(a),
        });
        src.block_mut(BlockId(0)).terminator = Terminator::Ret { value: None };

        let mut dst = Function::new("dst");
        // Pre-allocate a couple of registers so clashes would be visible.
        dst.fresh_reg();
        dst.fresh_reg();
        let (_, rmap) = dst.import_blocks(&src, &[BlockId(0)], &[]);
        assert_ne!(rmap[&a], rmap[&b]);
        assert!(rmap[&a].0 >= 2 && rmap[&b].0 >= 2);
    }
}
