//! Per-core speculative store buffer with read/write-set tracking.
//!
//! This models the hardware support the paper assumes in §3 ("Speculative
//! State"): while a core executes speculatively, its stores are buffered and
//! can either be committed to shared memory (speculation succeeded) or
//! discarded (squash). Loads by the speculative core see its own buffered
//! stores; other cores do not. Read and write sets are tracked so that a
//! conflict check between two threads' speculative accesses is available
//! ("Conflict Detection" in §3).
//!
//! The buffer is on the simulator's per-access hot path, so its containers
//! are the reusable dense structures from `spice_ir::exec`: the write buffer
//! is an insertion-ordered open-addressed [`DenseMap`] (its entry order *is*
//! the first-write commit order), the read set a page-bitmap [`AccessSet`].
//! Commit and abort clear them without releasing storage, so one buffer
//! serves every chunk a core runs.

use spice_ir::exec::{AccessSet, DenseMap};

/// A speculative store buffer.
#[derive(Debug, Clone)]
pub struct SpecBuffer {
    active: bool,
    writes: DenseMap<i64>,
    read_set: AccessSet,
    /// Whether [`SpecBuffer::load`] records missed loads into the read set.
    /// On by default; the machine turns it off for its per-core buffers
    /// because its `ConflictTracker` mirrors the same read stream (recording
    /// twice would only burn host time, and the buffer-local set feeds
    /// nothing there).
    track_reads: bool,
    stores_buffered: u64,
}

impl Default for SpecBuffer {
    fn default() -> Self {
        SpecBuffer {
            active: false,
            writes: DenseMap::new(),
            read_set: AccessSet::new(),
            track_reads: true,
            stores_buffered: 0,
        }
    }
}

impl SpecBuffer {
    /// Creates an inactive, empty buffer.
    #[must_use]
    pub fn new() -> Self {
        SpecBuffer::default()
    }

    /// Whether the core is currently executing speculatively.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Enters speculative execution. Re-entering while already active keeps
    /// the current buffered state (nested begins are flattened).
    pub fn begin(&mut self) {
        self.active = true;
    }

    /// Records a speculative store.
    ///
    /// Returns `true` if the store was buffered (speculation active) and
    /// `false` if the caller must perform it directly against shared memory.
    pub fn store(&mut self, addr: i64, value: i64) -> bool {
        if !self.active {
            return false;
        }
        self.writes.insert(addr, value);
        self.stores_buffered += 1;
        true
    }

    /// Observes a speculative load: returns the buffered value if this core
    /// wrote `addr` speculatively. Loads that miss the store buffer are
    /// recorded in the read set; store-forwarded loads are **not** — they
    /// return this core's own (logically newer) value and can never observe
    /// a stale word, so including them would only create false conflicts
    /// with logically earlier writers of the same address. The machine's
    /// `ConflictTracker` mirrors this exact rule for its cross-core
    /// `spec.check` queries; change them together.
    pub fn load(&mut self, addr: i64) -> Option<i64> {
        if !self.active {
            return None;
        }
        if let Some(v) = self.writes.get(addr) {
            return Some(v);
        }
        if self.track_reads {
            self.read_set.insert(addr);
        }
        None
    }

    /// Enables or disables read-set recording (see the field documentation;
    /// the flag survives commits, aborts and resets).
    pub fn set_read_tracking(&mut self, on: bool) {
        self.track_reads = on;
    }

    /// Leaves speculative execution, returning the buffered writes in first
    /// write order so the caller can apply them to shared memory.
    pub fn take_commit(&mut self) -> Vec<(i64, i64)> {
        let out: Vec<(i64, i64)> = self.writes.entries().to_vec();
        self.clear();
        out
    }

    /// Leaves speculative execution, discarding all buffered state.
    pub fn abort(&mut self) {
        self.clear();
    }

    /// Fully resets the buffer for a fresh loop invocation — like
    /// [`SpecBuffer::abort`], but also zeroing the lifetime statistics —
    /// while keeping the allocated storage for reuse.
    pub fn reset(&mut self) {
        self.clear();
        self.stores_buffered = 0;
    }

    fn clear(&mut self) {
        self.active = false;
        self.writes.clear();
        self.read_set.clear();
    }

    /// Addresses written speculatively, in first-write order.
    #[must_use]
    pub fn write_set(&self) -> Vec<i64> {
        self.writes.entries().iter().map(|&(a, _)| a).collect()
    }

    /// Addresses read while speculative (loads not satisfied by this
    /// buffer's own stores).
    #[must_use]
    pub fn read_set(&self) -> &AccessSet {
        &self.read_set
    }

    /// Number of stores buffered over the lifetime of the buffer (not reset
    /// by commit/abort; used for statistics).
    #[must_use]
    pub fn stores_buffered(&self) -> u64 {
        self.stores_buffered
    }

    /// Returns `true` if this buffer's speculative reads conflict with the
    /// other buffer's speculative writes — the RAW check a TLS memory system
    /// performs between a logically-later and a logically-earlier thread.
    #[must_use]
    pub fn conflicts_with(&self, earlier: &SpecBuffer) -> bool {
        earlier
            .writes
            .entries()
            .iter()
            .any(|&(addr, _)| self.read_set.contains(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_buffer_passes_stores_through() {
        let mut b = SpecBuffer::new();
        assert!(!b.store(10, 1));
        assert_eq!(b.load(10), None);
    }

    #[test]
    fn active_buffer_captures_stores_and_forwards_to_loads() {
        let mut b = SpecBuffer::new();
        b.begin();
        assert!(b.is_active());
        assert!(b.store(10, 1));
        assert!(b.store(11, 2));
        assert_eq!(b.load(10), Some(1));
        assert_eq!(b.load(99), None); // not written here -> caller reads memory
        assert!(
            !b.read_set().contains(10),
            "store-forwarded loads never observe stale data"
        );
        assert!(b.read_set().contains(99));
    }

    #[test]
    fn read_before_own_write_stays_in_read_set() {
        // Word granularity and ordering: a load that *preceded* this core's
        // own store to the same word went to shared memory and may have been
        // stale — it must stay visible to the conflict check even after the
        // word joins the write set.
        let mut b = SpecBuffer::new();
        b.begin();
        assert_eq!(b.load(40), None);
        assert!(b.store(40, 5));
        assert_eq!(b.load(40), Some(5));
        assert!(b.read_set().contains(40));

        let mut earlier = SpecBuffer::new();
        earlier.begin();
        earlier.store(40, 9);
        assert!(b.conflicts_with(&earlier));
        // The adjacent word does not alias.
        let mut neighbor = SpecBuffer::new();
        neighbor.begin();
        neighbor.store(41, 9);
        assert!(!b.conflicts_with(&neighbor));
    }

    #[test]
    fn commit_returns_writes_in_first_write_order() {
        let mut b = SpecBuffer::new();
        b.begin();
        b.store(20, 1);
        b.store(10, 2);
        b.store(20, 3); // overwrite keeps original position
        let commit = b.take_commit();
        assert_eq!(commit, vec![(20, 3), (10, 2)]);
        assert!(!b.is_active());
        assert!(b.write_set().is_empty());
    }

    #[test]
    fn abort_discards_everything() {
        let mut b = SpecBuffer::new();
        b.begin();
        b.store(10, 1);
        b.load(11);
        b.abort();
        assert!(!b.is_active());
        assert!(b.write_set().is_empty());
        assert!(b.read_set().is_empty());
        // Statistics survive for reporting.
        assert_eq!(b.stores_buffered(), 1);
        // A full invocation reset zeroes them too, reusing the buffers.
        b.reset();
        assert_eq!(b.stores_buffered(), 0);
    }

    #[test]
    fn conflict_detection_is_raw_only() {
        let mut earlier = SpecBuffer::new();
        earlier.begin();
        earlier.store(100, 5);

        let mut later = SpecBuffer::new();
        later.begin();
        later.load(100);
        assert!(later.conflicts_with(&earlier));

        let mut independent = SpecBuffer::new();
        independent.begin();
        independent.load(200);
        assert!(!independent.conflicts_with(&earlier));
        // Writes alone (WAW) are not flagged by this check.
        let mut writer = SpecBuffer::new();
        writer.begin();
        writer.store(100, 9);
        assert!(!writer.conflicts_with(&earlier));
    }

    #[test]
    fn commit_clears_read_and_write_sets_for_the_next_chunk() {
        let mut b = SpecBuffer::new();
        b.begin();
        b.store(7, 1);
        b.load(8);
        let _ = b.take_commit();
        assert!(b.write_set().is_empty());
        assert!(b.read_set().is_empty(), "commit ends the chunk's epoch");

        let mut writer = SpecBuffer::new();
        writer.begin();
        writer.store(8, 3);
        assert!(
            !b.conflicts_with(&writer),
            "a committed chunk's old reads must not poison the next check"
        );
    }

    #[test]
    fn overlapping_read_and_write_sets_intersect_per_word() {
        let mut earlier = SpecBuffer::new();
        earlier.begin();
        for a in [64, 65, 66] {
            earlier.store(a, a);
        }
        let mut later = SpecBuffer::new();
        later.begin();
        later.load(63); // same page, different word: no conflict
        assert!(!later.conflicts_with(&earlier));
        later.load(66); // exact word overlap
        assert!(later.conflicts_with(&earlier));
        later.abort();
        assert!(!later.conflicts_with(&earlier), "abort clears the read set");
    }

    #[test]
    fn nested_begin_is_flattened() {
        let mut b = SpecBuffer::new();
        b.begin();
        b.store(1, 1);
        b.begin();
        assert_eq!(b.load(1), Some(1));
    }
}
