//! The event-driven multi-core machine.
//!
//! One [`spice_ir::interp::ThreadState`] runs per core over the pre-decoded
//! program form ([`spice_ir::DecodedProgram`]). At every *active* cycle,
//! each core that is not stalled retires at most one issue group; loads and
//! stores walk the [`crate::cache::MemoryHierarchy`] and stall the core for
//! the resulting latency, scalar sends become visible to the receiving core
//! after the configured inter-core latency, and speculative stores land in
//! the per-core [`crate::specbuf::SpecBuffer`] until the thread commits or
//! is squashed. This is the substrate on which both the Spice-transformed
//! code and the baseline TLS schemes are timed (paper §5).
//!
//! **Simulated time advances by events, not by ticks.** Each core advertises
//! when it can next do something — its `busy_until` horizon, or, when
//! blocked on a receive, the arrival time of the next message on the channel
//! it is waiting for — and [`Machine::run`] jumps the clock straight to the
//! minimum of those times, crediting the skipped interval's stall and idle
//! cycles arithmetically. A skipped cycle is, by construction, one in which
//! the cycle-stepped machine would only have incremented those same
//! counters, so the event-driven run retires the identical instruction
//! sequence at the identical cycles and produces **bit-identical**
//! [`RunSummary`]s — it only spends less host time doing so. When exactly
//! one core is runnable (every sequential baseline; the serial phases of a
//! Spice invocation) the scheduler drops into a scan-free single-core loop
//! with the same guarantee. See `DESIGN.md`, "harness performance
//! architecture", for the invariant and its boundary conditions.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use spice_ir::exec::AccessSet;
use spice_ir::interp::{
    ChannelTable, FlatMemory, MemPort, StepEvent, SysPort, ThreadState, ThreadStatus,
};
use spice_ir::{
    BlockId, DecodedProgram, FuncId, InstClass, MisspeculationCause, Program, SquashForensics,
    TraceEvent, TraceRecorder, TraceSink, TrapKind,
};

use crate::cache::{HitLevel, MemAccessStats, MemoryHierarchy};
use crate::config::MachineConfig;
use crate::specbuf::SpecBuffer;

/// A message travelling between cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Message {
    ready_at: u64,
    value: i64,
}

/// The set of inter-core scalar channels, kept in a dense table indexed by
/// the small integer channel ids the transformation allocates (no hashing on
/// the send/receive path).
#[derive(Debug, Clone, Default)]
pub struct ChannelNet {
    queues: ChannelTable<Message>,
    /// Running message count, so [`ChannelNet::pending`] — consulted every
    /// scheduling round — is O(1) instead of a walk over every queue.
    in_flight: usize,
}

impl ChannelNet {
    /// Enqueues `value` on `chan`, visible to receivers at `ready_at`.
    pub fn send(&mut self, chan: i64, value: i64, ready_at: u64) {
        self.queues
            .queue_mut(chan)
            .push_back(Message { ready_at, value });
        self.in_flight += 1;
    }

    /// Dequeues the oldest message on `chan` if it has arrived by `now`.
    pub fn try_recv(&mut self, chan: i64, now: u64) -> Option<i64> {
        let q = self.queues.existing_mut(chan)?;
        match q.front() {
            Some(m) if m.ready_at <= now => {
                self.in_flight -= 1;
                Some(q.pop_front().expect("front exists").value)
            }
            _ => None,
        }
    }

    /// Arrival time of the oldest message queued on `chan`, if any — the
    /// wake-up event for a core blocked receiving on it. (Send times are
    /// monotone, so the queue front is the earliest arrival.)
    #[must_use]
    pub fn earliest_on(&self, chan: i64) -> Option<u64> {
        self.queues.queue(chan)?.front().map(|m| m.ready_at)
    }

    /// Total messages currently queued (arrived or still in flight).
    #[must_use]
    pub fn pending(&self) -> usize {
        debug_assert_eq!(
            self.in_flight,
            self.queues.queues().map(VecDeque::len).sum::<usize>()
        );
        self.in_flight
    }

    /// Empties every queue while keeping their allocations for the next
    /// invocation.
    pub fn clear(&mut self) {
        self.queues.clear_queues();
        self.in_flight = 0;
    }
}

/// The memory system's cross-chunk conflict detection (paper §3, "Conflict
/// Detection"): per-core speculative read sets mirrored at word granularity
/// into [`AccessSet`]s, plus the union of every write committed during the
/// current loop invocation ("epoch") — the main thread's direct stores and
/// the buffers of committed speculative chunks. A `spec.check` instruction
/// asks whether a core's read set intersects the epoch's committed writes;
/// a positive verdict is sticky for the epoch so it can be attributed in the
/// per-core report. Interior mutability because the query runs inside
/// another core's instruction step (the machine is single-threaded; every
/// borrow is short-lived).
///
/// The tracker mirrors the read stream instead of consuming
/// [`SpecBuffer::read_set`] because a `spec.check` executed by core 0 needs
/// core *k*'s read set while core 0's own `SpecBuffer` is mutably borrowed
/// by its memory port — the per-core buffers are unreachable from there.
/// Both recorders share one semantics (store-forwarded loads are excluded);
/// see [`SpecBuffer::load`] for the rule and keep the two in sync. (The
/// machine turns the buffer-local recording *off* — this tracker is the one
/// copy it consults.)
/// Origin of the most recent architectural write to one word this epoch —
/// forensic metadata only, consulted when a squash needs explaining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WriteOrigin {
    core: u32,
    /// Chunk id the writer was inside when the word became architectural
    /// (`None` for the non-speculative main chunk).
    chunk: Option<u64>,
    func: FuncId,
    block: BlockId,
    at: u64,
}

/// Optional per-address attribution kept alongside the conflict sets while
/// tracing is on: which site last wrote each word this epoch, where each
/// core's speculative reads came from, and *word-granular* shadows of the
/// (possibly coarser-grained) detection sets so a squash can be classified
/// as a true RAW or a false conflict the coarsening invented. Forensics are
/// an observer — they never feed back into verdicts.
#[derive(Debug, Clone)]
struct Forensics {
    /// Monotone chunk-id allocator (never reset, so ids are unique within a
    /// traced machine's lifetime).
    next_chunk: u64,
    /// Chunk id currently active per core, if any.
    cur_chunk: Vec<Option<u64>>,
    /// Last architectural writer per word address this epoch.
    writers: HashMap<i64, WriteOrigin>,
    /// Per core: site and cycle of the first speculative read of each word.
    read_sites: Vec<HashMap<i64, (FuncId, BlockId, u64)>>,
    /// Word-granular shadow of `epoch_writes`.
    epoch_writes_words: AccessSet,
    /// Word-granular shadows of `read_sets`.
    read_sets_words: Vec<AccessSet>,
}

impl Forensics {
    fn new(cores: usize) -> Self {
        Forensics {
            next_chunk: 0,
            cur_chunk: vec![None; cores],
            writers: HashMap::new(),
            read_sites: vec![HashMap::new(); cores],
            epoch_writes_words: AccessSet::new(),
            read_sets_words: vec![AccessSet::new(); cores],
        }
    }
}

#[derive(Debug, Clone)]
struct ConflictTracker {
    enabled: bool,
    granularity_log2: u8,
    /// Half-open address range `[lo, hi)` excluded from tracking: the value
    /// predictor's shared arrays (`sva`/`svat`/`svai`/`work`/…). They are
    /// runtime metadata whose accesses are ordered by the `new_invocation`
    /// token protocol, not program data — the centralized step rewrites them
    /// on core 0 at the start of every invocation, and without the exemption
    /// each worker's in-loop threshold loads would read as RAW violations.
    exempt: Option<(i64, i64)>,
    /// Number of cores currently inside a speculative chunk (between
    /// `spec.begin` and its commit/abort). While this is zero, architectural
    /// writes are *not* recorded into the epoch's committed-write set: a
    /// write that precedes every active (and therefore every future)
    /// speculative read of the epoch cannot be the earlier half of a RAW
    /// violation — the reader observes the post-write value. This is what
    /// lets a miniature application's serial phases (e.g. `mcf_app`'s arc
    /// scan and tree relink, which store to the very links the speculative
    /// walk later traverses) run before the workers are released without
    /// poisoning every chunk.
    active_chunks: Cell<usize>,
    epoch_writes: RefCell<AccessSet>,
    read_sets: RefCell<Vec<AccessSet>>,
    /// First conflicting word address found per core this epoch, if any.
    verdicts: RefCell<Vec<Option<i64>>>,
    /// Squash-forensics attribution, present only while tracing is on.
    forensics: RefCell<Option<Box<Forensics>>>,
}

impl ConflictTracker {
    fn new(cores: usize, enabled: bool, granularity_log2: u8) -> Self {
        ConflictTracker {
            enabled,
            granularity_log2,
            exempt: None,
            active_chunks: Cell::new(0),
            epoch_writes: RefCell::new(AccessSet::with_granularity(granularity_log2)),
            read_sets: RefCell::new(vec![AccessSet::with_granularity(granularity_log2); cores]),
            verdicts: RefCell::new(vec![None; cores]),
            forensics: RefCell::new(None),
        }
    }

    /// Turns on squash forensics (idempotent; chunk ids keep counting).
    fn enable_forensics(&self) {
        let mut guard = self.forensics.borrow_mut();
        if guard.is_none() {
            let cores = self.read_sets.borrow().len();
            *guard = Some(Box::new(Forensics::new(cores)));
        }
    }

    fn is_exempt(&self, addr: i64) -> bool {
        self.exempt.is_some_and(|(lo, hi)| addr >= lo && addr < hi)
    }

    /// Records a speculative load that missed the core's own store buffer.
    fn record_read(&self, core: usize, addr: i64) {
        if self.enabled && !self.is_exempt(addr) {
            self.read_sets.borrow_mut()[core].insert(addr);
        }
    }

    /// Records a write that became architectural (a non-speculative store or
    /// one address of a committed speculative buffer). Skipped while no core
    /// is speculating — see [`ConflictTracker::active_chunks`]; the skip is
    /// exact, not merely safe.
    fn record_write(&self, addr: i64) {
        if self.enabled && self.active_chunks.get() > 0 && !self.is_exempt(addr) {
            self.epoch_writes.borrow_mut().insert(addr);
        }
    }

    /// Forensic twin of [`ConflictTracker::record_read`], called by the port
    /// on the same gating path when tracing is on: remembers the word-exact
    /// read and its first site.
    fn note_read(&self, core: usize, addr: i64, func: FuncId, block: BlockId, at: u64) {
        if !self.enabled || self.is_exempt(addr) {
            return;
        }
        if let Some(f) = self.forensics.borrow_mut().as_mut() {
            f.read_sets_words[core].insert(addr);
            f.read_sites[core].entry(addr).or_insert((func, block, at));
        }
    }

    /// Forensic twin of [`ConflictTracker::record_write`]: remembers the
    /// word-exact write and its origin (core, active chunk, site, cycle).
    fn note_write(&self, core: usize, addr: i64, func: FuncId, block: BlockId, at: u64) {
        if !self.enabled || self.active_chunks.get() == 0 || self.is_exempt(addr) {
            return;
        }
        if let Some(f) = self.forensics.borrow_mut().as_mut() {
            f.epoch_writes_words.insert(addr);
            let chunk = f.cur_chunk[core];
            f.writers.insert(
                addr,
                WriteOrigin {
                    core: core as u32,
                    chunk,
                    func,
                    block,
                    at,
                },
            );
        }
    }

    /// Starts a core's speculative chunk (`spec.begin` retired). Returns the
    /// forensic chunk id, if forensics are on.
    fn start_chunk(&self, core: usize) -> Option<u64> {
        if self.enabled {
            self.active_chunks.set(self.active_chunks.get() + 1);
        }
        self.forensics.borrow_mut().as_mut().map(|f| {
            let id = f.next_chunk;
            f.next_chunk += 1;
            f.cur_chunk[core] = Some(id);
            id
        })
    }

    /// The forensic chunk id currently active on `core`, if any.
    fn current_chunk(&self, core: usize) -> Option<u64> {
        self.forensics
            .borrow()
            .as_ref()
            .and_then(|f| f.cur_chunk[core])
    }

    /// Reconstructs the RAW chain behind `core`'s pending conflict verdict.
    /// Must run *before* [`ConflictTracker::end_chunk`] consumes the read
    /// set. Returns `None` when forensics are off or no overlap exists.
    fn squash_forensics(&self, core: usize) -> Option<SquashForensics> {
        let guard = self.forensics.borrow();
        let f = guard.as_ref()?;
        let grain_reads = self.read_sets.borrow();
        let grain_writes = self.epoch_writes.borrow();
        let addr = grain_reads.get(core)?.first_overlap(&grain_writes)?;
        let word_addr = f.read_sets_words[core].first_overlap(&f.epoch_writes_words);
        let grain_overlaps = grain_reads[core].overlap_count(&grain_writes) as u64;
        let word_overlaps = f.read_sets_words[core].overlap_count(&f.epoch_writes_words) as u64;
        let span = 1i64 << self.granularity_log2;
        // Word-exact overlap first; for a pure false conflict, fall back to
        // whichever word of the guilty grain each side actually touched.
        let writer = word_addr
            .and_then(|w| f.writers.get(&w))
            .or_else(|| (addr..addr + span).find_map(|w| f.writers.get(&w)));
        let reader = word_addr
            .and_then(|w| f.read_sites[core].get(&w))
            .or_else(|| (addr..addr + span).find_map(|w| f.read_sites[core].get(&w)));
        Some(SquashForensics {
            addr,
            word_addr,
            writer_core: writer.map(|w| w.core),
            writer_chunk: writer.and_then(|w| w.chunk),
            writer_site: writer.map(|w| (w.func, w.block)),
            writer_at: writer.map(|w| w.at),
            reader_site: reader.map(|&(func, block, _)| (func, block)),
            false_conflicts: grain_overlaps.saturating_sub(word_overlaps),
            granularity_log2: self.granularity_log2,
        })
    }

    /// Ends a core's speculative chunk (commit or abort): its read set is
    /// consumed; the verdict, if any, stays for reporting.
    fn end_chunk(&self, core: usize) {
        if self.enabled {
            self.read_sets.borrow_mut()[core].clear();
            self.active_chunks
                .set(self.active_chunks.get().saturating_sub(1));
        }
        if let Some(f) = self.forensics.borrow_mut().as_mut() {
            f.read_sets_words[core].clear();
            f.read_sites[core].clear();
            f.cur_chunk[core] = None;
        }
    }

    /// Answers a `spec.check`: 1 if `core`'s read set intersects the writes
    /// committed so far this epoch.
    fn query(&self, core: i64) -> i64 {
        if !self.enabled {
            return 0;
        }
        let Ok(idx) = usize::try_from(core) else {
            return 0;
        };
        let reads = self.read_sets.borrow();
        let Some(set) = reads.get(idx) else { return 0 };
        match set.first_overlap(&self.epoch_writes.borrow()) {
            Some(addr) => {
                self.verdicts.borrow_mut()[idx].get_or_insert(addr);
                1
            }
            None => 0,
        }
    }

    fn verdict(&self, core: usize) -> Option<i64> {
        self.verdicts.borrow().get(core).copied().flatten()
    }

    /// Starts a new epoch (loop invocation): all sets and verdicts reset.
    /// Forensic chunk ids stay monotone across epochs.
    fn clear_epoch(&self) {
        self.active_chunks.set(0);
        self.epoch_writes.borrow_mut().clear();
        for s in self.read_sets.borrow_mut().iter_mut() {
            s.clear();
        }
        for v in self.verdicts.borrow_mut().iter_mut() {
            *v = None;
        }
        if let Some(f) = self.forensics.borrow_mut().as_mut() {
            f.writers.clear();
            f.epoch_writes_words.clear();
            for s in f.read_sets_words.iter_mut() {
                s.clear();
            }
            for m in f.read_sites.iter_mut() {
                m.clear();
            }
            for c in f.cur_chunk.iter_mut() {
                *c = None;
            }
        }
    }
}

/// Why a core spent a cycle without retiring an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallKind {
    None,
    Memory,
    Recv,
}

/// Per-core statistics of one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct CoreReport {
    /// Instructions retired.
    pub retired: u64,
    /// Cycles spent waiting on the memory hierarchy.
    pub mem_stall_cycles: u64,
    /// Cycles spent waiting on an empty channel.
    pub recv_stall_cycles: u64,
    /// Cycles with no thread or a finished thread.
    pub idle_cycles: u64,
    /// Cycle at which the thread finished or halted (if it did).
    pub finished_at: Option<u64>,
    /// Return value of the thread's outermost function, if it returned one.
    pub return_value: Option<i64>,
    /// Whether the thread ended in a trapped state.
    pub trapped: Option<TrapKind>,
    /// Speculative commits executed.
    pub spec_commits: u64,
    /// Speculative aborts (squashes) executed.
    pub spec_aborts: u64,
    /// Cross-chunk dependence conflicts this core's read set was found
    /// guilty of by a `spec.check` during the last invocation (0 or 1 per
    /// invocation; the check verdict is sticky per epoch).
    pub spec_conflicts: u64,
    /// Smallest conflicting word address behind `spec_conflicts`, if any.
    pub spec_conflict_addr: Option<i64>,
    /// Loads/stores classified by the level that served them.
    pub mem: MemAccessStats,
    /// Retired-instruction counts by class.
    pub retired_by_class: Vec<(String, u64)>,
}

/// Outcome of [`Machine::run`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct RunSummary {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Per-core reports.
    pub cores: Vec<CoreReport>,
}

impl RunSummary {
    /// Total instructions retired across all cores.
    #[must_use]
    pub fn total_retired(&self) -> u64 {
        self.cores.iter().map(|c| c.retired).sum()
    }
}

/// Reasons a simulation can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No core can ever make progress again.
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
    },
    /// The configured cycle budget was exhausted.
    MaxCyclesExceeded {
        /// The budget that was exceeded.
        limit: u64,
    },
    /// Execution ended with at least one thread trapped and never recovered.
    UnrecoveredTrap {
        /// Core whose thread trapped.
        core: usize,
        /// The trap.
        trap: TrapKind,
    },
    /// A thread was spawned on a core that does not exist.
    NoSuchCore {
        /// The requested core index.
        core: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { cycle } => write!(f, "deadlock detected at cycle {cycle}"),
            SimError::MaxCyclesExceeded { limit } => {
                write!(f, "simulation exceeded {limit} cycles")
            }
            SimError::UnrecoveredTrap { core, trap } => {
                write!(
                    f,
                    "thread on core {core} trapped and was never recovered: {trap}"
                )
            }
            SimError::NoSuchCore { core } => write!(f, "no such core: {core}"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpecAction {
    Begin,
    Commit,
    Abort,
}

/// What ended one core's issue group for the current cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreCycleEnd {
    /// Instructions retired; the core is busy until its new horizon.
    Ran,
    /// The core blocked on an empty channel.
    Blocked,
    /// The thread finished or halted.
    Done,
    /// The thread trapped.
    Trapped,
}

/// One memory access observed by the tracing layer (recorded, not replayed:
/// purely an event payload).
#[derive(Debug, Clone, Copy)]
struct MemAccess {
    addr: i64,
    value: i64,
    is_store: bool,
    /// Whether the access missed every cache level.
    missed: bool,
}

struct CoreMemPort<'a> {
    mem: &'a mut FlatMemory,
    hier: &'a mut MemoryHierarchy,
    spec: &'a mut SpecBuffer,
    conflicts: &'a ConflictTracker,
    core: usize,
    latency: u64,
    /// Tracing support, all inert unless `record` is set: the issuing
    /// instruction's site and cycle, and the access the current step made.
    record: bool,
    site: (FuncId, BlockId),
    now: u64,
    accessed: Option<MemAccess>,
}

impl MemPort for CoreMemPort<'_> {
    fn load(&mut self, addr: i64) -> Result<i64, TrapKind> {
        let (lat, level) = self.hier.load(self.core, addr);
        self.latency += lat;
        let value = if let Some(v) = self.spec.load(addr) {
            v
        } else {
            if self.spec.is_active() {
                // A speculative load that missed the store buffer may observe
                // a stale word: it joins the conflict detector's read set.
                self.conflicts.record_read(self.core, addr);
                if self.record {
                    self.conflicts
                        .note_read(self.core, addr, self.site.0, self.site.1, self.now);
                }
            }
            self.mem.read(addr)?
        };
        if self.record {
            self.accessed = Some(MemAccess {
                addr,
                value,
                is_store: false,
                missed: level == HitLevel::Memory,
            });
        }
        Ok(value)
    }

    fn store(&mut self, addr: i64, value: i64) -> Result<(), TrapKind> {
        let (lat, level) = self.hier.store(self.core, addr);
        self.latency += lat;
        if self.record {
            self.accessed = Some(MemAccess {
                addr,
                value,
                is_store: true,
                missed: level == HitLevel::Memory,
            });
        }
        if self.spec.is_active() {
            // Validate the address eagerly so that wild speculative stores
            // trap like real ones would (the squash path recovers them).
            if addr < 0 || addr as usize >= self.mem.size() {
                return Err(TrapKind::OutOfBoundsAccess { addr });
            }
            self.spec.store(addr, value);
            Ok(())
        } else {
            // Non-speculative stores are architectural immediately; they are
            // the epoch's committed-write set as far as later chunks are
            // concerned (the main thread's chunk 0 in a Spice loop).
            self.conflicts.record_write(addr);
            if self.record {
                self.conflicts
                    .note_write(self.core, addr, self.site.0, self.site.1, self.now);
            }
            self.mem.write(addr, value)
        }
    }

    fn alloc(&mut self, words: i64) -> Result<i64, TrapKind> {
        self.mem.alloc(words)
    }
}

struct CoreSysPort<'a> {
    channels: &'a mut ChannelNet,
    resteers: &'a mut Vec<(i64, BlockId)>,
    conflicts: &'a ConflictTracker,
    now: u64,
    comm_latency: u64,
    spec_action: Option<SpecAction>,
    /// The channel of the last `try_recv` that came back empty — recorded so
    /// a blocking receive advertises which arrival would wake it (the
    /// event-driven scheduler's wake-up condition for blocked cores).
    recv_failed_chan: Option<i64>,
    /// Tracing support, inert unless `record` is set: what the current step
    /// sent, received, or conflict-checked.
    record: bool,
    sent: Option<(i64, i64)>,
    received: Option<(i64, i64)>,
    /// `(queried core, verdict)` of a `spec.check` this step.
    checked: Option<(i64, i64)>,
}

impl SysPort for CoreSysPort<'_> {
    fn send(&mut self, chan: i64, value: i64) {
        if self.record {
            self.sent = Some((chan, value));
        }
        self.channels
            .send(chan, value, self.now + self.comm_latency);
    }

    fn try_recv(&mut self, chan: i64) -> Option<i64> {
        let got = self.channels.try_recv(chan, self.now);
        match got {
            None => self.recv_failed_chan = Some(chan),
            Some(v) if self.record => self.received = Some((chan, v)),
            Some(_) => {}
        }
        got
    }

    fn spec_begin(&mut self) {
        self.spec_action = Some(SpecAction::Begin);
    }

    fn spec_commit(&mut self) {
        self.spec_action = Some(SpecAction::Commit);
    }

    fn spec_abort(&mut self) {
        self.spec_action = Some(SpecAction::Abort);
    }

    fn spec_conflict(&mut self, core: i64) -> i64 {
        let verdict = self.conflicts.query(core);
        if self.record {
            self.checked = Some((core, verdict));
        }
        verdict
    }

    fn resteer(&mut self, core: i64, target: BlockId) {
        self.resteers.push((core, target));
    }
}

#[derive(Debug, Clone)]
struct CoreState {
    thread: Option<ThreadState>,
    spec: SpecBuffer,
    busy_until: u64,
    stall: StallKind,
    blocked: bool,
    /// The channel the thread's pending `Recv` found empty, while `blocked`:
    /// the core's wake-up event is the next arrival on this channel.
    waiting_chan: Option<i64>,
    report: CoreReport,
    /// Retired-instruction counts, dense by [`InstClass::index`].
    class_counts: [u64; InstClass::COUNT],
    done: bool,
}

impl CoreState {
    fn new() -> Self {
        CoreState {
            thread: None,
            spec: SpecBuffer::new(),
            busy_until: 0,
            stall: StallKind::None,
            blocked: false,
            waiting_chan: None,
            report: CoreReport::default(),
            class_counts: [0; InstClass::COUNT],
            done: false,
        }
    }
}

/// One core's execution context, split-borrowed out of the [`Machine`]: the
/// thread, its memory/system ports, and the core's bookkeeping fields. Built
/// once per scheduling episode — the lockstep path constructs it per core
/// per cycle, the single-active fast loop holds one across its whole run so
/// the ports are not reconstructed on every cycle.
struct CoreRun<'a> {
    i: usize,
    issue_width: u64,
    config: &'a MachineConfig,
    decoded: &'a DecodedProgram,
    activity: &'a mut Option<ActivityTrace>,
    attribution: &'a mut Option<CycleAttribution>,
    trace: &'a mut Option<TraceRecorder>,
    conflicts: &'a ConflictTracker,
    cycle: &'a mut u64,
    thread: &'a mut ThreadState,
    mem_port: CoreMemPort<'a>,
    sys_port: CoreSysPort<'a>,
    busy_until: &'a mut u64,
    stall: &'a mut StallKind,
    blocked: &'a mut bool,
    waiting_chan: &'a mut Option<i64>,
    report: &'a mut CoreReport,
    class_counts: &'a mut [u64; InstClass::COUNT],
    done: &'a mut bool,
}

impl<'a> CoreRun<'a> {
    fn new(m: &'a mut Machine, i: usize) -> Self {
        let Machine {
            config,
            mem,
            hier,
            cores,
            channels,
            resteer_requests,
            conflicts,
            decoded,
            cycle,
            activity,
            attribution,
            trace,
            ..
        } = m;
        let CoreState {
            thread,
            spec,
            busy_until,
            stall,
            blocked,
            waiting_chan,
            report,
            class_counts,
            done,
        } = &mut cores[i];
        let thread = thread.as_mut().expect("core has a runnable thread");
        let record = trace.is_some();
        CoreRun {
            i,
            issue_width: config.core.issue_width.max(1),
            config,
            decoded,
            activity,
            attribution,
            trace,
            conflicts,
            cycle,
            thread,
            mem_port: CoreMemPort {
                mem,
                hier,
                spec,
                conflicts,
                core: i,
                latency: 0,
                record,
                site: (FuncId(0), BlockId(0)),
                now: 0,
                accessed: None,
            },
            sys_port: CoreSysPort {
                channels,
                resteers: resteer_requests,
                conflicts,
                now: 0,
                comm_latency: config.inter_core_latency,
                spec_action: None,
                recv_failed_chan: None,
                record,
                sent: None,
                received: None,
                checked: None,
            },
            busy_until,
            stall,
            blocked,
            waiting_chan,
            report,
            class_counts,
            done,
        }
    }

    /// One cycle's issue group at `now` (see [`Machine::step_core`]).
    fn issue_group(&mut self, now: u64) -> CoreCycleEnd {
        self.sys_port.now = now;
        let mut issued_this_cycle = 0u64;
        // Source location of the instruction about to retire, captured only
        // when an observer (attribution or tracing) is on: the group's whole
        // busy interval is charged to the location of the instruction that
        // *ends* the group.
        let attributing = self.attribution.is_some();
        let tracing = self.trace.is_some();
        let observing = attributing || tracing;
        let mut src = (FuncId(0), BlockId(0));
        let mut group_retired = 0u32;
        loop {
            self.mem_port.latency = 0;
            self.sys_port.spec_action = None;
            self.sys_port.recv_failed_chan = None;
            if tracing {
                self.mem_port.accessed = None;
                self.sys_port.sent = None;
                self.sys_port.received = None;
                self.sys_port.checked = None;
            }
            if observing {
                src = (self.thread.current_func(), self.thread.current_block());
                self.mem_port.site = src;
                self.mem_port.now = now;
            }
            let result = self
                .thread
                .step(self.decoded, &mut self.mem_port, &mut self.sys_port);

            match result {
                Ok(StepEvent::Executed(info)) => {
                    self.report.retired += 1;
                    group_retired += 1;
                    self.class_counts[info.class().index()] += 1;
                    if let Some(a) = self.activity {
                        a.record(self.i, now);
                    }
                    let co_issuable = matches!(info.class(), InstClass::IntAlu | InstClass::Other)
                        && self.mem_port.latency == 0;
                    if co_issuable {
                        issued_this_cycle += 1;
                        if issued_this_cycle < self.issue_width {
                            // Keep filling this cycle's issue group. (ALU
                            // operations never carry a spec action, so the
                            // horizon/stall writes are deferred to the
                            // instruction that ends the group — they would
                            // only be overwritten.)
                            if tracing {
                                self.emit_port_events(now, src);
                            }
                            continue;
                        }
                        *self.busy_until = now + 1;
                        *self.stall = StallKind::None;
                        *self.blocked = false;
                        *self.waiting_chan = None;
                        if let Some(a) = self.attribution.as_mut() {
                            a.add(src.0, src.1, 1);
                        }
                        if tracing {
                            self.emit_port_events(now, src);
                            self.emit_retire(now, src, group_retired);
                        }
                        return CoreCycleEnd::Ran;
                    }
                    let mem_latency = self.mem_port.latency;
                    let cost = self.config.core.latency_of(info.class()).max(1) + mem_latency;
                    *self.busy_until = now + cost;
                    *self.stall = if mem_latency > 0 {
                        StallKind::Memory
                    } else {
                        StallKind::None
                    };
                    *self.blocked = false;
                    *self.waiting_chan = None;
                    match self.sys_port.spec_action {
                        Some(SpecAction::Begin) => {
                            self.mem_port.spec.begin();
                            let chunk = self.conflicts.start_chunk(self.i);
                            if let (Some(t), Some(chunk)) = (self.trace.as_mut(), chunk) {
                                t.emit(TraceEvent::ChunkBegin {
                                    at: now,
                                    core: self.i as u32,
                                    chunk,
                                });
                            }
                        }
                        Some(SpecAction::Commit) => {
                            let writes = self.mem_port.spec.take_commit();
                            self.report.spec_commits += 1;
                            let chunk = self.conflicts.current_chunk(self.i);
                            let drained = writes.len() as u64;
                            let mut extra = 0;
                            for (addr, value) in writes {
                                // Committed writes drain through the
                                // hierarchy like ordinary stores, and join
                                // the epoch's committed-write set for later
                                // chunks' conflict checks.
                                let (lat, _) = self.mem_port.hier.store(self.i, addr);
                                extra += lat.min(self.config.l2.hit_latency);
                                self.conflicts.record_write(addr);
                                if self.mem_port.record {
                                    self.conflicts.note_write(self.i, addr, src.0, src.1, now);
                                }
                                let _ = self.mem_port.mem.write(addr, value);
                            }
                            self.conflicts.end_chunk(self.i);
                            *self.busy_until += extra;
                            if let Some(t) = self.trace.as_mut() {
                                t.emit(TraceEvent::ChunkCommit {
                                    at: now,
                                    core: self.i as u32,
                                    chunk,
                                    writes: drained,
                                });
                            }
                        }
                        Some(SpecAction::Abort) => {
                            // Forensics must be read out before `end_chunk`
                            // consumes the read set they explain.
                            let chunk = self.conflicts.current_chunk(self.i);
                            let forensics = if tracing {
                                self.conflicts.squash_forensics(self.i)
                            } else {
                                None
                            };
                            self.mem_port.spec.abort();
                            self.report.spec_aborts += 1;
                            self.conflicts.end_chunk(self.i);
                            if let Some(t) = self.trace.as_mut() {
                                let cause = match self.conflicts.verdict(self.i) {
                                    Some(addr) => MisspeculationCause::DependenceViolation { addr },
                                    None => MisspeculationCause::StalePrediction,
                                };
                                t.emit(TraceEvent::ChunkSquash {
                                    at: now,
                                    core: self.i as u32,
                                    chunk,
                                    cause,
                                    forensics,
                                });
                            }
                        }
                        None => {}
                    }
                    if let Some(a) = self.attribution.as_mut() {
                        a.add(src.0, src.1, *self.busy_until - now);
                    }
                    if tracing {
                        self.emit_port_events(now, src);
                        self.emit_retire(now, src, group_retired);
                    }
                    return CoreCycleEnd::Ran;
                }
                Ok(StepEvent::Blocked) => {
                    *self.busy_until = now + 1;
                    *self.stall = StallKind::Recv;
                    *self.blocked = true;
                    *self.waiting_chan = self.sys_port.recv_failed_chan;
                    self.report.recv_stall_cycles += 1;
                    return CoreCycleEnd::Blocked;
                }
                Ok(StepEvent::Halted) | Ok(StepEvent::Finished(_)) => {
                    *self.done = true;
                    *self.blocked = false;
                    self.report.finished_at = Some(now);
                    if let Ok(StepEvent::Finished(v)) = result {
                        self.report.return_value = v;
                    }
                    return CoreCycleEnd::Done;
                }
                Err(_trap) => {
                    // The thread stays trapped until (possibly) resteered
                    // by another thread. It re-checks every cycle so that
                    // an incoming resteer takes effect promptly.
                    *self.busy_until = now + 1;
                    *self.stall = StallKind::None;
                    *self.blocked = false;
                    return CoreCycleEnd::Trapped;
                }
            }
        }
    }

    /// Drains the ports' per-step recordings into trace events. Only called
    /// while tracing; purely observational.
    fn emit_port_events(&mut self, now: u64, src: (FuncId, BlockId)) {
        let core = self.i as u32;
        if let Some((chan, value)) = self.sys_port.sent.take() {
            if let Some(t) = self.trace.as_mut() {
                t.emit(TraceEvent::ChannelSend {
                    at: now,
                    core,
                    chan,
                    value,
                });
            }
        }
        if let Some((chan, value)) = self.sys_port.received.take() {
            if let Some(t) = self.trace.as_mut() {
                t.emit(TraceEvent::ChannelRecv {
                    at: now,
                    core,
                    chan,
                    value,
                });
            }
        }
        if let Some((queried, verdict)) = self.sys_port.checked.take() {
            let idx = usize::try_from(queried).ok();
            let chunk = idx.and_then(|q| self.conflicts.current_chunk(q));
            let conflict = if verdict != 0 {
                idx.and_then(|q| self.conflicts.verdict(q))
            } else {
                None
            };
            if let Some(t) = self.trace.as_mut() {
                t.emit(TraceEvent::ChunkValidate {
                    at: now,
                    core: u32::try_from(queried).unwrap_or(u32::MAX),
                    chunk,
                    conflict,
                });
            }
        }
        if let Some(a) = self.mem_port.accessed.take() {
            let Some(t) = self.trace.as_mut() else { return };
            if a.missed {
                t.emit(TraceEvent::CacheMiss {
                    at: now,
                    core,
                    addr: a.addr,
                    is_store: a.is_store,
                });
            }
            if t.is_watched(a.addr) {
                t.emit(TraceEvent::Watch {
                    at: now,
                    core,
                    func: src.0,
                    block: src.1,
                    addr: a.addr,
                    value: a.value,
                    is_store: a.is_store,
                });
            }
        }
    }

    /// Emits the group-end retire marker. Only called while tracing.
    fn emit_retire(&mut self, now: u64, src: (FuncId, BlockId), retired: u32) {
        let core = self.i as u32;
        if let Some(t) = self.trace.as_mut() {
            t.emit(TraceEvent::Retire {
                at: now,
                core,
                func: src.0,
                block: src.1,
                retired,
            });
        }
    }
}

/// Cycle attribution by source location: every busy interval a retired
/// issue group causes (functional-unit latency, memory stalls, commit
/// drains) is charged to the `(function, block)` of the instruction that
/// ended the group. Summed per function this is whole-program profile data —
/// the measured analogue of Table 2's "fraction of execution time" column —
/// and summed over a loop's blocks it is the loop's measured hotness.
/// Attribution is an *observer*: enabling it never changes simulated time,
/// and it accumulates across invocations until the machine is dropped.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct CycleAttribution {
    /// `cycles[func][block]` — busy cycles charged to that block.
    cycles: Vec<Vec<u64>>,
}

impl CycleAttribution {
    fn add(&mut self, func: FuncId, block: BlockId, dt: u64) {
        if dt == 0 {
            return;
        }
        let f = func.index();
        if self.cycles.len() <= f {
            self.cycles.resize_with(f + 1, Vec::new);
        }
        let row = &mut self.cycles[f];
        let b = block.index();
        if row.len() <= b {
            row.resize(b + 1, 0);
        }
        row[b] += dt;
    }

    /// Cycles attributed to one block of `func`.
    #[must_use]
    pub fn block_cycles(&self, func: FuncId, block: BlockId) -> u64 {
        self.cycles
            .get(func.index())
            .and_then(|row| row.get(block.index()))
            .copied()
            .unwrap_or(0)
    }

    /// Cycles attributed to `func` as a whole.
    #[must_use]
    pub fn func_cycles(&self, func: FuncId) -> u64 {
        self.cycles
            .get(func.index())
            .map(|row| row.iter().sum())
            .unwrap_or(0)
    }

    /// All attributed cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().flatten().sum()
    }
}

/// Records, per core, how many instructions retired in each window of
/// `window` cycles — enough to reconstruct the execution-schedule figures
/// (paper Figures 2, 3 and 5) as a timeline.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct ActivityTrace {
    /// Window size in cycles.
    pub window: u64,
    /// `samples[core][w]` = instructions retired by `core` in window `w`.
    pub samples: Vec<Vec<u64>>,
}

impl ActivityTrace {
    fn new(cores: usize, window: u64) -> Self {
        ActivityTrace {
            window,
            samples: vec![Vec::new(); cores],
        }
    }

    fn record(&mut self, core: usize, cycle: u64) {
        let w = (cycle / self.window) as usize;
        let v = &mut self.samples[core];
        if v.len() <= w {
            v.resize(w + 1, 0);
        }
        v[w] += 1;
    }

    /// Renders one line per core, one character per window: `#` busy,
    /// `.` idle.
    #[must_use]
    pub fn ascii(&self) -> String {
        let width = self.samples.iter().map(Vec::len).max().unwrap_or(0);
        let mut out = String::new();
        for (i, row) in self.samples.iter().enumerate() {
            out.push_str(&format!("core {i}: "));
            for w in 0..width {
                let busy = row.get(w).copied().unwrap_or(0);
                out.push(if busy > 0 { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }
}

/// The multi-core machine.
///
/// The program and its decoded execution form live behind [`Arc`]s: they are
/// immutable once built, so a sweep running the same workload under many
/// configurations decodes once and every machine shares the result
/// ([`Machine::from_shared`]). Per-machine state — memory, caches, cores,
/// conflict sets — stays owned and private.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    program: Arc<Program>,
    /// The pre-decoded execution form of `program`, built once at load.
    decoded: Arc<DecodedProgram>,
    mem: FlatMemory,
    hier: MemoryHierarchy,
    cores: Vec<CoreState>,
    channels: ChannelNet,
    resteer_requests: Vec<(i64, BlockId)>,
    conflicts: ConflictTracker,
    cycle: u64,
    activity: Option<ActivityTrace>,
    attribution: Option<CycleAttribution>,
    trace: Option<TraceRecorder>,
    snapshots: Option<SnapshotRecorder>,
}

/// Periodic checkpointing state: the baseline memory image snapshots are
/// diffed against, the configured interval, and every snapshot taken so far.
#[derive(Debug, Clone)]
struct SnapshotRecorder {
    interval: u64,
    next_at: u64,
    baseline: Arc<FlatMemory>,
    taken: Vec<MachineSnapshot>,
}

/// A complete machine checkpoint: every piece of mutable simulation state —
/// cores (threads, spec buffers, reports), channels, resteer queue, conflict
/// tracker, cache hierarchy, cycle — plus the memory image as a delta
/// against a shared baseline. [`Machine::resume_from`] reconstructs a
/// machine whose continuation is bit-identical to the run the snapshot was
/// taken from: same future [`RunSummary`]s, same memory, same trace tail.
/// (The replay observers `ActivityTrace`/`CycleAttribution` are *not*
/// captured; the [`TraceRecorder`] is, so a resumed trace continues exactly.)
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    config: MachineConfig,
    program: Arc<Program>,
    decoded: Arc<DecodedProgram>,
    cycle: u64,
    cores: Vec<CoreState>,
    channels: ChannelNet,
    resteer_requests: Vec<(i64, BlockId)>,
    conflicts: ConflictTracker,
    hier: MemoryHierarchy,
    trace: Option<TraceRecorder>,
    baseline: Arc<FlatMemory>,
    /// `(word index, value)` for every word differing from the baseline.
    delta: Vec<(usize, i64)>,
    heap_next: i64,
}

impl MachineSnapshot {
    /// Simulated cycle the snapshot was taken at.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of memory words that differ from the baseline image.
    #[must_use]
    pub fn delta_words(&self) -> usize {
        self.delta.len()
    }
}

impl Machine {
    /// Creates a machine loaded with `program`: globals are materialized,
    /// the heap sized from the configuration, and the program decoded once
    /// into its dense execution form.
    #[must_use]
    pub fn new(config: MachineConfig, program: Program) -> Self {
        let mem = FlatMemory::for_program(&program, config.heap_words);
        let decoded = Arc::new(DecodedProgram::new(&program));
        Machine::from_shared(config, Arc::new(program), decoded, mem)
    }

    /// Creates a machine from already-shared immutable state: the program,
    /// its decoded form, and an initial memory image (typically a clone of a
    /// prepared snapshot). This is the decode-once path a parallel sweep
    /// uses — N machines over one `Arc<DecodedProgram>` instead of N
    /// decodes. `mem` must have been built for `program` with at least
    /// `config.heap_words` of heap (as [`FlatMemory::for_program`] does).
    #[must_use]
    pub fn from_shared(
        config: MachineConfig,
        program: Arc<Program>,
        decoded: Arc<DecodedProgram>,
        mem: FlatMemory,
    ) -> Self {
        let hier = MemoryHierarchy::new(&config);
        let cores: Vec<CoreState> = (0..config.cores)
            .map(|_| {
                let mut c = CoreState::new();
                // The ConflictTracker mirrors every speculative read this
                // machine cares about; the buffer-local read set would be a
                // second copy nobody consults.
                c.spec.set_read_tracking(false);
                c
            })
            .collect();
        let conflicts = ConflictTracker::new(
            config.cores,
            config.conflict_detection,
            config.conflict_granularity_log2,
        );
        Machine {
            config,
            program,
            decoded,
            mem,
            hier,
            cores,
            channels: ChannelNet::default(),
            resteer_requests: Vec::new(),
            conflicts,
            cycle: 0,
            activity: None,
            attribution: None,
            trace: None,
            snapshots: None,
        }
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The loaded program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Shared memory (read access, e.g. for checking results).
    #[must_use]
    pub fn mem(&self) -> &FlatMemory {
        &self.mem
    }

    /// Shared memory (write access, e.g. for building data structures before
    /// a run or mutating them between loop invocations).
    pub fn mem_mut(&mut self) -> &mut FlatMemory {
        &mut self.mem
    }

    /// Current simulated cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Excludes the half-open address range `[lo, hi)` from conflict
    /// detection. Used for the value predictor's shared arrays: their
    /// accesses are ordered by the `new_invocation` token protocol, so a
    /// conflict on them is a false positive by construction (the paper's
    /// hardware watches program data, not the software predictor's state).
    pub fn set_conflict_exempt(&mut self, lo: i64, hi: i64) {
        self.conflicts.exempt = Some((lo, hi));
    }

    /// Enables activity tracing with the given window (in cycles).
    pub fn enable_activity_trace(&mut self, window: u64) {
        self.activity = Some(ActivityTrace::new(self.config.cores, window.max(1)));
    }

    /// Enables per-`(function, block)` cycle attribution (see
    /// [`CycleAttribution`]). Purely observational; accumulates across
    /// invocations (`clear_threads`/`reset_cycle_counter` do not reset it).
    pub fn enable_cycle_attribution(&mut self) {
        self.attribution = Some(CycleAttribution::default());
    }

    /// The accumulated cycle attribution, if enabled.
    #[must_use]
    pub fn cycle_attribution(&self) -> Option<&CycleAttribution> {
        self.attribution.as_ref()
    }

    /// Returns the recorded activity trace, if tracing was enabled.
    #[must_use]
    pub fn activity_trace(&self) -> Option<&ActivityTrace> {
        self.activity.as_ref()
    }

    /// Enables structured event tracing into a ring buffer of `capacity`
    /// events, and turns on squash forensics in the conflict tracker.
    /// Observational only: an enabled trace never changes simulated time or
    /// any architectural outcome, and it accumulates across invocations.
    pub fn enable_trace(&mut self, capacity: usize) {
        if self.trace.is_none() {
            self.trace = Some(TraceRecorder::new(capacity));
        }
        self.conflicts.enable_forensics();
    }

    /// Adds `addr` to the watch list: every load/store of it becomes a
    /// [`TraceEvent::Watch`]. Requires [`Machine::enable_trace`] first
    /// (no-op otherwise).
    pub fn watch_address(&mut self, addr: i64) {
        if let Some(t) = self.trace.as_mut() {
            t.watch(addr);
        }
    }

    /// The recorded event trace, if tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.trace.as_ref()
    }

    /// Emits one event into the machine's trace (used by drivers to mark
    /// invocation boundaries and predictor decisions). No-op when tracing is
    /// off.
    pub fn trace_emit(&mut self, event: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.emit(event);
        }
    }

    /// Enables periodic checkpointing: [`Machine::run`] takes a
    /// [`MachineSnapshot`] at the first scheduling round at or after every
    /// multiple of `interval` cycles. The current memory image becomes the
    /// baseline that snapshots are diffed against.
    pub fn enable_snapshots(&mut self, interval: u64) {
        let interval = interval.max(1);
        self.snapshots = Some(SnapshotRecorder {
            interval,
            next_at: self.cycle + interval,
            baseline: Arc::new(self.mem.clone()),
            taken: Vec::new(),
        });
    }

    /// Takes a snapshot of the machine right now. Uses the periodic
    /// recorder's baseline when one exists; otherwise the snapshot carries a
    /// full copy of memory as its own baseline (empty delta).
    #[must_use]
    pub fn snapshot(&self) -> MachineSnapshot {
        match self.snapshots.as_ref() {
            Some(s) => self.snapshot_against(Arc::clone(&s.baseline)),
            None => {
                let mut snap = self.snapshot_against(Arc::new(self.mem.clone()));
                snap.delta.clear();
                snap
            }
        }
    }

    fn snapshot_against(&self, baseline: Arc<FlatMemory>) -> MachineSnapshot {
        debug_assert_eq!(baseline.words().len(), self.mem.words().len());
        let delta: Vec<(usize, i64)> = self
            .mem
            .words()
            .iter()
            .zip(baseline.words())
            .enumerate()
            .filter(|(_, (cur, base))| cur != base)
            .map(|(i, (cur, _))| (i, *cur))
            .collect();
        MachineSnapshot {
            config: self.config.clone(),
            program: Arc::clone(&self.program),
            decoded: Arc::clone(&self.decoded),
            cycle: self.cycle,
            cores: self.cores.clone(),
            channels: self.channels.clone(),
            resteer_requests: self.resteer_requests.clone(),
            conflicts: self.conflicts.clone(),
            hier: self.hier.clone(),
            trace: self.trace.clone(),
            baseline,
            delta,
            heap_next: self.mem.heap_next(),
        }
    }

    /// Snapshots taken by the periodic recorder so far, oldest first.
    #[must_use]
    pub fn snapshots_taken(&self) -> &[MachineSnapshot] {
        self.snapshots.as_ref().map_or(&[], |s| &s.taken)
    }

    /// Reconstructs a machine from a snapshot. The continuation is
    /// bit-identical to the original run from the snapshot point: identical
    /// future summaries, memory words, and trace tail (the snapshot's trace
    /// state is restored; activity/attribution observers start disabled).
    #[must_use]
    pub fn resume_from(snapshot: &MachineSnapshot) -> Machine {
        let mut mem = (*snapshot.baseline).clone();
        for &(i, v) in &snapshot.delta {
            mem.words_mut()[i] = v;
        }
        mem.set_heap_next(snapshot.heap_next);
        Machine {
            config: snapshot.config.clone(),
            program: Arc::clone(&snapshot.program),
            decoded: Arc::clone(&snapshot.decoded),
            mem,
            hier: snapshot.hier.clone(),
            cores: snapshot.cores.clone(),
            channels: snapshot.channels.clone(),
            resteer_requests: snapshot.resteer_requests.clone(),
            conflicts: snapshot.conflicts.clone(),
            cycle: snapshot.cycle,
            activity: None,
            attribution: None,
            trace: snapshot.trace.clone(),
            snapshots: None,
        }
    }

    /// Runs until completion or until the clock reaches `target`, whichever
    /// comes first. `Ok(Some(summary))` means the run finished before
    /// `target`; `Ok(None)` means it paused at `target` with all state
    /// intact — calling [`Machine::run`] (or `run_until` again) continues
    /// bit-identically, because the scheduler only ever pauses on cycle
    /// boundaries where stall/idle credit is linear in elapsed time.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] other than the pause itself (the
    /// configured `max_cycles` budget still applies and still reports
    /// [`SimError::MaxCyclesExceeded`]).
    pub fn run_until(&mut self, target: u64) -> Result<Option<RunSummary>, SimError> {
        let saved = self.config.max_cycles;
        let effective = target.min(saved);
        self.config.max_cycles = effective;
        let out = self.run();
        self.config.max_cycles = saved;
        match out {
            Ok(summary) => Ok(Some(summary)),
            Err(SimError::MaxCyclesExceeded { limit })
                if limit == effective && effective < saved =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Human-readable dump of per-core scheduler state at the current cycle
    /// (the `inspect` CLI's `break` view).
    #[must_use]
    pub fn state_dump(&self) -> String {
        let mut out = format!("cycle {}\n", self.cycle);
        for (i, c) in self.cores.iter().enumerate() {
            let status = match &c.thread {
                None => "idle (no thread)".to_string(),
                Some(t) => match t.status() {
                    ThreadStatus::Trapped(k) => format!("trapped: {k}"),
                    _ if c.done => "done".to_string(),
                    _ if c.blocked => {
                        format!("blocked on chan {:?}", c.waiting_chan)
                    }
                    _ => format!("runnable at {:?}:{:?}", t.current_func(), t.current_block()),
                },
            };
            out.push_str(&format!(
                "core {i}: {status}; busy_until {}, retired {}, spec {}\n",
                c.busy_until,
                c.report.retired,
                if c.spec.is_active() { "active" } else { "off" },
            ));
        }
        out
    }

    /// Places a new thread on `core`, starting at `func` with `args`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchCore`] if the core index is out of range.
    pub fn spawn(&mut self, core: usize, func: FuncId, args: &[i64]) -> Result<(), SimError> {
        if core >= self.cores.len() {
            return Err(SimError::NoSuchCore { core });
        }
        let state = &mut self.cores[core];
        state.thread = Some(ThreadState::new(&self.decoded, func, args));
        state.busy_until = self.cycle;
        state.done = false;
        state.blocked = false;
        state.waiting_chan = None;
        state.report = CoreReport::default();
        state.class_counts = [0; InstClass::COUNT];
        Ok(())
    }

    /// Removes every thread and clears channels, keeping memory and caches.
    /// Used by multi-invocation drivers between loop invocations.
    pub fn clear_threads(&mut self) {
        for c in &mut self.cores {
            c.thread = None;
            c.spec.reset();
            c.busy_until = self.cycle;
            c.done = false;
            c.blocked = false;
            c.waiting_chan = None;
        }
        self.channels.clear();
        self.resteer_requests.clear();
        // A fresh set of threads is a fresh loop invocation: the conflict
        // epoch (committed writes, read sets, verdicts) starts over.
        self.conflicts.clear_epoch();
    }

    /// Resets the cycle counter to zero (per-invocation timing).
    pub fn reset_cycle_counter(&mut self) {
        self.cycle = 0;
        for c in &mut self.cores {
            c.busy_until = 0;
        }
        // Re-arm the periodic snapshot recorder onto the new clock: one
        // checkpoint at the invocation's first scheduling round (cycle 0),
        // then every `interval` cycles. Without this the mark would drift
        // past every later invocation's per-invocation clock and recording
        // would stop after the first invocation.
        if let Some(s) = self.snapshots.as_mut() {
            s.next_at = 0;
        }
    }

    /// Advances the machine by one cycle.
    pub fn step_cycle(&mut self) {
        let now = self.cycle;
        for i in 0..self.cores.len() {
            // Skip cores that are stalled, idle or done.
            {
                let c = &mut self.cores[i];
                if c.done || c.thread.is_none() {
                    c.report.idle_cycles += 1;
                    continue;
                }
                if c.busy_until > now {
                    match c.stall {
                        StallKind::Memory => c.report.mem_stall_cycles += 1,
                        StallKind::Recv => c.report.recv_stall_cycles += 1,
                        StallKind::None => {}
                    }
                    continue;
                }
            }
            let _ = self.step_core(i, now);
        }

        // Deliver resteer requests at end of cycle.
        if !self.resteer_requests.is_empty() {
            self.deliver_resteers(now);
        }

        self.cycle += 1;
    }

    /// Executes one cycle's issue group on a single (ready) core: up to
    /// `issue_width` co-issuable ALU operations (Table 1: 6-issue), ended by
    /// any memory access, long-latency operation, communication or control
    /// transfer. Returns what ended the group, so a caller driving one core
    /// alone knows whether the schedule could have changed.
    fn step_core(&mut self, i: usize, now: u64) -> CoreCycleEnd {
        CoreRun::new(self, i).issue_group(now)
    }

    /// Applies queued remote resteers (end-of-cycle semantics).
    fn deliver_resteers(&mut self, now: u64) {
        let requests = std::mem::take(&mut self.resteer_requests);
        for (core, target) in requests {
            let idx = core as usize;
            if idx < self.cores.len() {
                if let Some(t) = self.cores[idx].thread.as_mut() {
                    t.resteer_to(target);
                    self.cores[idx].done = false;
                    self.cores[idx].blocked = false;
                    self.cores[idx].waiting_chan = None;
                    self.cores[idx].busy_until = now + self.config.inter_core_latency;
                }
            }
        }
    }

    /// Jumps the clock from `self.cycle` to `target`, crediting each core
    /// with exactly the stall/idle cycles the cycle-stepped machine would
    /// have accumulated over the skipped interval — by the event invariant,
    /// those counter bumps are the *only* effect the skipped cycles could
    /// have had.
    fn skip_to(&mut self, target: u64) {
        let dt = target.saturating_sub(self.cycle);
        if dt == 0 {
            return;
        }
        for c in &mut self.cores {
            if c.done || c.thread.is_none() {
                // Idle cores tick their idle counter every scanned cycle.
                c.report.idle_cycles += dt;
                continue;
            }
            let status = c.thread.as_ref().expect("checked above").status();
            if matches!(status, ThreadStatus::Trapped(_)) {
                // A trapped thread re-checks every cycle without touching
                // any counter; skipping is free.
                continue;
            }
            if c.blocked {
                // A blocked thread retries its receive every cycle; each
                // empty retry is one recv-stall cycle.
                c.report.recv_stall_cycles += dt;
                continue;
            }
            // Busy core: `target` never exceeds any busy core's horizon, so
            // every skipped cycle is a stall cycle of the recorded kind.
            debug_assert!(c.busy_until >= target, "skipped past a ready core");
            match c.stall {
                StallKind::Memory => c.report.mem_stall_cycles += dt,
                StallKind::Recv => c.report.recv_stall_cycles += dt,
                StallKind::None => {}
            }
        }
        self.cycle = target;
    }

    /// Drives a lone runnable core without the per-cycle scheduling scans —
    /// the common regime of every sequential baseline and of a Spice run's
    /// serial phases (workers parked on their channels). The loop stays
    /// cycle-exact: the core's own stall intervals are credited
    /// arithmetically, and control returns to the general scheduler the
    /// moment anything could change another core's schedule (a send, a
    /// resteer, this core blocking, finishing or trapping, or the cycle
    /// budget). The parked cores' idle/stall counters are settled in bulk on
    /// exit for the whole interval — exactly what per-cycle ticking would
    /// have accumulated.
    fn run_single_active(&mut self, i: usize, limit: u64) {
        let entry = self.cycle;
        let mut deliver_at = None;
        {
            // One CoreRun for the whole episode: the ports and split borrows
            // are built once, not once per cycle.
            let mut run = CoreRun::new(self, i);
            loop {
                // Jump this core's own stall interval.
                let bu = *run.busy_until;
                if bu > *run.cycle {
                    let target = bu.min(limit);
                    let dt = target - *run.cycle;
                    match *run.stall {
                        StallKind::Memory => run.report.mem_stall_cycles += dt,
                        StallKind::Recv => run.report.recv_stall_cycles += dt,
                        StallKind::None => {}
                    }
                    *run.cycle = target;
                }
                if *run.cycle >= limit {
                    break;
                }
                let now = *run.cycle;
                let pending_before = run.sys_port.channels.pending();
                let end = run.issue_group(now);
                let sent = run.sys_port.channels.pending() > pending_before;
                let resteered = !run.sys_port.resteers.is_empty();
                *run.cycle = now + 1;
                if sent || resteered || !matches!(end, CoreCycleEnd::Ran) {
                    if resteered {
                        // Delivery happens outside, once the split borrows
                        // are released — at the same point in simulated
                        // time (end of cycle `now`, before anything else
                        // steps), so the semantics are unchanged.
                        deliver_at = Some(now);
                    }
                    break;
                }
            }
        }
        // Settle the parked cores' counters for the elapsed interval: every
        // cycle of it, a done/idle core would have ticked `idle_cycles` and
        // a blocked core would have retried its receive into one more
        // recv-stall cycle (their channels stayed empty by construction —
        // the loop exits on the first send). This must happen BEFORE any
        // pending resteer is delivered: delivery clears the target's
        // blocked/done flags, but in the cycle-stepped machine the target
        // still earned its stall/idle tick for the delivery cycle itself
        // (cores are scanned before end-of-cycle delivery).
        let dt = self.cycle - entry;
        if dt > 0 {
            for (k, c) in self.cores.iter_mut().enumerate() {
                if k == i {
                    continue;
                }
                if c.done || c.thread.is_none() {
                    c.report.idle_cycles += dt;
                } else if c.blocked {
                    c.report.recv_stall_cycles += dt;
                }
                // Trapped cores tick nothing; other states cannot occur
                // while this core is the only active one.
            }
        }
        if let Some(now) = deliver_at {
            self.deliver_resteers(now);
        }
    }

    /// Runs until every spawned thread has finished or halted, advancing the
    /// clock event-to-event (see the module documentation; the result is
    /// bit-identical to stepping every cycle).
    ///
    /// # Errors
    ///
    /// * [`SimError::Deadlock`] if no thread can ever make progress again
    ///   (e.g. everyone blocked on empty channels),
    /// * [`SimError::UnrecoveredTrap`] if execution ends with a trapped
    ///   thread that was never resteered,
    /// * [`SimError::MaxCyclesExceeded`] if the configured cycle budget runs
    ///   out.
    pub fn run(&mut self) -> Result<RunSummary, SimError> {
        let limit = self.config.max_cycles;
        loop {
            // Periodic checkpoint: taken at the first scheduling round at or
            // after the recorder's next mark. Observational — snapshotting
            // reads state but never advances or perturbs it.
            let snapshot_due = self
                .snapshots
                .as_ref()
                .is_some_and(|s| self.cycle >= s.next_at);
            if snapshot_due {
                let baseline = {
                    let s = self.snapshots.as_ref().expect("checked above");
                    Arc::clone(&s.baseline)
                };
                let snap = self.snapshot_against(baseline);
                let s = self.snapshots.as_mut().expect("checked above");
                s.taken.push(snap);
                s.next_at = self.cycle + s.interval;
            }
            // One pass over the cores gives the scheduler everything it
            // needs: completion, runnability, and the earliest wake-up. A
            // busy core wakes at `busy_until`; a core blocked on a receive
            // wakes when the next message on its channel arrives (none in
            // flight → no bounded wake-up: only another core's future send,
            // itself an event, can rouse it); trapped cores wake only via a
            // resteer delivered by another core's event.
            let have_msgs = self.channels.pending() > 0;
            let mut all_done = true;
            let mut active = 0usize;
            let mut active_idx = 0usize;
            let mut blocked_wake_bounded = false;
            let mut next: Option<u64> = None;
            for (i, c) in self.cores.iter().enumerate() {
                let Some(t) = &c.thread else { continue };
                if c.done {
                    continue;
                }
                all_done = false;
                if matches!(t.status(), ThreadStatus::Trapped(_)) {
                    continue;
                }
                let wake = if c.blocked {
                    if !have_msgs {
                        // Nothing in flight anywhere: this receive cannot
                        // complete until someone sends, which is itself an
                        // event.
                        continue;
                    }
                    match c.waiting_chan.and_then(|ch| self.channels.earliest_on(ch)) {
                        Some(arrival) => {
                            blocked_wake_bounded = true;
                            arrival.max(c.busy_until)
                        }
                        None => continue,
                    }
                } else {
                    active += 1;
                    active_idx = i;
                    c.busy_until
                };
                next = Some(next.map_or(wake, |n| n.min(wake)));
            }
            if all_done {
                return Ok(self.summary());
            }
            if self.cycle >= limit {
                return Err(SimError::MaxCyclesExceeded { limit });
            }
            if active == 1 && !blocked_wake_bounded {
                // The whole schedule hinges on one core: run it in the
                // scan-free fast loop until anything could change that.
                self.run_single_active(active_idx, limit);
                continue;
            }
            // Progress is possible if some core is runnable or busy, or a
            // blocked core's message will eventually arrive.
            if active == 0 && !have_msgs {
                // Distinguish trap-wedges from pure deadlocks.
                for (i, c) in self.cores.iter().enumerate() {
                    if let Some(t) = &c.thread {
                        if let ThreadStatus::Trapped(k) = t.status() {
                            if !c.done {
                                return Err(SimError::UnrecoveredTrap { core: i, trap: k });
                            }
                        }
                    }
                }
                return Err(SimError::Deadlock { cycle: self.cycle });
            }
            match next.map(|n| n.max(self.cycle)) {
                Some(target) if target > self.cycle => {
                    // Nothing can happen before `target`: account the
                    // skipped interval and land on the event (or on the
                    // cycle budget, whichever is nearer).
                    self.skip_to(target.min(limit));
                }
                Some(_) => self.step_cycle(),
                None => {
                    // Progress is "possible" only through messages nobody is
                    // positioned to receive: the cycle-stepped machine would
                    // idle forward to its budget, so jump straight there.
                    self.skip_to(limit);
                }
            }
        }
    }

    /// Builds the per-core report without running.
    #[must_use]
    pub fn summary(&self) -> RunSummary {
        let cores = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mut report = c.report.clone();
                report.mem = self.hier.stats(i);
                report.spec_conflict_addr = self.conflicts.verdict(i);
                report.spec_conflicts = u64::from(report.spec_conflict_addr.is_some());
                report.trapped = c.thread.as_ref().and_then(|t| match t.status() {
                    ThreadStatus::Trapped(k) => Some(k),
                    _ => None,
                });
                let mut classes: Vec<(String, u64)> = InstClass::ALL
                    .iter()
                    .map(|k| (format!("{k:?}"), c.class_counts[k.index()]))
                    .filter(|&(_, v)| v > 0)
                    .collect();
                classes.sort();
                report.retired_by_class = classes;
                report
            })
            .collect();
        RunSummary {
            cycles: self.cycle,
            cores,
        }
    }

    /// Return value of the thread on `core`, if it finished with one.
    #[must_use]
    pub fn return_value(&self, core: usize) -> Option<i64> {
        self.cores.get(core).and_then(|c| c.report.return_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::builder::FunctionBuilder;
    use spice_ir::{BinOp, Inst, Operand};

    fn tiny(cores: usize) -> MachineConfig {
        MachineConfig::test_tiny(cores)
    }

    #[test]
    fn single_thread_program_runs_to_completion() {
        let mut b = FunctionBuilder::new("main");
        let x = b.binop(BinOp::Add, 40i64, 2i64);
        b.ret(Some(Operand::Reg(x)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut m = Machine::new(tiny(1), p);
        m.spawn(0, f, &[]).unwrap();
        let summary = m.run().unwrap();
        assert_eq!(m.return_value(0), Some(42));
        assert!(summary.cycles >= 1);
        assert_eq!(summary.cores[0].retired, 1);
    }

    #[test]
    fn memory_latency_is_charged() {
        // Two loads of the same address: first misses everywhere, second hits L1.
        let mut b = FunctionBuilder::new("loads");
        let a = b.load(2000i64, 0);
        let c = b.load(2000i64, 0);
        let s = b.binop(BinOp::Add, a, c);
        b.ret(Some(Operand::Reg(s)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let cfg = tiny(1);
        let expected_min =
            cfg.l1d.hit_latency + cfg.l2.hit_latency + cfg.l3.hit_latency + cfg.memory_latency;
        let mut m = Machine::new(cfg, p);
        m.spawn(0, f, &[]).unwrap();
        let summary = m.run().unwrap();
        assert!(summary.cycles > expected_min);
        assert_eq!(summary.cores[0].mem.loads, 2);
        assert_eq!(summary.cores[0].mem.l1_hits, 1);
    }

    #[test]
    fn two_threads_communicate_with_latency() {
        // Thread 0 sends 7 on channel 0; thread 1 receives and returns it.
        let mut p = Program::new();
        let mut sender = FunctionBuilder::new("sender");
        sender.send(0i64, 7i64);
        sender.ret(None);
        let sf = p.add_func(sender.finish());

        let mut receiver = FunctionBuilder::new("receiver");
        let v = receiver.recv(0i64);
        receiver.ret(Some(Operand::Reg(v)));
        let rf = p.add_func(receiver.finish());

        let cfg = tiny(2);
        let comm = cfg.inter_core_latency;
        let mut m = Machine::new(cfg, p);
        m.spawn(0, sf, &[]).unwrap();
        m.spawn(1, rf, &[]).unwrap();
        let summary = m.run().unwrap();
        assert_eq!(m.return_value(1), Some(7));
        // The receiver cannot finish before the message's flight time.
        assert!(summary.cores[1].finished_at.unwrap() >= comm);
        assert!(summary.cores[1].recv_stall_cycles > 0);
    }

    #[test]
    fn speculative_stores_commit_or_vanish() {
        // Speculative thread stores 5 to @g, then either commits or aborts
        // based on its argument.
        let mut p = Program::new();
        let g = p.add_global("g", 1);
        let mut b = FunctionBuilder::new("spec");
        let do_commit = b.param();
        let commit_bb = b.new_block();
        let abort_bb = b.new_block();
        let done = b.new_block();
        b.push(Inst::SpecBegin);
        b.store(5i64, g, 0);
        b.cond_br(do_commit, commit_bb, abort_bb);
        b.switch_to(commit_bb);
        b.push(Inst::SpecCommit);
        b.br(done);
        b.switch_to(abort_bb);
        b.push(Inst::SpecAbort);
        b.br(done);
        b.switch_to(done);
        b.ret(None);
        let f = p.add_func(b.finish());

        // Commit case.
        let mut m = Machine::new(tiny(1), p.clone());
        m.spawn(0, f, &[1]).unwrap();
        let s = m.run().unwrap();
        assert_eq!(m.mem().read(g).unwrap(), 5);
        assert_eq!(s.cores[0].spec_commits, 1);

        // Abort case.
        let mut m = Machine::new(tiny(1), p);
        m.spawn(0, f, &[0]).unwrap();
        let s = m.run().unwrap();
        assert_eq!(m.mem().read(g).unwrap(), 0);
        assert_eq!(s.cores[0].spec_aborts, 1);
    }

    #[test]
    fn speculative_stores_invisible_to_other_core_until_commit() {
        // Core 0: spec-store 9 to @flag, wait for token, commit, send done.
        // Core 1: read @flag before and after.
        let mut p = Program::new();
        let flag = p.add_global("flag", 1);
        let result = p.add_global("result", 2);

        let mut w = FunctionBuilder::new("writer");
        w.push(Inst::SpecBegin);
        w.store(9i64, flag, 0);
        // Tell the reader the speculative store happened.
        w.send(0i64, 1i64);
        // Wait for permission to commit.
        let _ = w.recv(1i64);
        w.push(Inst::SpecCommit);
        w.send(2i64, 1i64);
        w.ret(None);
        let wf = p.add_func(w.finish());

        let mut r = FunctionBuilder::new("reader");
        let _ = r.recv(0i64);
        let before = r.load(flag, 0);
        r.store(before, result, 0);
        r.send(1i64, 1i64);
        let _ = r.recv(2i64);
        let after = r.load(flag, 0);
        r.store(after, result, 1);
        r.ret(None);
        let rf = p.add_func(r.finish());

        let mut m = Machine::new(tiny(2), p);
        m.spawn(0, wf, &[]).unwrap();
        m.spawn(1, rf, &[]).unwrap();
        m.run().unwrap();
        assert_eq!(m.mem().read(result).unwrap(), 0, "spec store leaked");
        assert_eq!(m.mem().read(result + 1).unwrap(), 9, "commit not visible");
    }

    /// Core 1 speculatively reads `g`; core 0 stores `g` non-speculatively
    /// and then asks the conflict detector about core 1 — the RAW violation
    /// must be reported, attributed to core 1 with the conflicting address.
    fn conflict_check_program() -> (Program, i64, i64, FuncId, FuncId) {
        let mut p = Program::new();
        let g = p.add_global("g", 1);
        let verdict = p.add_global("verdict", 1);

        let mut reader = FunctionBuilder::new("reader");
        reader.push(Inst::SpecBegin);
        let v = reader.load(g, 0);
        reader.send(0i64, v);
        let _ = reader.recv(1i64);
        reader.push(Inst::SpecAbort);
        reader.ret(None);
        let rf = p.add_func(reader.finish());

        let mut checker = FunctionBuilder::new("checker");
        let _ = checker.recv(0i64);
        checker.store(7i64, g, 0);
        let c = checker.spec_check(1i64);
        checker.store(c, verdict, 0);
        checker.send(1i64, 1i64);
        checker.ret(None);
        let cf = p.add_func(checker.finish());
        (p, g, verdict, rf, cf)
    }

    #[test]
    fn spec_check_reports_cross_core_raw_conflicts() {
        let (p, g, verdict, rf, cf) = conflict_check_program();
        let mut m = Machine::new(tiny(2), p);
        m.spawn(0, cf, &[]).unwrap();
        m.spawn(1, rf, &[]).unwrap();
        let summary = m.run().unwrap();
        assert_eq!(m.mem().read(verdict).unwrap(), 1, "conflict must be seen");
        assert_eq!(summary.cores[1].spec_conflicts, 1);
        assert_eq!(summary.cores[1].spec_conflict_addr, Some(g));
        assert_eq!(summary.cores[0].spec_conflicts, 0);

        // A fresh invocation epoch forgets the verdict and the sets.
        m.clear_threads();
        assert_eq!(m.summary().cores[1].spec_conflicts, 0);
    }

    #[test]
    fn exempt_range_is_invisible_to_conflict_detection() {
        // Same RAW pattern as above, but `g` sits inside the exempt range —
        // the predictor-array case: ordered by protocol, never a conflict.
        let (p, g, verdict, rf, cf) = conflict_check_program();
        let mut m = Machine::new(tiny(2), p);
        m.set_conflict_exempt(g, g + 1);
        m.spawn(0, cf, &[]).unwrap();
        m.spawn(1, rf, &[]).unwrap();
        let summary = m.run().unwrap();
        assert_eq!(m.mem().read(verdict).unwrap(), 0);
        assert_eq!(summary.cores[1].spec_conflicts, 0);
    }

    #[test]
    fn spec_check_is_inert_when_detection_disabled() {
        let (p, _, verdict, rf, cf) = conflict_check_program();
        let mut cfg = tiny(2);
        cfg.conflict_detection = false;
        let mut m = Machine::new(cfg, p);
        m.spawn(0, cf, &[]).unwrap();
        m.spawn(1, rf, &[]).unwrap();
        let summary = m.run().unwrap();
        assert_eq!(m.mem().read(verdict).unwrap(), 0);
        assert_eq!(summary.cores[1].spec_conflicts, 0);
    }

    #[test]
    fn resteer_redirects_other_core() {
        // Core 1 spins forever; core 0 resteers it to its exit block.
        let mut p = Program::new();
        let mut spin = FunctionBuilder::new("spin");
        let spin_bb = spin.new_block();
        let exit_bb = spin.new_block();
        spin.br(spin_bb);
        spin.switch_to(spin_bb);
        spin.br(spin_bb);
        spin.switch_to(exit_bb);
        spin.ret(Some(Operand::Imm(123)));
        let spin_f = p.add_func(spin.finish());

        let mut boss = FunctionBuilder::new("boss");
        boss.push(Inst::Resteer {
            core: Operand::Imm(1),
            target: exit_bb,
        });
        boss.ret(None);
        let boss_f = p.add_func(boss.finish());

        let mut m = Machine::new(tiny(2), p);
        m.spawn(0, boss_f, &[]).unwrap();
        m.spawn(1, spin_f, &[]).unwrap();
        let summary = m.run().unwrap();
        assert_eq!(m.return_value(1), Some(123));
        assert!(summary.cycles < 1000);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("waiter");
        let v = b.recv(5i64);
        b.ret(Some(Operand::Reg(v)));
        let f = p.add_func(b.finish());
        let mut m = Machine::new(tiny(1), p);
        m.spawn(0, f, &[]).unwrap();
        match m.run() {
            Err(SimError::Deadlock { .. }) => {}
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn unrecovered_trap_is_reported() {
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("wild");
        let v = b.load(-5i64, 0);
        b.ret(Some(Operand::Reg(v)));
        let f = p.add_func(b.finish());
        let mut m = Machine::new(tiny(1), p);
        m.spawn(0, f, &[]).unwrap();
        match m.run() {
            Err(SimError::UnrecoveredTrap { core: 0, .. }) => {}
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn spawn_on_missing_core_fails() {
        let p = Program::new();
        let mut m = Machine::new(tiny(1), p);
        assert_eq!(
            m.spawn(3, FuncId(0), &[]),
            Err(SimError::NoSuchCore { core: 3 })
        );
    }

    #[test]
    fn activity_trace_shows_busy_windows() {
        let mut b = FunctionBuilder::new("busy");
        let mut acc = b.copy(0i64);
        for _ in 0..20 {
            acc = b.binop(BinOp::Add, acc, 1i64);
        }
        b.ret(Some(Operand::Reg(acc)));
        let mut p = Program::new();
        let f = p.add_func(b.finish());
        let mut m = Machine::new(tiny(1), p);
        m.enable_activity_trace(5);
        m.spawn(0, f, &[]).unwrap();
        m.run().unwrap();
        let trace = m.activity_trace().unwrap();
        assert!(trace.ascii().contains('#'));
        assert!(trace.samples[0].iter().sum::<u64>() >= 20);
    }

    #[test]
    fn clear_threads_keeps_memory() {
        let mut p = Program::new();
        let g = p.add_global("g", 1);
        let mut b = FunctionBuilder::new("w");
        b.store(7i64, g, 0);
        b.ret(None);
        let f = p.add_func(b.finish());
        let mut m = Machine::new(tiny(1), p);
        m.spawn(0, f, &[]).unwrap();
        m.run().unwrap();
        m.clear_threads();
        m.reset_cycle_counter();
        assert_eq!(m.cycle(), 0);
        assert_eq!(m.mem().read(g).unwrap(), 7);
    }

    #[test]
    fn max_cycles_is_enforced() {
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("spin");
        let l = b.new_block();
        b.br(l);
        b.switch_to(l);
        b.br(l);
        let f = p.add_func(b.finish());
        let mut cfg = tiny(1);
        cfg.max_cycles = 500;
        let mut m = Machine::new(cfg, p);
        m.spawn(0, f, &[]).unwrap();
        assert_eq!(m.run(), Err(SimError::MaxCyclesExceeded { limit: 500 }));
    }

    /// The event scheduler must be observationally identical to stepping
    /// every cycle: drive one machine with `run()` and a twin cycle-by-cycle
    /// with `step_cycle()`, and compare the full summaries.
    #[test]
    fn event_scheduling_matches_cycle_stepping() {
        let build = || {
            // Two threads with staggered stalls and channel traffic: thread 0
            // sends a sequence; thread 1 receives and chases memory.
            let mut p = Program::new();
            let data = p.add_global("data", 64);
            let mut s = FunctionBuilder::new("producer");
            let mut acc = s.copy(0i64);
            for k in 0..6 {
                acc = s.binop(BinOp::Add, acc, 3i64);
                s.send(0i64, acc);
                let _ = s.load(data + k, 0);
            }
            s.ret(Some(Operand::Reg(acc)));
            let pf = p.add_func(s.finish());
            let mut r = FunctionBuilder::new("consumer");
            let mut sum = r.copy(0i64);
            for k in 0..6 {
                let v = r.recv(0i64);
                let w = r.load(data + 2 * k, 0);
                let t = r.binop(BinOp::Add, v, w);
                let t2 = r.binop(BinOp::Add, sum, t);
                sum = t2;
                r.store(t2, data + 30 + k, 0);
            }
            r.ret(Some(Operand::Reg(sum)));
            let rf = p.add_func(r.finish());
            (p, pf, rf)
        };

        let (p, pf, rf) = build();
        let mut event_m = Machine::new(tiny(2), p);
        event_m.spawn(0, pf, &[]).unwrap();
        event_m.spawn(1, rf, &[]).unwrap();
        let event_summary = event_m.run().unwrap();

        let (p, pf, rf) = build();
        let mut tick_m = Machine::new(tiny(2), p);
        tick_m.spawn(0, pf, &[]).unwrap();
        tick_m.spawn(1, rf, &[]).unwrap();
        let mut guard = 0;
        while !tick_m.cores.iter().all(|c| c.thread.is_none() || c.done) {
            tick_m.step_cycle();
            guard += 1;
            assert!(guard < 100_000, "tick twin diverged");
        }
        let tick_summary = tick_m.summary();

        assert_eq!(event_summary, tick_summary);
        assert_eq!(event_m.mem().words(), tick_m.mem().words());
    }

    /// Regression: a resteer issued from the single-active fast loop toward
    /// a parked (blocked) core must not cost that core its stall credit for
    /// the episode — the cycle-stepped machine ticks the blocked core every
    /// cycle up to and including the delivery cycle, so the event-driven
    /// settle must run before delivery clears the blocked flag.
    #[test]
    fn resteer_from_single_active_loop_matches_cycle_stepping() {
        let build = || {
            let mut p = Program::new();
            // Core 1 blocks forever on a channel nobody sends to; its only
            // exit is the remote resteer.
            let mut w = FunctionBuilder::new("waiter");
            let exit_bb = w.new_block();
            let v = w.recv(9i64);
            w.ret(Some(Operand::Reg(v)));
            w.switch_to(exit_bb);
            w.ret(Some(Operand::Imm(-1)));
            let wf = p.add_func(w.finish());
            // Core 0 computes alone for a while (single-active fast loop),
            // then resteers core 1 to its exit block.
            let mut boss = FunctionBuilder::new("boss");
            let mut acc = boss.copy(0i64);
            for _ in 0..40 {
                acc = boss.binop(BinOp::Add, acc, 1i64);
            }
            boss.push(Inst::Resteer {
                core: Operand::Imm(1),
                target: exit_bb,
            });
            boss.ret(Some(Operand::Reg(acc)));
            let bf = p.add_func(boss.finish());
            (p, bf, wf)
        };

        let (p, bf, wf) = build();
        let mut event_m = Machine::new(tiny(2), p);
        event_m.spawn(0, bf, &[]).unwrap();
        event_m.spawn(1, wf, &[]).unwrap();
        let event_summary = event_m.run().unwrap();
        assert_eq!(event_m.return_value(1), Some(-1));

        let (p, bf, wf) = build();
        let mut tick_m = Machine::new(tiny(2), p);
        tick_m.spawn(0, bf, &[]).unwrap();
        tick_m.spawn(1, wf, &[]).unwrap();
        let mut guard = 0;
        while !tick_m.cores.iter().all(|c| c.thread.is_none() || c.done) {
            tick_m.step_cycle();
            guard += 1;
            assert!(guard < 100_000, "tick twin diverged");
        }
        assert_eq!(event_summary, tick_m.summary());
    }

    /// Tracing is an observer: a traced run must produce exactly the same
    /// summary and memory as an untraced twin, while actually recording
    /// events.
    #[test]
    fn tracing_never_changes_simulated_time() {
        let (p, g, _, rf, cf) = conflict_check_program();
        let mut plain = Machine::new(tiny(2), p.clone());
        plain.spawn(0, cf, &[]).unwrap();
        plain.spawn(1, rf, &[]).unwrap();
        let plain_summary = plain.run().unwrap();

        let mut traced = Machine::new(tiny(2), p);
        traced.enable_trace(1024);
        traced.watch_address(g);
        traced.spawn(0, cf, &[]).unwrap();
        traced.spawn(1, rf, &[]).unwrap();
        let traced_summary = traced.run().unwrap();

        assert_eq!(plain_summary, traced_summary);
        assert_eq!(plain.mem().words(), traced.mem().words());
        let t = traced.trace().unwrap();
        assert!(t.total() > 0, "events were recorded");
        assert_eq!(t.squashes(), 1, "the abort became a squash event");
        let kinds: Vec<&str> = t.events().map(TraceEvent::kind).collect();
        for needed in [
            "retire",
            "send",
            "recv",
            "chunk_begin",
            "chunk_validate",
            "chunk_squash",
            "watch",
        ] {
            assert!(kinds.contains(&needed), "missing {needed} in {kinds:?}");
        }
    }

    /// The squash event on the conflict program carries full forensics: the
    /// violating address, the writer's core/site, the reader's site, and no
    /// false conflicts at word granularity.
    #[test]
    fn squash_forensics_reconstruct_the_raw_chain() {
        let (p, g, _, rf, cf) = conflict_check_program();
        let mut m = Machine::new(tiny(2), p);
        m.enable_trace(1024);
        m.spawn(0, cf, &[]).unwrap();
        m.spawn(1, rf, &[]).unwrap();
        let summary = m.run().unwrap();
        assert_eq!(summary.cores[1].spec_conflict_addr, Some(g));

        let squash = m
            .trace()
            .unwrap()
            .events()
            .find_map(|e| match e {
                TraceEvent::ChunkSquash {
                    core,
                    chunk,
                    cause,
                    forensics,
                    ..
                } => Some((*core, *chunk, *cause, *forensics)),
                _ => None,
            })
            .expect("a squash event");
        let (core, chunk, cause, forensics) = squash;
        assert_eq!(core, 1, "the reader's chunk squashed");
        assert!(chunk.is_some(), "forensic chunk id tracked");
        assert_eq!(cause, MisspeculationCause::DependenceViolation { addr: g });
        let f = forensics.expect("forensics attached");
        assert_eq!(f.addr, g);
        assert_eq!(f.word_addr, Some(g), "true conflict, word-exact");
        assert_eq!(f.writer_core, Some(0), "the checker wrote g");
        assert_eq!(f.writer_chunk, None, "writer was non-speculative");
        assert!(f.writer_site.is_some() && f.reader_site.is_some());
        assert_eq!(f.false_conflicts, 0);
        assert_eq!(f.granularity_log2, 0);
    }

    /// At a coarse detection granularity, a reader and writer touching
    /// *different* words of the same grain squash with `word_addr: None` and
    /// a positive false-conflict count — the satellite's word-vs-grain
    /// classification.
    #[test]
    fn squash_forensics_classify_false_conflicts() {
        // Like conflict_check_program, but reader loads g+1 while the
        // checker stores g — same 8-word grain, different words.
        let mut p = Program::new();
        let g = p.add_global("g", 8);
        let mut reader = FunctionBuilder::new("reader");
        reader.push(Inst::SpecBegin);
        let v = reader.load(g + 1, 0);
        reader.send(0i64, v);
        let _ = reader.recv(1i64);
        reader.push(Inst::SpecAbort);
        reader.ret(None);
        let rf = p.add_func(reader.finish());
        let mut checker = FunctionBuilder::new("checker");
        let _ = checker.recv(0i64);
        checker.store(7i64, g, 0);
        let c = checker.spec_check(1i64);
        checker.send(1i64, c);
        checker.ret(None);
        let cf = p.add_func(checker.finish());

        let mut cfg = tiny(2);
        cfg.conflict_granularity_log2 = 3;
        let mut m = Machine::new(cfg, p);
        m.enable_trace(1024);
        m.spawn(0, cf, &[]).unwrap();
        m.spawn(1, rf, &[]).unwrap();
        let summary = m.run().unwrap();
        assert_eq!(summary.cores[1].spec_conflicts, 1, "grain aliasing fired");

        let f = m
            .trace()
            .unwrap()
            .events()
            .find_map(|e| match e {
                TraceEvent::ChunkSquash { forensics, .. } => *forensics,
                _ => None,
            })
            .expect("squash with forensics");
        assert_eq!(f.word_addr, None, "no word-level overlap");
        assert_eq!(f.false_conflicts, 1);
        assert_eq!(f.granularity_log2, 3);
        assert_eq!(f.writer_core, Some(0), "grain-scan still finds the writer");
        assert!(f.reader_site.is_some(), "and the reader's site");
    }

    /// Snapshot at a mid-run cycle, resume, and finish: summary, memory and
    /// trace tail must be bit-identical to the uninterrupted run — on the
    /// multi-core event path (this program keeps both cores live).
    #[test]
    fn snapshot_resume_is_bit_identical() {
        let (p, _, _, rf, cf) = conflict_check_program();
        let mut full = Machine::new(tiny(2), p.clone());
        full.enable_trace(1024);
        full.spawn(0, cf, &[]).unwrap();
        full.spawn(1, rf, &[]).unwrap();
        let full_summary = full.run().unwrap();
        assert!(full_summary.cycles > 40, "enough room to pause mid-run");

        for pause_at in [1u64, 17, full_summary.cycles / 2, full_summary.cycles - 1] {
            let mut m = Machine::new(tiny(2), p.clone());
            m.enable_trace(1024);
            m.spawn(0, cf, &[]).unwrap();
            m.spawn(1, rf, &[]).unwrap();
            let paused = m.run_until(pause_at).unwrap();
            assert!(paused.is_none(), "run must pause at {pause_at}");
            let snap = m.snapshot();
            assert_eq!(snap.cycle(), pause_at);
            let mut resumed = Machine::resume_from(&snap);
            let resumed_summary = resumed.run().unwrap();
            assert_eq!(resumed_summary, full_summary, "paused at {pause_at}");
            assert_eq!(resumed.mem().words(), full.mem().words());
            assert_eq!(
                resumed.trace().unwrap(),
                full.trace().unwrap(),
                "trace tail diverged after pausing at {pause_at}"
            );
        }
    }

    /// Same bit-identity through the single-active-core fast path, and via
    /// the periodic recorder instead of a manual snapshot.
    #[test]
    fn periodic_snapshots_resume_single_core_runs() {
        let mut b = FunctionBuilder::new("chase");
        let data = 64i64;
        let mut acc = b.copy(0i64);
        for k in 0..12 {
            let w = b.load(data + k, 0);
            let t = b.binop(BinOp::Add, acc, w);
            acc = b.binop(BinOp::Add, t, 1i64);
        }
        b.ret(Some(Operand::Reg(acc)));
        let mut p = Program::new();
        let _g = p.add_global("data", 64);
        let f = p.add_func(b.finish());

        let mut full = Machine::new(tiny(1), p.clone());
        full.spawn(0, f, &[]).unwrap();
        let full_summary = full.run().unwrap();

        let mut m = Machine::new(tiny(1), p.clone());
        m.enable_snapshots(25);
        m.spawn(0, f, &[]).unwrap();
        let _ = m.run().unwrap();
        let taken = m.snapshots_taken();
        assert!(!taken.is_empty(), "periodic snapshots were taken");
        for snap in taken {
            let mut resumed = Machine::resume_from(snap);
            let resumed_summary = resumed.run().unwrap();
            assert_eq!(resumed_summary, full_summary, "from cycle {}", snap.cycle());
        }

        // And a pause landing *inside* the single-active fast loop: the
        // break-at-limit path must leave resumable state mid-stall.
        assert!(full_summary.cycles > 30);
        let mut m = Machine::new(tiny(1), p);
        m.spawn(0, f, &[]).unwrap();
        let paused = m.run_until(30).unwrap();
        assert!(paused.is_none(), "paused mid single-active episode");
        let mut resumed = Machine::resume_from(&m.snapshot());
        assert_eq!(resumed.run().unwrap(), full_summary);
    }
}
