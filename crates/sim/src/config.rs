//! Machine configuration — the paper's Table 1.
//!
//! The evaluation machine of the paper is a 4-core Itanium 2 CMP modelled in
//! the Liberty Simulation Environment. This reproduction keeps the structural
//! parameters that determine the *shape* of the results (cache sizes and
//! latencies, main-memory latency, inter-core communication latency, issue
//! width) and drops the micro-architectural details that only shift absolute
//! cycle counts.

use serde::{Deserialize, Serialize};

/// Write policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Stores propagate to the next level immediately (Table 1: L1D).
    WriteThrough,
    /// Stores dirty the line and write back on eviction (Table 1: L2, L3).
    WriteBack,
}

/// Configuration of a single cache level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Latency, in cycles, of a hit at this level.
    pub hit_latency: u64,
    /// Write policy.
    pub write_policy: WritePolicy,
}

impl CacheConfig {
    /// Number of sets implied by the size, associativity and line size.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not divide evenly.
    #[must_use]
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.assoc) && lines > 0,
            "cache size must be a multiple of assoc * line size"
        );
        lines / self.assoc
    }
}

/// Functional-unit latencies of one core.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Issue width (Table 1: 6). Used to scale the cost of simple ALU
    /// operations: `ceil(n_alu / issue_width)` cycles are charged for a run
    /// of `n_alu` back-to-back ALU operations.
    pub issue_width: u64,
    /// Latency of an integer multiply.
    pub mul_latency: u64,
    /// Latency of an integer divide.
    pub div_latency: u64,
    /// Latency charged for branch instructions.
    pub branch_latency: u64,
    /// Cost of executing a speculation-control instruction
    /// (`spec.begin` / `spec.commit` / `spec.abort`).
    pub spec_op_latency: u64,
}

impl CoreConfig {
    /// Base functional-unit latency of an instruction class, before memory
    /// hierarchy latency (loads/stores/allocs report 0 here; the hierarchy
    /// walk is charged separately).
    #[must_use]
    pub fn latency_of(&self, class: spice_ir::InstClass) -> u64 {
        use spice_ir::InstClass;
        match class {
            InstClass::IntAlu | InstClass::Other => 1,
            InstClass::IntMul => self.mul_latency,
            InstClass::IntDiv => self.div_latency,
            InstClass::Branch => self.branch_latency,
            InstClass::Load | InstClass::Store | InstClass::Alloc => 0,
            InstClass::Send | InstClass::Recv => 1,
            InstClass::Spec => self.spec_op_latency,
            InstClass::Resteer => 1,
        }
    }
}

/// Whole-machine configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of cores.
    pub cores: usize,
    /// Per-core functional-unit model.
    pub core: CoreConfig,
    /// Private first-level data cache.
    pub l1d: CacheConfig,
    /// Private second-level cache.
    pub l2: CacheConfig,
    /// Shared third-level cache.
    pub l3: CacheConfig,
    /// Main memory latency in cycles (Table 1: 141).
    pub memory_latency: u64,
    /// Latency, in cycles, for a scalar sent by one core to become visible
    /// to a receive on another core. The paper's cores communicate through
    /// the shared, snooped L3 bus; the default approximates an L3 round trip.
    pub inter_core_latency: u64,
    /// Number of words the simulated heap provides beyond the program's
    /// static data.
    pub heap_words: usize,
    /// Upper bound on simulated cycles before a run is declared hung.
    pub max_cycles: u64,
    /// Whether the memory system tracks speculative read sets and committed
    /// write sets for cross-chunk conflict detection (paper §3, "Conflict
    /// Detection"). Answering a `spec.check` requires it; with it off the
    /// machine behaves like the pre-subsystem model (no conflicts reported).
    pub conflict_detection: bool,
    /// Conflict-detection granularity as a power-of-two word count per
    /// tracked grain: `0` is exact word detection, `3` models 64-byte-line
    /// hardware tag comparison (with its false conflicts between distinct
    /// words sharing a line).
    pub conflict_granularity_log2: u8,
}

impl MachineConfig {
    /// The paper's Table 1 machine: a 4-core Itanium 2 CMP.
    #[must_use]
    pub fn itanium2_cmp() -> Self {
        MachineConfig {
            cores: 4,
            core: CoreConfig {
                issue_width: 6,
                mul_latency: 3,
                div_latency: 24,
                branch_latency: 1,
                spec_op_latency: 2,
            },
            l1d: CacheConfig {
                size_bytes: 16 * 1024,
                assoc: 4,
                line_bytes: 64,
                hit_latency: 1,
                write_policy: WritePolicy::WriteThrough,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                assoc: 8,
                line_bytes: 128,
                hit_latency: 7, // Table 1 gives 5/7/9 depending on access type
                write_policy: WritePolicy::WriteBack,
            },
            l3: CacheConfig {
                size_bytes: 1536 * 1024,
                assoc: 12,
                line_bytes: 128,
                hit_latency: 12,
                write_policy: WritePolicy::WriteBack,
            },
            memory_latency: 141,
            inter_core_latency: 16,
            heap_words: 4 * 1024 * 1024,
            max_cycles: 2_000_000_000,
            conflict_detection: true,
            conflict_granularity_log2: 0,
        }
    }

    /// Same machine with a different core count (the paper reports 2- and
    /// 4-thread results on the same substrate).
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// A tiny machine for unit tests: 1-cycle memory, no caches to speak of.
    #[must_use]
    pub fn test_tiny(cores: usize) -> Self {
        MachineConfig {
            cores,
            core: CoreConfig {
                issue_width: 1,
                mul_latency: 1,
                div_latency: 1,
                branch_latency: 1,
                spec_op_latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                line_bytes: 64,
                hit_latency: 1,
                write_policy: WritePolicy::WriteThrough,
            },
            l2: CacheConfig {
                size_bytes: 4096,
                assoc: 2,
                line_bytes: 64,
                hit_latency: 2,
                write_policy: WritePolicy::WriteBack,
            },
            l3: CacheConfig {
                size_bytes: 16 * 1024,
                assoc: 4,
                line_bytes: 64,
                hit_latency: 4,
                write_policy: WritePolicy::WriteBack,
            },
            memory_latency: 10,
            inter_core_latency: 4,
            heap_words: 64 * 1024,
            max_cycles: 50_000_000,
            conflict_detection: true,
            conflict_granularity_log2: 0,
        }
    }

    /// Renders the configuration as the rows of the paper's Table 1.
    #[must_use]
    pub fn table1_rows(&self) -> Vec<(String, String)> {
        vec![
            (
                "Core Functional Units".to_string(),
                format!("{} issue, in-order model", self.core.issue_width),
            ),
            (
                "L1D Cache".to_string(),
                format!(
                    "{} cycle, {} KB, {}-way, {}B lines, {}",
                    self.l1d.hit_latency,
                    self.l1d.size_bytes / 1024,
                    self.l1d.assoc,
                    self.l1d.line_bytes,
                    match self.l1d.write_policy {
                        WritePolicy::WriteThrough => "write-through",
                        WritePolicy::WriteBack => "write-back",
                    }
                ),
            ),
            (
                "L2 Cache".to_string(),
                format!(
                    "{} cycles, {} KB, {}-way, {}B lines, write-back",
                    self.l2.hit_latency,
                    self.l2.size_bytes / 1024,
                    self.l2.assoc,
                    self.l2.line_bytes
                ),
            ),
            (
                "Shared L3 Cache".to_string(),
                format!(
                    "{} cycles, {:.1} MB, {}-way, {}B lines, write-back",
                    self.l3.hit_latency,
                    self.l3.size_bytes as f64 / (1024.0 * 1024.0),
                    self.l3.assoc,
                    self.l3.line_bytes
                ),
            ),
            (
                "Main Memory".to_string(),
                format!("Latency: {} cycles", self.memory_latency),
            ),
            (
                "Coherence".to_string(),
                "Snoop-based, write-invalidate protocol".to_string(),
            ),
            (
                "Inter-core communication".to_string(),
                format!("{} cycles (shared L3 bus)", self.inter_core_latency),
            ),
            ("Cores".to_string(), format!("{}", self.cores)),
        ]
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::itanium2_cmp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_machine_matches_paper_parameters() {
        let c = MachineConfig::itanium2_cmp();
        assert_eq!(c.cores, 4);
        assert_eq!(c.core.issue_width, 6);
        assert_eq!(c.l1d.size_bytes, 16 * 1024);
        assert_eq!(c.l1d.assoc, 4);
        assert_eq!(c.l1d.line_bytes, 64);
        assert_eq!(c.l1d.hit_latency, 1);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l2.assoc, 8);
        assert_eq!(c.l3.size_bytes, 1536 * 1024);
        assert_eq!(c.l3.assoc, 12);
        assert_eq!(c.memory_latency, 141);
    }

    #[test]
    fn cache_sets_divide_evenly() {
        let c = MachineConfig::itanium2_cmp();
        assert_eq!(c.l1d.sets(), 16 * 1024 / 64 / 4);
        assert_eq!(c.l2.sets(), 256 * 1024 / 128 / 8);
        assert_eq!(c.l3.sets(), 1536 * 1024 / 128 / 12);
    }

    #[test]
    fn with_cores_only_changes_core_count() {
        let c = MachineConfig::itanium2_cmp().with_cores(2);
        assert_eq!(c.cores, 2);
        assert_eq!(c.memory_latency, 141);
    }

    #[test]
    fn table1_rows_mention_all_levels() {
        let rows = MachineConfig::itanium2_cmp().table1_rows();
        let joined: String = rows.iter().map(|(k, v)| format!("{k}: {v}\n")).collect();
        assert!(joined.contains("L1D"));
        assert!(joined.contains("L2"));
        assert!(joined.contains("L3"));
        assert!(joined.contains("141"));
        assert!(joined.contains("write-invalidate"));
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn bad_cache_geometry_panics() {
        let c = CacheConfig {
            size_bytes: 100,
            assoc: 3,
            line_bytes: 64,
            hit_latency: 1,
            write_policy: WritePolicy::WriteBack,
        };
        let _ = c.sets();
    }
}
