//! # spice-sim — multi-core timing simulator for the Spice reproduction
//!
//! The CGO 2008 Spice paper evaluates its transformation on a cycle-accurate
//! 4-core Itanium 2 CMP model (Table 1) built in the Liberty Simulation
//! Environment. This crate provides the equivalent substrate for the
//! reproduction: a cycle-exact, event-driven multi-core machine that
//! executes pre-decoded [`spice_ir`] programs with
//!
//! * the Table 1 cache hierarchy and latencies ([`config::MachineConfig`],
//!   [`cache::MemoryHierarchy`]),
//! * inter-core scalar channels with a configurable communication latency
//!   ([`machine::ChannelNet`]),
//! * per-core speculative store buffers with commit/abort and read/write-set
//!   conflict checks ([`specbuf::SpecBuffer`]) — the paper's §3 architectural
//!   support for speculative state,
//! * the remote `resteer` mechanism used to squash mis-speculated threads,
//! * per-core statistics (stall breakdowns, cache hit levels, retired
//!   instruction mixes) and an optional activity trace from which the
//!   paper's execution-schedule figures can be redrawn.
//!
//! Absolute cycle counts are not expected to match the authors' Itanium
//! testbed; the structural effects the paper's argument rests on (pointer
//! chasing misses on the critical path, communication latency between cores,
//! squash overhead) are modelled directly.
//!
//! ## Example: timing a two-thread producer/consumer
//!
//! ```
//! use spice_ir::builder::FunctionBuilder;
//! use spice_ir::{Operand, Program};
//! use spice_sim::{Machine, MachineConfig};
//!
//! let mut program = Program::new();
//! let mut producer = FunctionBuilder::new("producer");
//! producer.send(0i64, 41i64);
//! producer.ret(None);
//! let pf = program.add_func(producer.finish());
//!
//! let mut consumer = FunctionBuilder::new("consumer");
//! let v = consumer.recv(0i64);
//! let r = consumer.binop(spice_ir::BinOp::Add, v, 1i64);
//! consumer.ret(Some(Operand::Reg(r)));
//! let cf = program.add_func(consumer.finish());
//!
//! let mut machine = Machine::new(MachineConfig::itanium2_cmp().with_cores(2), program);
//! machine.spawn(0, pf, &[]).unwrap();
//! machine.spawn(1, cf, &[]).unwrap();
//! let summary = machine.run().unwrap();
//! assert_eq!(machine.return_value(1), Some(42));
//! assert!(summary.cycles > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod config;
pub mod machine;
pub mod specbuf;
pub mod stats;

pub use config::{CacheConfig, CoreConfig, MachineConfig, WritePolicy};
pub use machine::{
    ActivityTrace, CoreReport, CycleAttribution, Machine, MachineSnapshot, RunSummary, SimError,
};
pub use specbuf::SpecBuffer;
pub use stats::{geomean, speedup, InvocationStats};
