//! Set-associative cache models and the three-level memory hierarchy of the
//! Table 1 machine.
//!
//! The caches are *tag-only*: functional data lives in the shared
//! [`spice_ir::interp::FlatMemory`]; the hierarchy only decides how many
//! cycles an access costs and tracks coherence invalidations. That is exactly
//! the fidelity the paper's results depend on — the pointer-chasing loads of
//! the evaluated loops are on the critical path because they miss, not
//! because of the miss handling micro-architecture.

use serde::{Deserialize, Serialize};

use crate::config::{CacheConfig, MachineConfig};

/// Word size of the IR memory in bytes (all IR values are 64-bit words).
pub const WORD_BYTES: i64 = 8;

/// A single set-associative, LRU, tag-only cache.
#[derive(Debug, Clone)]
pub struct Cache {
    line_words: i64,
    sets: usize,
    assoc: usize,
    /// `log2(line_words)` when the line size is a power-of-two number of
    /// words (every real configuration), letting the per-access line/set
    /// arithmetic be shifts and masks instead of two hardware divisions.
    line_shift: Option<u32>,
    /// `sets - 1` when the set count is a power of two.
    set_mask: Option<i64>,
    /// Flat tag store: `tags[set * assoc ..][.. assoc]` holds the set's
    /// resident line addresses as an occupied prefix in LRU order
    /// (most-recently-used last), padded with [`EMPTY_TAG`]. One allocation,
    /// no per-set vector indirection on the access path.
    tags: Vec<i64>,
    hits: u64,
    misses: u64,
}

/// Sentinel marking an unoccupied way. No reachable word address maps to
/// this line index (it would require an address below `i64::MIN + 63`).
const EMPTY_TAG: i64 = i64::MIN;

impl Cache {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(config: &CacheConfig) -> Self {
        let line_words = (config.line_bytes as i64) / WORD_BYTES;
        let sets = config.sets();
        Cache {
            line_words,
            sets,
            assoc: config.assoc,
            line_shift: (line_words > 0 && line_words.count_ones() == 1)
                .then(|| line_words.trailing_zeros()),
            set_mask: (sets > 0 && sets.count_ones() == 1).then_some(sets as i64 - 1),
            tags: vec![EMPTY_TAG; sets * config.assoc],
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn line_of(&self, word_addr: i64) -> i64 {
        // An arithmetic right shift is exactly floor-division by a
        // power-of-two divisor, which is what `div_euclid` computes.
        match self.line_shift {
            Some(s) => word_addr >> s,
            None => word_addr.div_euclid(self.line_words),
        }
    }

    #[inline]
    fn set_of(&self, line: i64) -> usize {
        match self.set_mask {
            Some(m) => (line & m) as usize,
            None => (line.rem_euclid(self.sets as i64)) as usize,
        }
    }

    /// Accesses `word_addr`, updating LRU state, and returns `true` on a hit.
    /// On a miss the line is filled (allocate-on-miss for both reads and
    /// writes).
    pub fn access(&mut self, word_addr: i64) -> bool {
        let line = self.line_of(word_addr);
        let set = self.set_of(line);
        debug_assert_ne!(line, EMPTY_TAG);
        let ways = &mut self.tags[set * self.assoc..(set + 1) * self.assoc];
        // Occupied prefix scan: find the line or the end of the prefix.
        let mut len = ways.len();
        let mut found = None;
        for (k, &t) in ways.iter().enumerate() {
            if t == line {
                found = Some(k);
                break;
            }
            if t == EMPTY_TAG {
                len = k;
                break;
            }
        }
        match found {
            Some(k) => {
                // Hit: rotate the line to the MRU end of the occupied
                // prefix (same order the remove+push of a Vec produced).
                let prefix_end = ways[k..].iter().position(|&t| t == EMPTY_TAG);
                let end = k + prefix_end.unwrap_or(ways.len() - k);
                ways[k..end].rotate_left(1);
                self.hits += 1;
                true
            }
            None => {
                if len == ways.len() {
                    // Full set: evict LRU (front), shift, fill at MRU end.
                    ways.rotate_left(1);
                    let last = ways.len() - 1;
                    ways[last] = line;
                } else {
                    ways[len] = line;
                }
                self.misses += 1;
                false
            }
        }
    }

    /// Probes for `word_addr` without updating LRU or fill state.
    #[must_use]
    pub fn contains(&self, word_addr: i64) -> bool {
        let line = self.line_of(word_addr);
        let set = self.set_of(line);
        self.tags[set * self.assoc..(set + 1) * self.assoc].contains(&line)
    }

    /// Invalidates the line containing `word_addr` if present (coherence).
    pub fn invalidate(&mut self, word_addr: i64) {
        let line = self.line_of(word_addr);
        let set = self.set_of(line);
        let ways = &mut self.tags[set * self.assoc..(set + 1) * self.assoc];
        if let Some(k) = ways.iter().position(|&t| t == line) {
            // Preserve the order of the remaining occupied prefix.
            ways[k..].rotate_left(1);
            let last = ways.len() - 1;
            ways[last] = EMPTY_TAG;
        }
    }

    /// Drops every line (used when a machine is reset between runs while the
    /// caller wants cold caches).
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY_TAG);
    }

    /// Number of hits recorded so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses recorded so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Per-access outcome of a hierarchy walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HitLevel {
    /// Satisfied by the private L1 data cache.
    L1,
    /// Satisfied by the private L2 cache.
    L2,
    /// Satisfied by the shared L3 cache.
    L3,
    /// Went to main memory.
    Memory,
}

/// Aggregate counters of one core's memory activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccessStats {
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Loads/stores satisfied at each level.
    pub l1_hits: u64,
    /// Accesses satisfied by the L2.
    pub l2_hits: u64,
    /// Accesses satisfied by the shared L3.
    pub l3_hits: u64,
    /// Accesses that went to main memory.
    pub memory_accesses: u64,
}

/// The full memory hierarchy: per-core L1 + L2, shared L3, flat latency main
/// memory, write-invalidate coherence between the private levels.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    l1_latency: u64,
    l2_latency: u64,
    l3_latency: u64,
    memory_latency: u64,
    stats: Vec<MemAccessStats>,
}

impl MemoryHierarchy {
    /// Builds the hierarchy for `config.cores` cores.
    #[must_use]
    pub fn new(config: &MachineConfig) -> Self {
        MemoryHierarchy {
            l1: (0..config.cores).map(|_| Cache::new(&config.l1d)).collect(),
            l2: (0..config.cores).map(|_| Cache::new(&config.l2)).collect(),
            l3: Cache::new(&config.l3),
            l1_latency: config.l1d.hit_latency,
            l2_latency: config.l2.hit_latency,
            l3_latency: config.l3.hit_latency,
            memory_latency: config.memory_latency,
            stats: vec![MemAccessStats::default(); config.cores],
        }
    }

    /// Simulates a load by `core` from `word_addr`; returns the latency in
    /// cycles and the level that satisfied it.
    pub fn load(&mut self, core: usize, word_addr: i64) -> (u64, HitLevel) {
        self.stats[core].loads += 1;
        self.access(core, word_addr)
    }

    /// Simulates a store by `core` to `word_addr`; returns the latency in
    /// cycles charged to the core. Stores invalidate the line in every other
    /// core's private caches (write-invalidate coherence).
    pub fn store(&mut self, core: usize, word_addr: i64) -> (u64, HitLevel) {
        self.stats[core].stores += 1;
        let result = self.access(core, word_addr);
        for other in 0..self.l1.len() {
            if other != core {
                self.l1[other].invalidate(word_addr);
                self.l2[other].invalidate(word_addr);
            }
        }
        result
    }

    fn access(&mut self, core: usize, word_addr: i64) -> (u64, HitLevel) {
        if self.l1[core].access(word_addr) {
            self.stats[core].l1_hits += 1;
            return (self.l1_latency, HitLevel::L1);
        }
        if self.l2[core].access(word_addr) {
            self.stats[core].l2_hits += 1;
            return (self.l1_latency + self.l2_latency, HitLevel::L2);
        }
        if self.l3.access(word_addr) {
            self.stats[core].l3_hits += 1;
            return (
                self.l1_latency + self.l2_latency + self.l3_latency,
                HitLevel::L3,
            );
        }
        self.stats[core].memory_accesses += 1;
        (
            self.l1_latency + self.l2_latency + self.l3_latency + self.memory_latency,
            HitLevel::Memory,
        )
    }

    /// Per-core access statistics.
    #[must_use]
    pub fn stats(&self, core: usize) -> MemAccessStats {
        self.stats[core]
    }

    /// Clears cache contents but keeps statistics (used between invocations
    /// if cold caches are wanted).
    pub fn flush(&mut self) {
        for c in &mut self.l1 {
            c.flush();
        }
        for c in &mut self.l2 {
            c.flush();
        }
        self.l3.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WritePolicy;

    fn small_cache(assoc: usize, lines: usize) -> Cache {
        Cache::new(&CacheConfig {
            size_bytes: 64 * lines,
            assoc,
            line_bytes: 64,
            hit_latency: 1,
            write_policy: WritePolicy::WriteBack,
        })
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = small_cache(2, 4);
        assert!(!c.access(100));
        assert!(c.access(100));
        assert!(c.access(101)); // same 8-word line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        // 2 sets x 2 ways; lines map to sets by parity of line index.
        let mut c = small_cache(2, 4);
        // Three distinct lines in the same set (line indices 0, 2, 4 -> set 0).
        assert!(!c.access(0)); // line 0
        assert!(!c.access(16)); // line 2
        assert!(c.access(0)); // line 0 now MRU
        assert!(!c.access(32)); // line 4 evicts line 2 (LRU)
        assert!(c.access(0));
        assert!(!c.access(16)); // line 2 was evicted
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_cache(2, 4);
        c.access(100);
        assert!(c.contains(100));
        c.invalidate(100);
        assert!(!c.contains(100));
    }

    #[test]
    fn hierarchy_latencies_increase_with_level() {
        let cfg = MachineConfig::itanium2_cmp();
        let mut h = MemoryHierarchy::new(&cfg);
        let (lat_miss, level) = h.load(0, 50_000);
        assert_eq!(level, HitLevel::Memory);
        assert_eq!(
            lat_miss,
            cfg.l1d.hit_latency + cfg.l2.hit_latency + cfg.l3.hit_latency + cfg.memory_latency
        );
        let (lat_hit, level) = h.load(0, 50_000);
        assert_eq!(level, HitLevel::L1);
        assert_eq!(lat_hit, cfg.l1d.hit_latency);
        assert!(lat_hit < lat_miss);
    }

    #[test]
    fn store_invalidates_other_cores() {
        let cfg = MachineConfig::itanium2_cmp();
        let mut h = MemoryHierarchy::new(&cfg);
        // Core 1 warms the line.
        let _ = h.load(1, 8_000);
        let (lat, _) = h.load(1, 8_000);
        assert_eq!(lat, cfg.l1d.hit_latency);
        // Core 0 writes the same line -> core 1 must re-fetch (from L3, which
        // now holds the line).
        let _ = h.store(0, 8_000);
        let (lat_after, level) = h.load(1, 8_000);
        assert!(lat_after > cfg.l1d.hit_latency);
        assert_ne!(level, HitLevel::L1);
    }

    #[test]
    fn stats_accumulate_per_core() {
        let cfg = MachineConfig::test_tiny(2);
        let mut h = MemoryHierarchy::new(&cfg);
        let _ = h.load(0, 2000);
        let _ = h.load(0, 2000);
        let _ = h.store(1, 3000);
        assert_eq!(h.stats(0).loads, 2);
        assert_eq!(h.stats(0).l1_hits, 1);
        assert_eq!(h.stats(1).stores, 1);
        assert_eq!(h.stats(1).loads, 0);
    }

    #[test]
    fn flush_empties_all_levels() {
        let cfg = MachineConfig::test_tiny(1);
        let mut h = MemoryHierarchy::new(&cfg);
        let _ = h.load(0, 2000);
        h.flush();
        let (_, level) = h.load(0, 2000);
        assert_eq!(level, HitLevel::Memory);
    }
}
