//! Helpers for aggregating run summaries across invocations and computing
//! the derived quantities the paper reports (loop speedup, mis-speculation
//! rate, load-imbalance measures).

use serde::{Deserialize, Serialize};

use crate::machine::RunSummary;

/// Accumulates per-invocation run summaries into whole-loop statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InvocationStats {
    /// Simulated cycles of every invocation.
    pub cycles_per_invocation: Vec<u64>,
    /// Whether each invocation mis-speculated (any thread squashed).
    pub misspeculated: Vec<bool>,
    /// Per-invocation, per-core retired instruction counts (a proxy for the
    /// work distribution the paper's load balancer equalizes).
    pub work_per_core: Vec<Vec<u64>>,
}

impl InvocationStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one invocation.
    pub fn record(&mut self, summary: &RunSummary, misspeculated: bool) {
        self.cycles_per_invocation.push(summary.cycles);
        self.misspeculated.push(misspeculated);
        self.work_per_core
            .push(summary.cores.iter().map(|c| c.retired).collect());
    }

    /// Total simulated cycles across all invocations.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.cycles_per_invocation.iter().sum()
    }

    /// Number of invocations recorded.
    #[must_use]
    pub fn invocations(&self) -> usize {
        self.cycles_per_invocation.len()
    }

    /// Fraction of invocations that mis-speculated (paper §5 reports ~25%
    /// for 458.sjeng and <1% for the other three loops).
    #[must_use]
    pub fn misspeculation_rate(&self) -> f64 {
        if self.misspeculated.is_empty() {
            return 0.0;
        }
        let bad = self.misspeculated.iter().filter(|&&b| b).count();
        bad as f64 / self.misspeculated.len() as f64
    }

    /// Mean, over invocations, of the coefficient of variation of per-core
    /// work — 0 means perfectly balanced chunks (shared definition:
    /// [`spice_ir::exec::work_imbalance`]).
    #[must_use]
    pub fn load_imbalance(&self) -> f64 {
        spice_ir::exec::work_imbalance(&self.work_per_core)
    }
}

/// Speedup of `parallel` cycles relative to `sequential` cycles.
#[must_use]
pub fn speedup(sequential_cycles: u64, parallel_cycles: u64) -> f64 {
    if parallel_cycles == 0 {
        return 0.0;
    }
    sequential_cycles as f64 / parallel_cycles as f64
}

/// Geometric mean of a slice of speedups (the paper's summary statistic in
/// Figure 7).
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{CoreReport, RunSummary};

    fn summary(cycles: u64, work: &[u64]) -> RunSummary {
        RunSummary {
            cycles,
            cores: work
                .iter()
                .map(|&w| CoreReport {
                    retired: w,
                    ..CoreReport::default()
                })
                .collect(),
        }
    }

    #[test]
    fn totals_and_rates() {
        let mut s = InvocationStats::new();
        s.record(&summary(100, &[50, 50]), false);
        s.record(&summary(300, &[10, 90]), true);
        assert_eq!(s.total_cycles(), 400);
        assert_eq!(s.invocations(), 2);
        assert!((s.misspeculation_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn imbalance_zero_when_equal() {
        let mut s = InvocationStats::new();
        s.record(&summary(10, &[40, 40, 40, 40]), false);
        assert!(s.load_imbalance() < 1e-12);
        let mut s2 = InvocationStats::new();
        s2.record(&summary(10, &[10, 70]), false);
        assert!(s2.load_imbalance() > 0.5);
    }

    #[test]
    fn speedup_and_geomean() {
        assert!((speedup(200, 100) - 2.0).abs() < 1e-12);
        assert_eq!(speedup(100, 0), 0.0);
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn single_core_invocations_do_not_affect_imbalance() {
        let mut s = InvocationStats::new();
        s.record(&summary(10, &[100]), false);
        assert_eq!(s.load_imbalance(), 0.0);
    }
}
