//! Integration-test crate for the Spice reproduction: the tests live in
//! `tests/` and exercise the whole stack (workloads → analysis →
//! transformation → simulation → native runtime).
