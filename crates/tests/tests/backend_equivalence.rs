//! Backend-equivalence properties: the timing-simulator backend and the
//! native-thread backend, driven through the one shared
//! `ExecutionBackend`/`run_workload_on` call site, must produce identical
//! reductions and live-outs on the `linked_list_min` (otter) and
//! `tree_update` (mcf) example loops — for randomized workload
//! configurations, thread counts, and inter-invocation mutations.
//!
//! "Identical" is checked two ways per case:
//! * every invocation's kernel return value (the loop's reduction) matches
//!   between backends, and
//! * the workload's global data region (node payloads, live-out stores like
//!   mcf's potentials and otter's argmin cell) is bit-identical afterwards.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spice_core::backend::{make_backend, BackendChoice};
use spice_workloads::{
    run_workload_on, McfConfig, McfWorkload, OtterConfig, OtterWorkload, SpiceWorkload,
};

/// Runs one workload instance per backend and asserts equivalence. `probe`
/// builds a throwaway instance to measure the workload's global data region
/// (backend-added globals, like the sim's predictor arrays, live past it).
fn assert_backends_equivalent(
    label: &str,
    threads: usize,
    mut make_workload: impl FnMut() -> Box<dyn SpiceWorkload>,
) {
    let data_end = {
        let mut probe = make_workload();
        probe.build().program.data_end() as usize
    };

    let mut reference: Option<(Vec<Option<i64>>, Vec<i64>)> = None;
    for choice in [BackendChoice::SimTiny, BackendChoice::Native] {
        let mut workload = make_workload();
        let mut backend = make_backend(choice, threads);
        let summary = run_workload_on(workload.as_mut(), backend.as_mut())
            .unwrap_or_else(|e| panic!("{label} on {choice}: {e}"));
        let data: Vec<i64> = backend.mem().words()[..data_end].to_vec();
        match &reference {
            None => reference = Some((summary.return_values, data)),
            Some((ref_returns, ref_data)) => {
                assert_eq!(
                    ref_returns, &summary.return_values,
                    "{label} ({threads} threads): reductions diverged between backends"
                );
                assert_eq!(
                    ref_data, &data,
                    "{label} ({threads} threads): live-out memory diverged between backends"
                );
            }
        }
    }
}

/// Property: for random list lengths, mutation rates and thread counts, the
/// `linked_list_min` loop (otter's `find_lightest_cl`) computes identical
/// minima and identical final list memory on both backends.
#[test]
fn linked_list_min_equivalent_across_backends() {
    for case in 0u64..6 {
        let mut rng = StdRng::seed_from_u64(0x11_57 ^ (case * 6151));
        let config = OtterConfig {
            initial_len: rng.gen_range(60..220usize),
            inserts_per_invocation: rng.gen_range(1..5usize),
            invocations: rng.gen_range(4..9usize),
            seed: rng.gen_range(1..1_000_000u64),
        };
        let threads = rng.gen_range(2..5usize);
        assert_backends_equivalent("linked_list_min", threads, || {
            Box::new(OtterWorkload::new(config.clone()))
        });
    }
}

/// Property: for random tree sizes, cost churn and re-parenting rates, the
/// `tree_update` loop (mcf's `refresh_potential`) computes identical
/// checksums and — critically, since every visited node is *written*
/// speculatively — identical potentials in every node on both backends.
#[test]
fn tree_update_equivalent_across_backends() {
    for case in 0u64..6 {
        let mut rng = StdRng::seed_from_u64(0x7EEE ^ (case * 3571));
        let config = McfConfig {
            nodes: rng.gen_range(50..200usize),
            invocations: rng.gen_range(4..9usize),
            cost_updates_per_invocation: rng.gen_range(1..8usize),
            reparents_per_invocation: rng.gen_range(0..3usize),
            seed: rng.gen_range(1..1_000_000u64),
        };
        let threads = rng.gen_range(2..5usize);
        assert_backends_equivalent("tree_update", threads, || {
            Box::new(McfWorkload::new(config.clone()))
        });
    }
}

/// Eight threads also agree (more chunks, more boundaries, more commits).
#[test]
fn eight_threads_agree_on_both_example_loops() {
    assert_backends_equivalent("linked_list_min", 8, || {
        Box::new(OtterWorkload::new(OtterConfig {
            initial_len: 200,
            inserts_per_invocation: 2,
            invocations: 6,
            seed: 0x88,
        }))
    });
    assert_backends_equivalent("tree_update", 8, || {
        Box::new(McfWorkload::new(McfConfig {
            nodes: 150,
            invocations: 6,
            cost_updates_per_invocation: 4,
            reparents_per_invocation: 1,
            seed: 0x88,
        }))
    });
}
