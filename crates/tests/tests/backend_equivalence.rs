//! Backend-equivalence properties: the timing-simulator backend and the
//! native-thread backend, driven through the one shared
//! `ExecutionBackend`/`run_workload_on` call site, must produce identical
//! reductions and live-outs on the `linked_list_min` (otter) and
//! `tree_update` (mcf) example loops — for randomized workload
//! configurations, thread counts, and inter-invocation mutations.
//!
//! "Identical" is checked two ways per case:
//! * every invocation's kernel return value (the loop's reduction) matches
//!   between backends, and
//! * the workload's global data region (node payloads, live-out stores like
//!   mcf's potentials and otter's argmin cell) is bit-identical afterwards.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spice_core::backend::{make_backend, BackendChoice};
use spice_workloads::{
    run_workload_on, McfConfig, McfWorkload, OtterConfig, OtterWorkload, SpiceWorkload,
};

/// Runs one workload instance per backend and asserts equivalence. `probe`
/// builds a throwaway instance to measure the workload's global data region
/// (backend-added globals, like the sim's predictor arrays, live past it).
fn assert_backends_equivalent(
    label: &str,
    threads: usize,
    mut make_workload: impl FnMut() -> Box<dyn SpiceWorkload>,
) {
    let data_end = {
        let mut probe = make_workload();
        probe.build().program.data_end() as usize
    };

    let mut reference: Option<(Vec<Option<i64>>, Vec<i64>)> = None;
    for choice in [BackendChoice::SimTiny, BackendChoice::Native] {
        let mut workload = make_workload();
        let mut backend = make_backend(choice, threads);
        let summary = run_workload_on(workload.as_mut(), backend.as_mut())
            .unwrap_or_else(|e| panic!("{label} on {choice}: {e}"));
        let data: Vec<i64> = backend.mem().words()[..data_end].to_vec();
        match &reference {
            None => reference = Some((summary.return_values, data)),
            Some((ref_returns, ref_data)) => {
                assert_eq!(
                    ref_returns, &summary.return_values,
                    "{label} ({threads} threads): reductions diverged between backends"
                );
                assert_eq!(
                    ref_data, &data,
                    "{label} ({threads} threads): live-out memory diverged between backends"
                );
            }
        }
    }
}

/// Property: for random list lengths, mutation rates and thread counts, the
/// `linked_list_min` loop (otter's `find_lightest_cl`) computes identical
/// minima and identical final list memory on both backends.
#[test]
fn linked_list_min_equivalent_across_backends() {
    for case in 0u64..6 {
        let mut rng = StdRng::seed_from_u64(0x11_57 ^ (case * 6151));
        let config = OtterConfig {
            initial_len: rng.gen_range(60..220usize),
            inserts_per_invocation: rng.gen_range(1..5usize),
            invocations: rng.gen_range(4..9usize),
            seed: rng.gen_range(1..1_000_000u64),
        };
        let threads = rng.gen_range(2..5usize);
        assert_backends_equivalent("linked_list_min", threads, || {
            Box::new(OtterWorkload::new(config.clone()))
        });
    }
}

/// Property: for random tree sizes, cost churn and re-parenting rates, the
/// `tree_update` loop (mcf's `refresh_potential`) computes identical
/// checksums and — critically, since every visited node is *written*
/// speculatively — identical potentials in every node on both backends.
#[test]
fn tree_update_equivalent_across_backends() {
    for case in 0u64..6 {
        let mut rng = StdRng::seed_from_u64(0x7EEE ^ (case * 3571));
        let config = McfConfig {
            nodes: rng.gen_range(50..200usize),
            invocations: rng.gen_range(4..9usize),
            cost_updates_per_invocation: rng.gen_range(1..8usize),
            reparents_per_invocation: rng.gen_range(0..3usize),
            seed: rng.gen_range(1..1_000_000u64),
        };
        let threads = rng.gen_range(2..5usize);
        assert_backends_equivalent("tree_update", threads, || {
            Box::new(McfWorkload::new(config.clone()))
        });
    }
}

/// Property: the *predictor plans* — not just the results — are identical
/// across backends. The centralized half of Algorithm 2 now runs on the
/// measured substrate in both implementations (generated IR on core 0 in
/// the simulator, the pool's dedicated thread in the native runtime), so
/// nothing host-side keeps them honest anymore: this test pins them to one
/// another, assignment for assignment, across every invocation of a skewed
/// workload (the first invocation's work vector is the fully starved
/// `[N, 0, …, 0]`, later ones spread out as predictions converge).
#[test]
fn predictor_plans_identical_across_backends() {
    use spice_core::backend::SimBackend;
    use spice_ir::exec::{ExecutionBackend, LoadOptions};
    use spice_runtime::NativeLoopBackend;

    for (case, threads) in [(0u64, 2usize), (1, 3), (2, 4)] {
        let config = OtterConfig {
            initial_len: 90 + case as usize * 40,
            inserts_per_invocation: 3,
            invocations: 6,
            seed: 0x9_1a7 ^ case,
        };
        let mut sim_wl: Box<dyn SpiceWorkload> = Box::new(OtterWorkload::new(config.clone()));
        let mut nat_wl: Box<dyn SpiceWorkload> = Box::new(OtterWorkload::new(config.clone()));
        let mut sim = SimBackend::tiny(threads);
        let mut nat = NativeLoopBackend::new(threads);

        let built = sim_wl.build();
        let mut options = LoadOptions::new(
            spice_workloads::DEFAULT_WORKLOAD_HEAP_WORDS,
            Some(sim_wl.expected_iterations()),
        );
        options.loop_header = built.loop_header_hint;
        sim.load(built.program, built.kernel, options).unwrap();
        let built = nat_wl.build();
        let mut nat_options = LoadOptions::new(
            spice_workloads::DEFAULT_WORKLOAD_HEAP_WORDS,
            Some(nat_wl.expected_iterations()),
        );
        nat_options.loop_header = built.loop_header_hint;
        nat.load(built.program, built.kernel, nat_options).unwrap();

        let mut sim_args = sim_wl.init(sim.mem_mut());
        let mut nat_args = nat_wl.init(nat.mem_mut());
        assert_eq!(sim_args, nat_args, "drivers must start identically");

        let mut inv = 0usize;
        loop {
            let rs = sim.run_invocation(&sim_args).unwrap();
            let rn = nat.run_invocation(&nat_args).unwrap();
            assert_eq!(
                rs.return_value, rn.return_value,
                "case {case}: results diverged at invocation {inv}"
            );
            // The plans are deterministic functions of the work vectors, so
            // pin those first for a sharper failure message.
            assert_eq!(
                rs.work_per_thread, rn.work_per_thread,
                "case {case}: work counters diverged at invocation {inv}"
            );
            let sim_plan: Vec<(usize, i64, usize)> = sim
                .last_plan()
                .expect("loaded")
                .iter()
                .map(|a| (a.tid, a.threshold, a.row))
                .collect();
            let nat_plan: Vec<(usize, i64, usize)> = nat
                .last_plan()
                .expect("loaded")
                .into_iter()
                .map(|(tid, threshold, row)| (tid, threshold as i64, row))
                .collect();
            assert_eq!(
                sim_plan, nat_plan,
                "case {case}: Assignment sequences diverged at invocation {inv}"
            );
            match (
                sim_wl.next_invocation(sim.mem_mut(), inv),
                nat_wl.next_invocation(nat.mem_mut(), inv),
            ) {
                (Some(a), Some(b)) => {
                    assert_eq!(a, b, "drivers must mutate identically");
                    sim_args = a;
                    nat_args = b;
                }
                (None, None) => break,
                _ => panic!("case {case}: drivers ended at different invocations"),
            }
            inv += 1;
        }
        assert!(inv >= 4, "case {case}: too few invocations exercised");
    }
}

/// Eight threads also agree (more chunks, more boundaries, more commits).
#[test]
fn eight_threads_agree_on_both_example_loops() {
    assert_backends_equivalent("linked_list_min", 8, || {
        Box::new(OtterWorkload::new(OtterConfig {
            initial_len: 200,
            inserts_per_invocation: 2,
            invocations: 6,
            seed: 0x88,
        }))
    });
    assert_backends_equivalent("tree_update", 8, || {
        Box::new(McfWorkload::new(McfConfig {
            nodes: 150,
            invocations: 6,
            cost_updates_per_invocation: 4,
            reparents_per_invocation: 1,
            seed: 0x88,
        }))
    });
}
