//! Cross-crate integration tests: every paper workload, analyzed,
//! transformed and simulated, must produce exactly the results of its
//! sequential execution, across thread counts and in the presence of
//! mis-speculation.

use spice_core::analysis::LoopAnalysis;
use spice_core::pipeline::{run_sequential, SpiceRunner};
use spice_core::transform::{SpiceOptions, SpiceTransform};
use spice_sim::{Machine, MachineConfig};
use spice_workloads::{paper_benchmarks_small, SpiceWorkload};

/// Drives a workload under Spice with `threads` threads, checking every
/// invocation's return value against the host-computed expectation and
/// against a sequential run of an identical workload instance.
fn check_workload(mut make: impl FnMut() -> Box<dyn SpiceWorkload>, threads: usize) {
    // Sequential reference.
    let mut seq = make();
    let built = seq.build();
    let mut seq_machine = Machine::new(MachineConfig::test_tiny(1), built.program);
    let mut seq_args = seq.init(seq_machine.mem_mut());
    let mut seq_results = Vec::new();
    let mut inv = 0usize;
    loop {
        let (_, ret) = run_sequential(&mut seq_machine, built.kernel, &seq_args).expect("seq run");
        seq_results.push(ret);
        match seq.next_invocation(seq_machine.mem_mut(), inv) {
            Some(a) => {
                seq_args = a;
                inv += 1;
            }
            None => break,
        }
    }

    // Spice run.
    let mut wl = make();
    let built = wl.build();
    let mut program = built.program;
    let analysis =
        LoopAnalysis::analyze_outermost(&program, built.kernel).expect("loop analyzable");
    let estimate = wl.expected_iterations();
    let spice = SpiceTransform::new(SpiceOptions::with_threads_and_estimate(threads, estimate))
        .apply(&mut program, &analysis)
        .expect("transformation applies");
    let mut machine = Machine::new(MachineConfig::test_tiny(threads), program);
    let mut args = wl.init(machine.mem_mut());
    let mut runner = SpiceRunner::new(spice);
    let mut inv = 0usize;
    loop {
        let expected_host = wl.expected_result(machine.mem());
        let report = runner
            .run_invocation(&mut machine, &args)
            .unwrap_or_else(|e| panic!("{} with {threads} threads: {e}", wl.name()));
        assert_eq!(
            report.return_value,
            seq_results[inv],
            "{} invocation {inv} with {threads} threads diverged from sequential",
            wl.name()
        );
        if let Some(e) = expected_host {
            assert_eq!(report.return_value, Some(e));
        }
        match wl.next_invocation(machine.mem_mut(), inv) {
            Some(a) => {
                args = a;
                inv += 1;
            }
            None => break,
        }
    }
    assert_eq!(inv + 1, seq_results.len());
}

#[test]
fn otter_matches_sequential_with_2_and_4_threads() {
    for threads in [2, 4] {
        check_workload(
            || {
                let mut v = paper_benchmarks_small();
                v.remove(1)
            },
            threads,
        );
    }
}

#[test]
fn ks_matches_sequential_with_2_and_4_threads() {
    for threads in [2, 4] {
        check_workload(
            || {
                let mut v = paper_benchmarks_small();
                v.remove(0)
            },
            threads,
        );
    }
}

#[test]
fn mcf_matches_sequential_with_2_and_4_threads() {
    for threads in [2, 4] {
        check_workload(
            || {
                let mut v = paper_benchmarks_small();
                v.remove(2)
            },
            threads,
        );
    }
}

#[test]
fn sjeng_matches_sequential_with_2_and_4_threads() {
    for threads in [2, 4] {
        check_workload(
            || {
                let mut v = paper_benchmarks_small();
                v.remove(3)
            },
            threads,
        );
    }
}

#[test]
fn eight_threads_also_work_on_otter() {
    check_workload(
        || {
            let mut v = paper_benchmarks_small();
            v.remove(1)
        },
        8,
    );
}

#[test]
fn sjeng_actually_misspeculates_sometimes() {
    // The paper reports ~25% of sjeng invocations mis-speculating; with the
    // reproduction's board-mutation probability the rate must be clearly
    // non-zero while correctness is preserved (covered by the test above).
    let mut wl = {
        let mut v = paper_benchmarks_small();
        v.remove(3)
    };
    let built = wl.build();
    let mut program = built.program;
    let analysis = LoopAnalysis::analyze_outermost(&program, built.kernel).unwrap();
    let estimate = wl.expected_iterations();
    let spice = SpiceTransform::new(SpiceOptions::with_threads_and_estimate(4, estimate))
        .apply(&mut program, &analysis)
        .unwrap();
    let mut machine = Machine::new(MachineConfig::test_tiny(4), program);
    let mut args = wl.init(machine.mem_mut());
    let mut runner = SpiceRunner::new(spice);
    let mut inv = 0usize;
    loop {
        runner.run_invocation(&mut machine, &args).unwrap();
        match wl.next_invocation(machine.mem_mut(), inv) {
            Some(a) => {
                args = a;
                inv += 1;
            }
            None => break,
        }
    }
    let rate = runner.stats().misspeculation_rate();
    assert!(
        rate > 0.05,
        "sjeng misspeculation rate suspiciously low: {rate}"
    );
    assert!(
        rate < 0.9,
        "sjeng misspeculation rate suspiciously high: {rate}"
    );
}
