//! Property-based integration tests: the Spice execution is equivalent to
//! sequential execution for randomized lists, mutations and thread counts,
//! and the transformation itself preserves structural invariants.
//!
//! The build environment has no registry access, so instead of `proptest`
//! these properties are driven by an in-repo case generator: a deterministic
//! RNG (`rand` stub, xoshiro256++) enumerates dozens of randomized cases per
//! property. Failures print the case seed, which reproduces the exact case.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spice_core::analysis::LoopAnalysis;
use spice_core::pipeline::{run_sequential, SpiceRunner};
use spice_core::transform::{SpiceOptions, SpiceTransform};
use spice_ir::builder::FunctionBuilder;
use spice_ir::verify::verify_program;
use spice_ir::{BinOp, FuncId, Operand, Program};
use spice_sim::{Machine, MachineConfig};

/// Builds the canonical list-minimum loop over `(weight, next)` nodes stored
/// in a global sized for `capacity` nodes.
fn list_min_program(capacity: i64) -> (Program, FuncId, i64) {
    let mut program = Program::new();
    let nodes = program.add_global("nodes", capacity * 2);
    let out = program.add_global("out", 1);
    let mut b = FunctionBuilder::new("list_min");
    let head = b.param();
    let pre = b.new_block();
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    let c = b.copy(head);
    let wm = b.copy(i64::MAX);
    let cm = b.copy(0i64);
    b.br(pre);
    b.switch_to(pre);
    b.br(header);
    b.switch_to(header);
    let done = b.binop(BinOp::Eq, c, 0i64);
    b.cond_br(done, exit, body);
    b.switch_to(body);
    let w = b.load(c, 0);
    let better = b.binop(BinOp::Lt, w, wm);
    let nw = b.select(better, w, wm);
    b.copy_into(wm, nw);
    let nc = b.select(better, c, cm);
    b.copy_into(cm, nc);
    let nx = b.load(c, 1);
    b.copy_into(c, nx);
    b.br(header);
    b.switch_to(exit);
    b.store(cm, out, 0);
    b.ret(Some(Operand::Reg(wm)));
    let f = program.add_func(b.finish());
    (program, f, nodes)
}

fn write_list(machine: &mut Machine, base: i64, order: &[usize], weights: &[i64]) -> i64 {
    for (pos, &slot) in order.iter().enumerate() {
        let addr = base + 2 * slot as i64;
        let next = if pos + 1 < order.len() {
            base + 2 * order[pos + 1] as i64
        } else {
            0
        };
        machine.mem_mut().write(addr, weights[slot]).unwrap();
        machine.mem_mut().write(addr + 1, next).unwrap();
    }
    order.first().map_or(0, |&s| base + 2 * s as i64)
}

/// Spice with a random thread count over random list contents and random
/// inter-invocation permutations always returns the same minimum as
/// sequential execution.
#[test]
fn spice_equals_sequential_on_random_lists() {
    for case in 0u64..24 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ (case * 7919));
        let n = rng.gen_range(3..120usize);
        let weights: Vec<i64> = (0..n).map(|_| rng.gen_range(1..1_000_000i64)).collect();
        let threads = rng.gen_range(2..5usize);
        let capacity = n as i64 + 2;

        // Invocation k uses a random permutation of the same node slots.
        let mut orders: Vec<Vec<usize>> = Vec::new();
        let mut order: Vec<usize> = (0..n).collect();
        orders.push(order.clone());
        for _ in 0..rng.gen_range(1..4usize) {
            for i in 0..order.len() {
                let j = rng.gen_range(0..order.len());
                order.swap(i, j);
            }
            orders.push(order.clone());
        }

        // Sequential reference over all invocations.
        let (seq_p, seq_f, seq_nodes) = list_min_program(capacity);
        let mut seq_m = Machine::new(MachineConfig::test_tiny(1), seq_p);
        let mut seq_results = Vec::new();
        for ord in &orders {
            let head = write_list(&mut seq_m, seq_nodes, ord, &weights);
            let (_, ret) = run_sequential(&mut seq_m, seq_f, &[head]).unwrap();
            seq_results.push(ret);
        }

        // Spice over the same sequence of lists.
        let (mut p, f, nodes) = list_min_program(capacity);
        let analysis = LoopAnalysis::analyze_outermost(&p, f).unwrap();
        let spice = SpiceTransform::new(SpiceOptions::with_threads_and_estimate(threads, n as u64))
            .apply(&mut p, &analysis)
            .unwrap();
        let mut machine = Machine::new(MachineConfig::test_tiny(threads), p);
        let mut runner = SpiceRunner::new(spice);
        for (k, ord) in orders.iter().enumerate() {
            let head = write_list(&mut machine, nodes, ord, &weights);
            let report = runner.run_invocation(&mut machine, &[head]).unwrap();
            assert_eq!(
                report.return_value, seq_results[k],
                "case {case} ({threads} threads, {n} nodes), invocation {k}"
            );
        }
    }
}

/// The transformation always yields a structurally valid program with the
/// expected number of workers, for any thread count.
#[test]
fn transformation_structurally_sound() {
    for threads in 2usize..9 {
        let (mut p, f, _) = list_min_program(16);
        let analysis = LoopAnalysis::analyze_outermost(&p, f).unwrap();
        let spice = SpiceTransform::new(SpiceOptions::with_threads(threads))
            .apply(&mut p, &analysis)
            .unwrap();
        assert_eq!(spice.workers.len(), threads - 1);
        assert!(verify_program(&p).is_ok());
        assert_eq!(spice.layout.threads, threads);
        // One sva row per worker, sized by the speculated live-ins.
        assert_eq!(spice.layout.spec_width, spice.speculated.len());
    }
}

/// The centralized predictor never produces an out-of-range sva row or a
/// non-positive threshold, whatever the observed work distribution.
#[test]
fn predictor_plans_are_in_range() {
    use spice_core::predictor::{plan, PredictorOptions};
    for case in 0u64..40 {
        let mut rng = StdRng::seed_from_u64(0x9E37 ^ (case * 131));
        let threads = rng.gen_range(2..8usize);
        let work: Vec<u64> = (0..threads).map(|_| rng.gen_range(0..5_000u64)).collect();
        for a in plan(threads, &PredictorOptions::default(), &work) {
            assert!(
                a.row < threads - 1,
                "case {case}: row {} out of range",
                a.row
            );
            assert!(a.tid < threads, "case {case}: tid {} out of range", a.tid);
            assert!(a.threshold >= 1, "case {case}: threshold {}", a.threshold);
        }
    }
}
