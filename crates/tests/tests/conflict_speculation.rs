//! Properties of the memory-dependence speculation subsystem.
//!
//! The contract (DESIGN.md §2, paper §3 "Conflict Detection"): under
//! `ConflictPolicy::Detect`, speculative chunk execution of a loop that
//! carries genuine cross-chunk memory flow dependences must be
//! *indistinguishable* from sequential execution — bit-identical reductions
//! and bit-identical live-out memory — on every backend, with the violations
//! reported as `DependenceViolation` squashes rather than silently corrupted
//! results. These tests force conflicts at controlled rates (0, 0.1, 1.0)
//! through the adversarial `list_splice` workload and through the faithful
//! `mcf_refresh_potential_true` kernel, and compare both backends against a
//! plain single-threaded interpreter run of the same driver schedule.

use spice_core::backend::{make_backend, BackendChoice};
use spice_ir::interp::FlatMemory;
use spice_workloads::{
    run_workload_on, BackendRunSummary, ConflictConfig, ConflictListWorkload, McfConfig,
    McfWorkload, SpiceWorkload,
};

/// Runs one workload instance sequentially on the plain interpreter and
/// returns `(per-invocation return values, final data-region memory)`.
fn sequential_reference(mut workload: Box<dyn SpiceWorkload>) -> (Vec<Option<i64>>, Vec<i64>) {
    let built = workload.build();
    let data_end = built.program.data_end() as usize;
    let mut mem = FlatMemory::for_program(&built.program, 256 * 1024);
    let mut args = workload.init(&mut mem);
    let mut returns = Vec::new();
    let mut inv = 0usize;
    loop {
        let out = spice_ir::interp::run_function(&built.program, built.kernel, &args, &mut mem)
            .unwrap_or_else(|e| panic!("sequential {} trapped: {e}", workload.name()));
        returns.push(out.return_value);
        match workload.next_invocation(&mut mem, inv) {
            Some(a) => {
                args = a;
                inv += 1;
            }
            None => break,
        }
    }
    (returns, mem.words()[..data_end].to_vec())
}

/// Runs one workload instance on `choice` and returns the summary plus the
/// final data-region memory.
fn backend_run(
    mut workload: Box<dyn SpiceWorkload>,
    choice: BackendChoice,
    threads: usize,
) -> (BackendRunSummary, Vec<i64>) {
    let data_end = {
        // A throwaway instance measures the data region (the sim backend
        // appends predictor globals past it).
        workload.build().program.data_end() as usize
    };
    let mut backend = make_backend(choice, threads);
    let summary = run_workload_on(workload.as_mut(), backend.as_mut())
        .unwrap_or_else(|e| panic!("{choice}: {e}"));
    let data = backend.mem().words()[..data_end].to_vec();
    (summary, data)
}

/// Forced-conflict property: at rates 0 / 0.1 / 1.0 the splice loop produces
/// bit-identical reductions and live-out memory on both backends, matching
/// the sequential interpreter; nonzero rates must report at least one
/// `DependenceViolation`, rate zero must report none.
#[test]
fn forced_conflict_rates_stay_bit_identical_to_sequential() {
    for &rate in &[0.0, 0.1, 1.0] {
        let make = || {
            Box::new(ConflictListWorkload::new(ConflictConfig {
                len: 180,
                invocations: 8,
                conflict_rate: rate,
                seed: 0xC0_4F11,
            })) as Box<dyn SpiceWorkload>
        };
        let (seq_returns, seq_mem) = sequential_reference(make());
        for choice in [BackendChoice::SimTiny, BackendChoice::Native] {
            for threads in [2usize, 4] {
                let (summary, mem) = backend_run(make(), choice, threads);
                assert_eq!(
                    summary.return_values, seq_returns,
                    "rate {rate}, {choice}, {threads} threads: reductions diverged"
                );
                assert_eq!(
                    mem, seq_mem,
                    "rate {rate}, {choice}, {threads} threads: live-out memory diverged"
                );
                if rate == 0.0 {
                    assert_eq!(
                        summary.dependence_violations, 0,
                        "rate 0, {choice}, {threads} threads: phantom conflict"
                    );
                } else {
                    assert!(
                        summary.dependence_violations >= 1,
                        "rate {rate}, {choice}, {threads} threads: no violation \
                         reported on a conflict-carrying run"
                    );
                    assert!(summary.squashed_chunks >= summary.dependence_violations);
                }
            }
        }
    }
}

/// The faithful mcf kernel (potential chained through `pred->potential`)
/// runs on both backends with results and node potentials bit-identical to
/// sequential execution, while `DependenceViolation` squashes occur and are
/// recovered.
#[test]
fn mcf_refresh_potential_true_recovers_on_both_backends() {
    let make = || {
        Box::new(McfWorkload::new_faithful(McfConfig {
            nodes: 160,
            invocations: 8,
            cost_updates_per_invocation: 5,
            reparents_per_invocation: 2,
            seed: 0x7A0E,
        })) as Box<dyn SpiceWorkload>
    };
    let (seq_returns, seq_mem) = sequential_reference(make());
    for choice in [BackendChoice::SimTiny, BackendChoice::Native] {
        let (summary, mem) = backend_run(make(), choice, 4);
        assert_eq!(
            summary.return_values, seq_returns,
            "{choice}: checksums diverged from sequential"
        );
        assert_eq!(
            mem, seq_mem,
            "{choice}: node potentials diverged from sequential"
        );
        assert!(
            summary.dependence_violations >= 1,
            "{choice}: the pred-potential chain never tripped conflict detection"
        );
        assert!(
            summary.squashed_chunks >= summary.dependence_violations,
            "{choice}: violations must be squashed chunks"
        );
    }
}

/// The dependence-free control (the pre-subsystem mcf kernel) still never
/// reports a violation — the detector is precise enough for word-disjoint
/// chunk working sets.
#[test]
fn dependence_free_mcf_control_reports_no_violations() {
    let make = || {
        Box::new(McfWorkload::new(McfConfig {
            nodes: 160,
            invocations: 6,
            cost_updates_per_invocation: 5,
            reparents_per_invocation: 1,
            seed: 0x7A0E,
        })) as Box<dyn SpiceWorkload>
    };
    for choice in [BackendChoice::SimTiny, BackendChoice::Native] {
        let (summary, _) = backend_run(make(), choice, 4);
        assert_eq!(
            summary.dependence_violations, 0,
            "{choice}: false conflict on the dependence-free control"
        );
    }
}
