//! Snapshot / time-travel property over the whole small suite, violation
//! workloads included: a machine resumed from any periodic checkpoint
//! continues bit-identically — same cycles, same memory, same trace tail —
//! and enabling the observers (trace ring, snapshot recorder) never changes
//! what the run computes. Covers both scheduler paths: the sequential
//! one-core machine (single-active-core fast loop) and the 4-thread Spice
//! configuration (event-driven, multi-core).

use spice_bench::experiments::{all_workload_factories, prepare_sweep, SweepMode};
use spice_core::{run_sequential, SimBackend};
use spice_ir::exec::ExecutionBackend;
use spice_ir::TraceEvent;
use spice_sim::Machine;
use spice_workloads::drive_loaded_workload;

/// Large enough that no suite member evicts events (the prefix comparison
/// below needs the complete stream).
const TRACE_CAP: usize = 1 << 17;

#[test]
fn sequential_snapshots_resume_bit_identically() {
    for (bench, factory) in all_workload_factories(true) {
        let prep = prepare_sweep(&factory, SweepMode::Sequential, true, 0).expect(bench);

        // Reference: invocation 0, traced, no snapshots.
        let mut wl = factory();
        let _ = wl.build();
        let mut full = prep.prepared.machine();
        full.enable_trace(TRACE_CAP);
        let args = wl.init(full.mem_mut());
        let (full_cycles, full_ret) = run_sequential(&mut full, prep.kernel, &args)
            .unwrap_or_else(|e| panic!("{bench}: {e:?}"));

        // Same invocation with the periodic recorder on: the observers must
        // not change the outcome, and every checkpoint must resume to the
        // identical end state.
        let mut wl2 = factory();
        let _ = wl2.build();
        let mut observed = prep.prepared.machine();
        observed.enable_trace(TRACE_CAP);
        observed.enable_snapshots((full_cycles / 5).max(1));
        let args2 = wl2.init(observed.mem_mut());
        assert_eq!(args, args2, "{bench}: workload init must be deterministic");
        let (cycles, ret) = run_sequential(&mut observed, prep.kernel, &args2)
            .unwrap_or_else(|e| panic!("{bench}: {e:?}"));
        assert_eq!((cycles, ret), (full_cycles, full_ret), "{bench}");
        assert_eq!(observed.trace(), full.trace(), "{bench}: trace diverged");

        let snaps = observed.snapshots_taken();
        assert!(!snaps.is_empty(), "{bench}: no snapshots taken");
        for snap in snaps {
            let mut resumed = Machine::resume_from(snap);
            let summary = resumed
                .run()
                .unwrap_or_else(|e| panic!("{bench}: resume from {}: {e:?}", snap.cycle()));
            assert_eq!(
                summary.cycles,
                full_cycles,
                "{bench}: cycles diverged resuming from {}",
                snap.cycle()
            );
            assert_eq!(resumed.return_value(0), full_ret, "{bench}");
            assert_eq!(
                resumed.mem().words(),
                full.mem().words(),
                "{bench}: memory diverged resuming from {}",
                snap.cycle()
            );
            assert_eq!(
                resumed.trace(),
                full.trace(),
                "{bench}: trace tail diverged resuming from {}",
                snap.cycle()
            );
        }
    }
}

#[test]
fn spice_snapshots_resume_bit_identically_mid_invocation() {
    for (bench, factory) in all_workload_factories(true) {
        let prep = prepare_sweep(&factory, SweepMode::Spice { threads: 4 }, true, 0).expect(bench);

        // Full traced drive with periodic checkpoints across every
        // invocation (the per-invocation clock re-arms the recorder).
        let mut wl = factory();
        let _ = wl.build();
        let mut backend = SimBackend::from_prepared(&prep.prepared);
        backend.enable_trace(TRACE_CAP);
        backend
            .machine_mut()
            .expect("loaded")
            .enable_snapshots(4_000);
        let summary = drive_loaded_workload(wl.as_mut(), &mut backend)
            .unwrap_or_else(|e| panic!("{bench}: {e}"));

        // Observer invariant at the workload level: a bare drive of the
        // same preparation computes the identical summary (results,
        // cycles, squashes, per-thread work).
        let mut wl2 = factory();
        let _ = wl2.build();
        let mut bare = SimBackend::from_prepared(&prep.prepared);
        let bare_summary = drive_loaded_workload(wl2.as_mut(), &mut bare)
            .unwrap_or_else(|e| panic!("{bench}: {e}"));
        assert_eq!(summary, bare_summary, "{bench}: observers changed the run");

        let machine = backend.machine().expect("loaded");
        let trace = machine.trace().expect("tracing enabled");
        assert_eq!(trace.dropped(), 0, "{bench}: TRACE_CAP too small");
        let full_events: Vec<TraceEvent> = trace.events().cloned().collect();
        let snaps = machine.snapshots_taken();
        assert!(!snaps.is_empty(), "{bench}: no snapshots taken");

        // Resume from a spread of checkpoints — first, middle, last. The
        // continuation runs its invocation to completion, and its trace
        // must be an exact prefix of the full run's event stream: the
        // machine replays the identical future event-for-event.
        for i in [0, snaps.len() / 2, snaps.len() - 1] {
            let snap = &snaps[i];
            let mut resumed = Machine::resume_from(snap);
            resumed
                .run()
                .unwrap_or_else(|e| panic!("{bench}: resume from {}: {e:?}", snap.cycle()));
            let resumed_events: Vec<TraceEvent> = resumed
                .trace()
                .expect("trace restored from snapshot")
                .events()
                .cloned()
                .collect();
            assert!(
                resumed_events.len() <= full_events.len(),
                "{bench}: resumed run traced past the full run"
            );
            assert_eq!(
                resumed_events[..],
                full_events[..resumed_events.len()],
                "{bench}: continuation diverged resuming from cycle {} (snapshot {i})",
                snap.cycle()
            );
        }

        // Violation workloads must exercise this property across actual
        // squash-and-recover traffic, not just clean runs.
        if bench == "list_splice" {
            assert!(summary.dependence_violations > 0, "{bench}");
        }
    }
}
