//! The farm's one non-negotiable property: artifacts and results are a pure
//! function of the manifest, never of scheduling. A sweep at `--jobs 1`
//! and the same sweep on a full work-stealing pool must produce
//! byte-identical streamed artifacts and identical per-job simulation
//! summaries — conflict-carrying (squash-and-recover) workloads included.

use spice_bench::farm_driver::{run_manifest, Figure, Manifest, OutPaths};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "spice-farm-determinism-{tag}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn farm_artifacts_are_byte_identical_across_worker_counts() {
    let figures = vec![
        Figure::Fig7,
        Figure::Table2,
        Figure::Harness,
        Figure::Crosscheck,
        Figure::Fig8,
        Figure::Fuzz,
    ];
    let mut artifacts: Vec<(String, String, String, String, String)> = Vec::new();
    let mut harness_sims: Vec<Vec<(String, String, u64)>> = Vec::new();
    let mut summaries = Vec::new();
    let mut fuzz_rows = Vec::new();

    for jobs in [1usize, 4] {
        let dir = temp_dir(&format!("j{jobs}"));
        let outs = OutPaths {
            fig7: Some(dir.join("BENCH_fig7.json")),
            table2: Some(dir.join("BENCH_table2.json")),
            harness: Some(dir.join("BENCH_harness.json")),
            crosscheck: Some(dir.join("BENCH_crosscheck.json")),
            fig8: Some(dir.join("BENCH_fig8.json")),
            trace: Some(dir.join("BENCH_trace.json")),
            failures_dir: Some(dir.join("failures")),
        };
        let manifest = Manifest {
            figures: figures.clone(),
            small: true,
            jobs,
            fuzz_seeds: 0..8,
        };
        let report = run_manifest(&manifest, &outs).expect("farm run");
        assert_eq!(report.stats.failures, 0, "jobs={jobs}");
        assert_eq!(report.stats.workers, if jobs == 1 { 1 } else { 4 });
        assert_eq!(report.crosscheck_rows.len(), 7, "jobs={jobs}");
        assert!(report.crosscheck_rows.iter().all(|r| r.agree));
        // Fig 8 and the fuzz sweep produce one row per corpus benchmark /
        // seed, and every fuzz row agrees (a divergence fails its job).
        assert_eq!(report.fig8_bars.len(), 38, "jobs={jobs}");
        assert_eq!(report.fuzz_rows.len(), 8, "jobs={jobs}");
        assert!(report.fuzz_rows.iter().all(|r| r.agree));
        assert!(
            report.fuzz_rows.iter().any(|r| r.has_writes),
            "the seed range must produce dependence-carrying mutants"
        );
        // Per-job observability metrics are annotated for every sweep and
        // cross-check job, and tracing is on, so sweep jobs carry events.
        assert!(report
            .stats
            .details
            .iter()
            .filter(|m| m.label.starts_with("sweep/"))
            .all(|m| m.ok && m.events > 0));
        assert!(report
            .stats
            .details
            .iter()
            .any(|m| m.label.starts_with("crosscheck/") && m.squashes > 0));

        let read = |name: &str| std::fs::read_to_string(dir.join(name)).expect("read artifact");
        artifacts.push((
            read("BENCH_fig7.json"),
            read("BENCH_table2.json"),
            read("BENCH_crosscheck.json"),
            read("BENCH_fig8.json"),
            read("BENCH_trace.json"),
        ));
        // The harness artifact carries wall-clock fields (host_nanos,
        // build_nanos) that legitimately vary with scheduling; its
        // *simulation* content must still be identical.
        harness_sims.push(
            report
                .harness_rows
                .iter()
                .map(|r| (r.benchmark.clone(), r.mode.clone(), r.simulated_cycles))
                .collect(),
        );
        summaries.push(report.sweep_summaries);
        fuzz_rows.push(report.fuzz_rows);
        std::fs::remove_dir_all(&dir).ok();
    }

    let (fig7_serial, table2_serial, crosscheck_serial, fig8_serial, trace_serial) = &artifacts[0];
    let (fig7_farm, table2_farm, crosscheck_farm, fig8_farm, trace_farm) = &artifacts[1];
    assert_eq!(
        fig7_serial, fig7_farm,
        "BENCH_fig7.json differs across worker counts"
    );
    assert_eq!(
        table2_serial, table2_farm,
        "BENCH_table2.json differs across worker counts"
    );
    assert_eq!(
        crosscheck_serial, crosscheck_farm,
        "BENCH_crosscheck.json differs across worker counts"
    );
    assert_eq!(
        fig8_serial, fig8_farm,
        "BENCH_fig8.json differs across worker counts"
    );
    assert_eq!(
        fuzz_rows[0], fuzz_rows[1],
        "fuzz-differential rows differ across worker counts"
    );
    assert_eq!(
        trace_serial, trace_farm,
        "trace artifact differs across worker counts"
    );
    assert!(
        trace_serial.contains("\"kind\": \"chunk_squash\""),
        "conflict workloads must leave squash events in the trace artifact"
    );
    assert_eq!(
        harness_sims[0], harness_sims[1],
        "harness simulation content differs across worker counts"
    );

    // The per-job backend summaries — chunk commits, squashes, dependence
    // violations, per-thread work — must also match run-for-run, so the
    // equality is not merely a formatting accident.
    assert_eq!(
        summaries[0], summaries[1],
        "per-job summaries differ across worker counts"
    );
    assert!(
        !summaries[0].is_empty(),
        "spice sweep jobs must report backend summaries"
    );

    // Squash-and-recover paths are exercised: the conflict-carrying
    // workloads must appear with real dependence violations.
    let violating: Vec<&str> = summaries[0]
        .iter()
        .filter(|(_, s)| s.dependence_violations > 0)
        .map(|(label, _)| label.as_str())
        .collect();
    assert!(
        !violating.is_empty(),
        "expected at least one conflict-carrying workload with violations"
    );
}

#[test]
fn serial_emitters_and_streamed_artifacts_agree() {
    // The composed serial documents (what the pre-farm binaries wrote) and
    // the farm's streamed files must be the same bytes.
    let dir = temp_dir("serial-vs-stream");
    let outs = OutPaths {
        fig7: Some(dir.join("BENCH_fig7.json")),
        table2: Some(dir.join("BENCH_table2.json")),
        harness: Some(dir.join("BENCH_harness.json")),
        crosscheck: Some(dir.join("BENCH_crosscheck.json")),
        fig8: Some(dir.join("BENCH_fig8.json")),
        ..OutPaths::default()
    };
    let manifest = Manifest {
        figures: vec![
            Figure::Fig7,
            Figure::Table2,
            Figure::Harness,
            Figure::Crosscheck,
            Figure::Fig8,
        ],
        small: true,
        jobs: 2,
        ..Manifest::default()
    };
    let report = run_manifest(&manifest, &outs).expect("farm run");

    let streamed_fig7 = std::fs::read_to_string(dir.join("BENCH_fig7.json")).expect("fig7");
    let streamed_table2 = std::fs::read_to_string(dir.join("BENCH_table2.json")).expect("table2");
    let streamed_harness =
        std::fs::read_to_string(dir.join("BENCH_harness.json")).expect("harness");
    let streamed_crosscheck =
        std::fs::read_to_string(dir.join("BENCH_crosscheck.json")).expect("crosscheck");
    let streamed_fig8 = std::fs::read_to_string(dir.join("BENCH_fig8.json")).expect("fig8");
    std::fs::remove_dir_all(&dir).ok();

    use spice_bench::experiments::{
        crosscheck_json, fig7_json, fig8_json, harnessperf_json, table2_json,
    };
    assert_eq!(streamed_fig7, fig7_json(&report.fig7_rows, true));
    assert_eq!(streamed_table2, table2_json(&report.table2_rows, true));
    assert_eq!(
        streamed_harness,
        harnessperf_json(&report.harness_rows, true)
    );
    assert_eq!(
        streamed_crosscheck,
        crosscheck_json(&report.crosscheck_rows)
    );
    assert_eq!(streamed_fig8, fig8_json(&report.fig8_bars, true));
}
