//! The trace layer's headline property: every fuzzed trace replays
//! bit-identically — same per-invocation returns, same live-out memory,
//! same checksum — across the timing simulator, the native-thread runtime
//! and the sequential interpreter. Dependence-violating mutants (forward
//! splice writes that cross chunk boundaries and squash) are part of the
//! population, not excluded from it.
//!
//! A diverging mutant is persisted as `FAILED_<label>.json` (the full
//! trace-file document) before the test fails, so the exact scenario
//! replays offline without a recording step.

use spice_bench::experiments::{
    fuzz_base_traces, fuzz_config_for_seed, fuzz_differential, REPLAY_THREADS,
};
use spice_bench::tracefile::trace_to_json;
use spice_workloads::trace::{fuzz_trace, WorkloadTrace};

/// Seeds swept by the differential — comfortably past the 100-mutant bar.
const SEEDS: u64 = 120;

fn persist_failure(label: &str, error: &str, trace: &WorkloadTrace) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spice-fuzz-failures-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create failure dir");
    let safe: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = dir.join(format!("FAILED_{safe}.json"));
    let doc = format!(
        "{{\n  \"label\": {:?},\n  \"error\": {:?},\n  \"trace\": {}}}\n",
        label,
        error,
        trace_to_json(trace).trim_end()
    );
    std::fs::write(&path, doc).expect("write failure artifact");
    path
}

#[test]
fn a_hundred_plus_fuzzed_mutants_replay_bit_identically_everywhere() {
    let bases = fuzz_base_traces().expect("record base traces");
    assert_eq!(bases.len(), 7, "one base per real driver");

    let mut with_writes = 0usize;
    let mut with_violations = 0usize;
    for seed in 0..SEEDS {
        let base = &bases[seed as usize % bases.len()];
        let mutant = fuzz_trace(base, &fuzz_config_for_seed(seed));
        let label = format!("fuzz/{}/{seed}", base.name);
        let row = match fuzz_differential(&label, seed, &base.name, &mutant, REPLAY_THREADS) {
            Ok(row) => row,
            Err(e) => {
                let path = persist_failure(&label, &e, &mutant);
                panic!("{label}: replay failed: {e} (trace: {})", path.display());
            }
        };
        if !row.agree {
            let error = format!(
                "divergence: seq {:#x}, sim {:#x}, native {:#x}",
                row.checksum, row.sim_checksum, row.native_checksum
            );
            let path = persist_failure(&label, &error, &mutant);
            panic!("{label}: {error} (trace: {})", path.display());
        }
        with_writes += usize::from(row.has_writes);
        with_violations += usize::from(row.sim_violations > 0 || row.native_violations > 0);
    }

    // The sweep must actually exercise the dangerous population: mutants
    // carrying forward splice writes, and among them mutants whose writes
    // crossed chunk boundaries and forced squash-and-recover.
    assert!(
        with_writes >= SEEDS as usize / 4,
        "only {with_writes}/{SEEDS} mutants carried dependence-inducing writes"
    );
    assert!(
        with_violations > 0,
        "no mutant triggered a dependence violation — the sweep never \
         exercised squash-and-recover"
    );
}
