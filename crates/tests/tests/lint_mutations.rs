//! Mutation tests for the speculation-safety lint stack.
//!
//! Each test takes a *valid* Spice-transformed program, applies one targeted
//! corruption — the kind a buggy transform change would introduce — and
//! asserts that the *specific* lint (or verifier error) fires. Together they
//! prove every lint in the catalog has at least one triggering input, so a
//! regression that silently disables a lint is caught here rather than by a
//! production miscompile.

use spice_core::analysis::LoopAnalysis;
use spice_core::predictor::PredictorOptions;
use spice_core::transform::{SpiceOptions, SpiceParallelLoop, SpiceTransform};
use spice_ir::builder::FunctionBuilder;
use spice_ir::exec::ConflictPolicy;
use spice_ir::lint::{check_protocol_metadata, lint_spice, LintError, SpiceProtocol};
use spice_ir::verify::{verify_program, VerifyError};
use spice_ir::{BinOp, BlockId, DecodedProgram, FuncId, Inst, Operand, Program, Terminator};

/// The canonical pointer-chasing list-sum loop: one speculated live-in (the
/// cursor), one sum reduction, loads only in the body.
fn list_sum_program() -> (Program, FuncId) {
    let mut program = Program::new();
    program.add_global("nodes", 128);
    let mut b = FunctionBuilder::new("list_sum");
    let head = b.param();
    let pre = b.new_block();
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    let c = b.copy(head);
    let sum = b.copy(0i64);
    b.br(pre);
    b.switch_to(pre);
    b.br(header);
    b.switch_to(header);
    let done = b.binop(BinOp::Eq, c, 0i64);
    b.cond_br(done, exit, body);
    b.switch_to(body);
    let w = b.load(c, 0);
    let s = b.binop(BinOp::Add, sum, w);
    b.copy_into(sum, s);
    let nx = b.load(c, 1);
    b.copy_into(c, nx);
    b.br(header);
    b.switch_to(exit);
    b.ret(Some(Operand::Reg(sum)));
    let f = program.add_func(b.finish());
    (program, f)
}

/// Transforms the fixture under `policy`, returning the (lint-clean)
/// transformed program, the loop description, and its protocol.
fn transformed(policy: ConflictPolicy) -> (Program, SpiceParallelLoop, SpiceProtocol) {
    let (mut program, f) = list_sum_program();
    let analysis = LoopAnalysis::analyze_outermost(&program, f).unwrap();
    let spice = SpiceTransform::new(SpiceOptions {
        threads: 3,
        predictor: PredictorOptions {
            initial_work_estimate: Some(16),
            ..PredictorOptions::default()
        },
        conflict_policy: policy,
    })
    .apply(&mut program, &analysis)
    .expect("fixture transforms cleanly");
    let protocol = spice.protocol();
    assert!(
        lint_spice(&program, &protocol).is_ok(),
        "fixture must start lint-clean"
    );
    (program, spice, protocol)
}

fn lint_errors(program: &Program, protocol: &SpiceProtocol) -> Vec<LintError> {
    lint_spice(program, protocol).expect_err("corruption must be caught")
}

/// Finds `(block, ip)` of the first instruction of `func` matching `pred`.
fn find_inst(program: &Program, func: FuncId, pred: impl Fn(&Inst) -> bool) -> (BlockId, usize) {
    let f = program.func(func);
    for b in f.block_ids() {
        for (ip, inst) in f.block(b).insts.iter().enumerate() {
            if pred(inst) {
                return (b, ip);
            }
        }
    }
    panic!("fixture is missing the expected instruction");
}

// ---------------------------------------------------------------------------
// Channel-protocol lints.
// ---------------------------------------------------------------------------

/// Named corruption: a double-send on a worker's invariant channel — the
/// worker would consume the second value as a later invocation's token.
#[test]
fn double_send_on_invariant_channel_fires_channel_count() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::Detect);
    let w = protocol.workers[0];
    program
        .func_mut(protocol.main)
        .block_mut(protocol.shape.dispatch)
        .insts
        .push(Inst::Send {
            chan: Operand::Imm(w.invariant),
            value: Operand::Imm(0),
        });
    let errs = lint_errors(&program, &protocol);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            LintError::ChannelCount { chan, role: "new_invocation send", found, .. }
                if *chan == w.invariant && *found == 2 + protocol.invariant_payload
        )),
        "got {errs:?}"
    );
}

/// An invariant send smuggled outside the dispatch block would run on a
/// different schedule than the worker's matching receive.
#[test]
fn invariant_send_outside_dispatch_fires_outside_block() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::Detect);
    let w = protocol.workers[0];
    program
        .func_mut(protocol.main)
        .block_mut(protocol.shape.bump)
        .insts
        .push(Inst::Send {
            chan: Operand::Imm(w.invariant),
            value: Operand::Imm(0),
        });
    let errs = lint_errors(&program, &protocol);
    let bump = protocol.shape.bump;
    assert!(
        errs.iter().any(|e| matches!(
            e,
            LintError::ChannelOutsideBlock { chan, block, .. }
                if *chan == w.invariant && *block == bump
        )),
        "got {errs:?}"
    );
}

/// Rewiring `finish` back to `dispatch` puts the once-per-invocation sends
/// inside a CFG cycle without moving a single instruction.
#[test]
fn dispatch_inside_cycle_fires_channel_in_cycle() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::Detect);
    let dispatch = protocol.shape.dispatch;
    program
        .func_mut(protocol.main)
        .block_mut(protocol.shape.finish)
        .terminator = Terminator::Br(dispatch);
    let errs = lint_errors(&program, &protocol);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            LintError::ChannelInCycle { block, .. } if *block == dispatch
        )),
        "got {errs:?}"
    );
}

/// One worker touching another worker's channel breaks pairwise channel
/// ownership.
#[test]
fn cross_worker_channel_op_fires_foreign_channel_op() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::Detect);
    let w0 = protocol.workers[0];
    let w1 = protocol.workers[1];
    assert_ne!(w0.func, w1.func);
    let entry = program.func(w1.func).entry;
    program
        .func_mut(w1.func)
        .block_mut(entry)
        .insts
        .push(Inst::Send {
            chan: Operand::Imm(w0.status),
            value: Operand::Imm(0),
        });
    let errs = lint_errors(&program, &protocol);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            LintError::ForeignChannelOp { chan, .. } if *chan == w0.status
        )),
        "got {errs:?}"
    );
}

// ---------------------------------------------------------------------------
// spec.check placement lints.
// ---------------------------------------------------------------------------

/// Named corruption: deleting a worker's `spec.check` — its chunk would
/// commit without ever consulting the conflict detector.
#[test]
fn deleted_spec_check_fires_missing_spec_check() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::Detect);
    let w = protocol.workers[0];
    let (b, ip) = find_inst(
        &program,
        protocol.main,
        |i| matches!(i, Inst::SpecCheck { core: Operand::Imm(c), .. } if *c == w.core),
    );
    program.func_mut(protocol.main).block_mut(b).insts[ip] = Inst::Nop;
    let errs = lint_errors(&program, &protocol);
    assert!(
        errs.iter()
            .any(|e| matches!(e, LintError::MissingSpecCheck { core } if *core == w.core)),
        "got {errs:?}"
    );
}

#[test]
fn duplicated_spec_check_fires_duplicate_spec_check() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::Detect);
    let w = protocol.workers[0];
    let (b, ip) = find_inst(
        &program,
        protocol.main,
        |i| matches!(i, Inst::SpecCheck { core: Operand::Imm(c), .. } if *c == w.core),
    );
    let copy = program.func(protocol.main).block(b).insts[ip].clone();
    program
        .func_mut(protocol.main)
        .block_mut(b)
        .insts
        .push(copy);
    let errs = lint_errors(&program, &protocol);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            LintError::DuplicateSpecCheck { core, found: 2 } if *core == w.core
        )),
        "got {errs:?}"
    );
}

/// Under `AssumeIndependent` no checks are emitted, so any `spec.check` is a
/// policy violation — the transform and the machine would disagree about
/// whether read/write sets exist.
#[test]
fn spec_check_under_assume_independent_is_unexpected() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::AssumeIndependent);
    assert!(!protocol.detect);
    let w = protocol.workers[0];
    let main = program.func_mut(protocol.main);
    let dst = main.fresh_reg();
    main.block_mut(protocol.shape.tail).insts.insert(
        0,
        Inst::SpecCheck {
            dst,
            core: Operand::Imm(w.core),
        },
    );
    let errs = lint_errors(&program, &protocol);
    assert!(
        errs.iter()
            .any(|e| matches!(e, LintError::UnexpectedSpecCheck { .. })),
        "got {errs:?}"
    );
}

/// Moving a `spec.check` into the resume block leaves commit paths that
/// never pass through it.
#[test]
fn spec_check_moved_off_commit_path_fires_dominance_lint() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::Detect);
    let w = protocol.workers[0];
    let (b, ip) = find_inst(
        &program,
        protocol.main,
        |i| matches!(i, Inst::SpecCheck { core: Operand::Imm(c), .. } if *c == w.core),
    );
    let main = program.func_mut(protocol.main);
    let check = std::mem::replace(&mut main.block_mut(b).insts[ip], Inst::Nop);
    main.block_mut(protocol.shape.resume).insts.push(check);
    let errs = lint_errors(&program, &protocol);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            LintError::SpecCheckNotDominatingCommit { core, .. } if *core == w.core
        )),
        "got {errs:?}"
    );
}

// ---------------------------------------------------------------------------
// Conflict-exemption coverage.
// ---------------------------------------------------------------------------

/// Original program code reading the predictor arrays would be invisibly
/// exempt from conflict detection — exactly the hole the coverage lint
/// closes.
#[test]
fn program_code_touching_predictor_range_fires_exemption_lint() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::Detect);
    let (lo, _) = protocol.exempt_range;
    let main = program.func_mut(protocol.main);
    let entry = main.entry;
    assert!(entry.index() < protocol.main_program_blocks);
    let dst = main.fresh_reg();
    main.block_mut(entry).insts.push(Inst::Load {
        dst,
        addr: Operand::Imm(lo),
        offset: 0,
    });
    let errs = lint_errors(&program, &protocol);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            LintError::ExemptRangeAccess { addr, .. } if *addr == lo
        )),
        "got {errs:?}"
    );
}

// ---------------------------------------------------------------------------
// Boundary/resume shape lints.
// ---------------------------------------------------------------------------

#[test]
fn rewired_tail_terminator_fires_shape_edge() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::Detect);
    let tail = protocol.shape.tail;
    program.func_mut(protocol.main).block_mut(tail).terminator =
        Terminator::Br(protocol.shape.finish);
    let errs = lint_errors(&program, &protocol);
    assert!(
        errs.iter()
            .any(|e| matches!(e, LintError::ShapeEdge { block, .. } if *block == tail)),
        "got {errs:?}"
    );
}

/// A second edge into the resume block breaks `need_resume`/`resumed`
/// nesting: the loop could "resume" from a squash that never happened.
#[test]
fn extra_resume_predecessor_fires_resume_entry() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::Detect);
    let hit = protocol.shape.hit;
    program.func_mut(protocol.main).block_mut(hit).terminator =
        Terminator::Br(protocol.shape.resume);
    let errs = lint_errors(&program, &protocol);
    assert!(
        errs.iter()
            .any(|e| matches!(e, LintError::ResumeEntry { pred, .. } if *pred == hit)),
        "got {errs:?}"
    );
}

#[test]
fn recovery_block_without_abort_fires_recovery_shape() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::Detect);
    let w = protocol.workers[0];
    let (b, ip) = find_inst(&program, w.func, |i| matches!(i, Inst::SpecAbort));
    assert_eq!(b, w.recovery_block);
    program.func_mut(w.func).block_mut(b).insts[ip] = Inst::Nop;
    let errs = lint_errors(&program, &protocol);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            LintError::RecoveryShape { block, detail, .. }
                if *block == w.recovery_block && detail.contains("no spec.abort")
        )),
        "got {errs:?}"
    );
}

/// A resteer pointed anywhere but the worker's recovery block would strand a
/// squashed thread in the middle of a stale chunk.
#[test]
fn retargeted_resteer_fires_resteer_target() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::Detect);
    let w0 = protocol.workers[0];
    let (b, ip) = find_inst(
        &program,
        protocol.main,
        |i| matches!(i, Inst::Resteer { core: Operand::Imm(c), .. } if *c == w0.core),
    );
    if let Inst::Resteer { target, .. } =
        &mut program.func_mut(protocol.main).block_mut(b).insts[ip]
    {
        *target = BlockId(0);
    }
    let errs = lint_errors(&program, &protocol);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            LintError::ResteerTarget { core, target, .. }
                if *core == w0.core && *target == BlockId(0)
        )),
        "got {errs:?}"
    );
}

// ---------------------------------------------------------------------------
// Protocol metadata.
// ---------------------------------------------------------------------------

#[test]
fn colliding_worker_cores_fire_protocol_metadata() {
    let (program, _, mut protocol) = transformed(ConflictPolicy::Detect);
    protocol.workers[1].core = protocol.workers[0].core;
    assert!(check_protocol_metadata(&protocol).is_err());
    let errs = lint_errors(&program, &protocol);
    assert!(
        errs.iter()
            .any(|e| matches!(e, LintError::ProtocolMetadata { .. })),
        "got {errs:?}"
    );
}

// ---------------------------------------------------------------------------
// Verifier + decode corruptions (the structural layer under the lints).
// ---------------------------------------------------------------------------

/// Named corruption: a dangling branch target spliced into the merge chain.
/// Caught twice below the lints: by the verifier, and by typed decode
/// errors instead of a panic.
#[test]
fn dangling_target_in_merge_chain_is_caught_by_verify_and_decode() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::Detect);
    let chain = protocol.shape.chain;
    let missing = BlockId(9999);
    program.func_mut(protocol.main).block_mut(chain).terminator = Terminator::Br(missing);

    let errs = verify_program(&program).expect_err("verifier must catch it");
    let dangling = errs
        .iter()
        .find(|e| {
            matches!(
                e,
                VerifyError::DanglingBlockTarget { block, target, .. }
                    if *block == chain && *target == missing
            )
        })
        .expect("expected a DanglingBlockTarget error");
    let rendered = dangling.render(&program);
    assert!(rendered.contains("error[verify]"), "got: {rendered}");
    assert!(rendered.contains(&format!("{chain}")), "got: {rendered}");

    let decode_err = DecodedProgram::try_new(&program).expect_err("decode must fail typed");
    assert_eq!(decode_err.func_id, protocol.main);
    assert_eq!(decode_err.block, chain);
}

/// Named corruption: a use of a register no path defines, injected across
/// the chunk boundary (the merge chain).
#[test]
fn use_before_def_across_boundary_is_caught_by_verify() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::Detect);
    let main = program.func_mut(protocol.main);
    let undef = main.fresh_reg();
    main.block_mut(protocol.shape.merge).insts.insert(
        0,
        Inst::Store {
            src: Operand::Reg(undef),
            addr: Operand::Imm(0),
            offset: 0,
        },
    );
    let errs = verify_program(&program).expect_err("verifier must catch it");
    let ube = errs
        .iter()
        .find(|e| matches!(e, VerifyError::UseBeforeDef { reg, .. } if *reg == undef))
        .expect("expected a UseBeforeDef error");
    let rendered = ube.render(&program);
    assert!(rendered.contains("error[verify]"), "got: {rendered}");
}

/// Lint diagnostics point at the offending function/block/instruction.
#[test]
fn lint_render_quotes_the_offending_block() {
    let (mut program, _, protocol) = transformed(ConflictPolicy::Detect);
    let w = protocol.workers[0];
    let (b, ip) = find_inst(
        &program,
        protocol.main,
        |i| matches!(i, Inst::SpecCheck { core: Operand::Imm(c), .. } if *c == w.core),
    );
    program.func_mut(protocol.main).block_mut(b).insts[ip] = Inst::Nop;
    let errs = lint_errors(&program, &protocol);
    let missing = errs
        .iter()
        .find(|e| matches!(e, LintError::MissingSpecCheck { .. }))
        .unwrap();
    let rendered = missing.render(&program);
    assert!(rendered.contains("error[lint]"), "got: {rendered}");
    // MissingSpecCheck has no block context; a block-bearing error renders
    // the listing with the instruction marker.
    let foreign_program = {
        let (mut p, _, proto) = transformed(ConflictPolicy::Detect);
        let w0 = proto.workers[0];
        let w1 = proto.workers[1];
        let entry = p.func(w1.func).entry;
        p.func_mut(w1.func).block_mut(entry).insts.push(Inst::Send {
            chan: Operand::Imm(w0.status),
            value: Operand::Imm(0),
        });
        let errs = lint_errors(&p, &proto);
        let foreign = errs
            .iter()
            .find(|e| matches!(e, LintError::ForeignChannelOp { .. }))
            .unwrap();
        foreign.render(&p)
    };
    assert!(
        foreign_program.contains("error[lint]"),
        "got: {foreign_program}"
    );
    assert!(foreign_program.contains("-->"), "got: {foreign_program}");
    assert!(foreign_program.contains("--->"), "got: {foreign_program}");
}

/// The transform's own gate reports lint failures through a dedicated error
/// variant with a readable message.
#[test]
fn transform_lint_error_displays_as_lint_failure() {
    let err =
        spice_core::transform::TransformError::Lint(vec![LintError::MissingSpecCheck { core: 1 }]);
    let msg = err.to_string();
    assert!(msg.contains("speculation-safety lints"), "got: {msg}");
}
