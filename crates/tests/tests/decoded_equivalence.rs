//! Cross-representation equivalence: the pre-decoded dispatch
//! ([`spice_ir::DecodedProgram`] + [`spice_ir::interp::ThreadState`]) must
//! retire the *identical* `ExecInfo` stream — classes, memory addresses,
//! branch directions, traps, step events, in the same order — as a
//! reference walker over the structured IR.
//!
//! The reference walker below re-implements the pre-decode execution
//! semantics directly over `Program`/`Block`/`Inst` (the shape
//! `ThreadState` had before the decode was introduced). Both executors are
//! stepped in lockstep over the full workload suite, every invocation, so a
//! decode bug that shifts a single branch target, operand slot or trap
//! surfaces as a first-divergence assertion with context.

use spice_ir::interp::{
    ExecInfo, FlatMemory, LocalSys, MemPort, StepEvent, SysPort, ThreadState, ThreadStatus,
};
use spice_ir::{
    BlockId, DecodedProgram, FuncId, Inst, InstClass, Operand, Program, Reg, Terminator, TrapKind,
};

/// Reference interpreter: walks the structured IR block-by-block with an
/// intra-block instruction cursor, mirroring the semantics the decoded
/// dispatch must preserve.
struct RefThread {
    func: FuncId,
    block: BlockId,
    ip: usize,
    regs: Vec<i64>,
    frames: Vec<RefFrame>,
    status: ThreadStatus,
}

struct RefFrame {
    func: FuncId,
    block: BlockId,
    ip: usize,
    regs: Vec<i64>,
    ret_dst: Option<Reg>,
}

const MAX_CALL_DEPTH: usize = 1024;

impl RefThread {
    fn new(program: &Program, func: FuncId, args: &[i64]) -> Self {
        let f = program.func(func);
        assert_eq!(args.len(), f.params.len());
        let mut regs = vec![0i64; f.reg_count()];
        for (p, a) in f.params.iter().zip(args) {
            regs[p.index()] = *a;
        }
        RefThread {
            func,
            block: f.entry,
            ip: 0,
            regs,
            frames: Vec::new(),
            status: ThreadStatus::Runnable,
        }
    }

    fn operand(&self, op: Operand) -> i64 {
        match op {
            Operand::Reg(r) => self.regs[r.index()],
            Operand::Imm(v) => v,
        }
    }

    fn trap(&mut self, kind: TrapKind) -> Result<StepEvent, TrapKind> {
        self.status = ThreadStatus::Trapped(kind);
        Err(kind)
    }

    fn step(
        &mut self,
        program: &Program,
        mem: &mut dyn MemPort,
        sys: &mut dyn SysPort,
    ) -> Result<StepEvent, TrapKind> {
        match self.status {
            ThreadStatus::Runnable => {}
            ThreadStatus::Halted => return Ok(StepEvent::Halted),
            ThreadStatus::Finished => return Ok(StepEvent::Finished(None)),
            ThreadStatus::Trapped(k) => return Err(k),
        }
        let func = program.func(self.func);
        let block = func.block(self.block);
        let plain = ExecInfo::plain;
        let branch = ExecInfo::branch;
        if self.ip < block.insts.len() {
            let inst = &block.insts[self.ip];
            let class = inst.class();
            let event = match inst {
                Inst::Binary { op, dst, lhs, rhs } => {
                    let v = match op.eval(self.operand(*lhs), self.operand(*rhs)) {
                        Ok(v) => v,
                        Err(t) => return self.trap(t),
                    };
                    self.regs[dst.index()] = v;
                    StepEvent::Executed(plain(class))
                }
                Inst::Copy { dst, src } => {
                    self.regs[dst.index()] = self.operand(*src);
                    StepEvent::Executed(plain(class))
                }
                Inst::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                } => {
                    let v = if self.operand(*cond) != 0 {
                        self.operand(*if_true)
                    } else {
                        self.operand(*if_false)
                    };
                    self.regs[dst.index()] = v;
                    StepEvent::Executed(plain(class))
                }
                Inst::Load { dst, addr, offset } => {
                    let a = self.operand(*addr) + offset;
                    let v = match mem.load(a) {
                        Ok(v) => v,
                        Err(t) => return self.trap(t),
                    };
                    self.regs[dst.index()] = v;
                    StepEvent::Executed(ExecInfo::mem(class, a))
                }
                Inst::Store { src, addr, offset } => {
                    let a = self.operand(*addr) + offset;
                    if let Err(t) = mem.store(a, self.operand(*src)) {
                        return self.trap(t);
                    }
                    StepEvent::Executed(ExecInfo::mem(class, a))
                }
                Inst::Alloc { dst, words } => {
                    let base = match mem.alloc(self.operand(*words)) {
                        Ok(b) => b,
                        Err(t) => return self.trap(t),
                    };
                    self.regs[dst.index()] = base;
                    StepEvent::Executed(plain(class))
                }
                Inst::Call { dst, func, args } => {
                    if self.frames.len() >= MAX_CALL_DEPTH {
                        return self.trap(TrapKind::StackOverflow);
                    }
                    if func.index() >= program.funcs.len() {
                        return self.trap(TrapKind::UnknownFunction);
                    }
                    let callee = program.func(*func);
                    if callee.params.len() != args.len() {
                        return self.trap(TrapKind::UnknownFunction);
                    }
                    let mut new_regs = vec![0i64; callee.reg_count()];
                    for (p, a) in callee.params.iter().zip(args.iter()) {
                        new_regs[p.index()] = self.operand(*a);
                    }
                    self.frames.push(RefFrame {
                        func: self.func,
                        block: self.block,
                        ip: self.ip + 1,
                        regs: std::mem::replace(&mut self.regs, new_regs),
                        ret_dst: *dst,
                    });
                    self.func = *func;
                    self.block = callee.entry;
                    self.ip = 0;
                    return Ok(StepEvent::Executed(plain(InstClass::Branch)));
                }
                Inst::Send { chan, value } => {
                    sys.send(self.operand(*chan), self.operand(*value));
                    StepEvent::Executed(plain(class))
                }
                Inst::Recv { dst, chan } => match sys.try_recv(self.operand(*chan)) {
                    Some(v) => {
                        self.regs[dst.index()] = v;
                        StepEvent::Executed(plain(class))
                    }
                    None => return Ok(StepEvent::Blocked),
                },
                Inst::SpecBegin => {
                    sys.spec_begin();
                    StepEvent::Executed(plain(class))
                }
                Inst::SpecCommit => {
                    sys.spec_commit();
                    StepEvent::Executed(plain(class))
                }
                Inst::SpecAbort => {
                    sys.spec_abort();
                    StepEvent::Executed(plain(class))
                }
                Inst::SpecCheck { dst, core } => {
                    let verdict = sys.spec_conflict(self.operand(*core));
                    self.regs[dst.index()] = verdict;
                    StepEvent::Executed(plain(class))
                }
                Inst::Resteer { core, target } => {
                    sys.resteer(self.operand(*core), *target);
                    StepEvent::Executed(plain(class))
                }
                Inst::Halt => {
                    self.status = ThreadStatus::Halted;
                    return Ok(StepEvent::Halted);
                }
                Inst::Nop => StepEvent::Executed(plain(class)),
                Inst::ProfileHook { site, regs } => {
                    let values: Vec<i64> = regs.iter().map(|r| self.regs[r.index()]).collect();
                    sys.profile(*site, &values);
                    StepEvent::Executed(plain(class))
                }
            };
            self.ip += 1;
            Ok(event)
        } else {
            match block.terminator.clone() {
                Terminator::Br(t) => {
                    self.block = t;
                    self.ip = 0;
                    Ok(StepEvent::Executed(branch(true)))
                }
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let taken = self.operand(cond) != 0;
                    self.block = if taken { then_bb } else { else_bb };
                    self.ip = 0;
                    Ok(StepEvent::Executed(branch(taken)))
                }
                Terminator::Ret { value } => {
                    let v = value.map(|op| self.operand(op));
                    if let Some(frame) = self.frames.pop() {
                        self.func = frame.func;
                        self.block = frame.block;
                        self.ip = frame.ip;
                        self.regs = frame.regs;
                        if let (Some(dst), Some(v)) = (frame.ret_dst, v) {
                            self.regs[dst.index()] = v;
                        }
                        Ok(StepEvent::Executed(branch(true)))
                    } else {
                        self.status = ThreadStatus::Finished;
                        Ok(StepEvent::Finished(v))
                    }
                }
                Terminator::Unreachable => {
                    self.status = ThreadStatus::Trapped(TrapKind::UnsupportedIntrinsic);
                    Err(TrapKind::UnsupportedIntrinsic)
                }
            }
        }
    }
}

/// Steps the decoded and the reference executor in lockstep over one run of
/// `func`, asserting identical events, and returns the shared step count.
#[allow(clippy::too_many_arguments)]
fn lockstep_run(
    label: &str,
    program: &Program,
    decoded: &DecodedProgram,
    func: FuncId,
    args: &[i64],
    mem_a: &mut FlatMemory,
    mem_b: &mut FlatMemory,
    fuel: u64,
) -> u64 {
    let mut sys_a = LocalSys::new();
    let mut sys_b = LocalSys::new();
    let mut dec = ThreadState::new(decoded, func, args);
    let mut refr = RefThread::new(program, func, args);
    for step in 0..fuel {
        let a = dec.step(decoded, mem_a, &mut sys_a);
        let b = refr.step(program, mem_b, &mut sys_b);
        assert_eq!(a, b, "{label}: divergence at step {step}");
        assert_eq!(
            dec.current_block(),
            refr.block,
            "{label}: cursor divergence at step {step}"
        );
        match a {
            Ok(StepEvent::Finished(_)) | Ok(StepEvent::Halted) | Err(_) => {
                assert_eq!(
                    mem_a.words(),
                    mem_b.words(),
                    "{label}: memory divergence at end"
                );
                return step + 1;
            }
            Ok(StepEvent::Blocked) => panic!("{label}: single-threaded run blocked"),
            Ok(StepEvent::Executed(_)) => {}
        }
    }
    panic!("{label}: out of lockstep fuel");
}

/// Decoded and reference execution retire identical `ExecInfo` streams over
/// every workload of the full (small-configuration) suite, across every
/// invocation.
#[test]
fn decoded_execution_matches_reference_walker_on_full_suite() {
    for (name, factory) in spice_bench::experiments::all_workload_factories(true) {
        let mut wl = factory();
        let built = wl.build();
        let decoded = DecodedProgram::new(&built.program);
        let mut mem_a = FlatMemory::for_program(&built.program, 1 << 20);
        let mut args = wl.init(&mut mem_a);
        let mut mem_b = mem_a.clone();
        let mut total_steps = 0u64;
        let mut inv = 0usize;
        loop {
            total_steps += lockstep_run(
                name,
                &built.program,
                &decoded,
                built.kernel,
                &args,
                &mut mem_a,
                &mut mem_b,
                200_000_000,
            );
            match wl.next_invocation(&mut mem_a, inv) {
                Some(a) => {
                    // Drive the reference memory through the same mutation.
                    mem_b = mem_a.clone();
                    args = a;
                    inv += 1;
                }
                None => break,
            }
        }
        assert!(total_steps > 0, "{name}: no steps executed");
    }
}

/// Trap behaviour matches exactly: same trap kind at the same step, with the
/// thread left in the same state on both representations.
#[test]
fn decoded_execution_matches_reference_walker_on_traps() {
    use spice_ir::builder::FunctionBuilder;
    use spice_ir::BinOp;

    // Division by zero mid-loop.
    let mut b = FunctionBuilder::new("divides");
    let n = b.param();
    let q = b.binop(BinOp::Div, 100i64, n);
    b.ret(Some(Operand::Reg(q)));
    let mut p = Program::new();
    let f = p.add_func(b.finish());
    let decoded = DecodedProgram::new(&p);
    let mut mem_a = FlatMemory::new(2048);
    let mut mem_b = FlatMemory::new(2048);
    lockstep_run("div_ok", &p, &decoded, f, &[4], &mut mem_a, &mut mem_b, 100);
    lockstep_run(
        "div_trap",
        &p,
        &decoded,
        f,
        &[0],
        &mut mem_a,
        &mut mem_b,
        100,
    );

    // Out-of-bounds store.
    let mut b = FunctionBuilder::new("oob");
    b.store(1i64, 9_999_999i64, 0);
    b.ret(None);
    let mut p = Program::new();
    let f = p.add_func(b.finish());
    let decoded = DecodedProgram::new(&p);
    lockstep_run("oob", &p, &decoded, f, &[], &mut mem_a, &mut mem_b, 100);
}

/// `ExecInfo` is the per-step return value of the dispatch hot path; pin its
/// packed one-word representation and the accessor round-trips so a future
/// field addition can't silently regrow it.
#[test]
fn exec_info_stays_one_packed_word() {
    assert_eq!(std::mem::size_of::<ExecInfo>(), 8);

    for class in InstClass::ALL {
        let info = ExecInfo::plain(class);
        assert_eq!(info.class(), class);
        assert_eq!(info.mem_addr(), None);
        assert_eq!(info.branch_taken(), None);
    }

    // Address payloads round-trip across the full word-address range the
    // simulator uses, including negative (pre-base) addresses from traps.
    for addr in [0i64, 1, -1, 4096, -4096, (1i64 << 53) - 1, -(1i64 << 53)] {
        for class in [InstClass::Load, InstClass::Store] {
            let info = ExecInfo::mem(class, addr);
            assert_eq!(info.class(), class);
            assert_eq!(info.mem_addr(), Some(addr));
            assert_eq!(info.branch_taken(), None);
        }
    }

    for taken in [false, true] {
        let info = ExecInfo::branch(taken);
        assert_eq!(info.class(), InstClass::Branch);
        assert_eq!(info.mem_addr(), None);
        assert_eq!(info.branch_taken(), Some(taken));
    }
}
