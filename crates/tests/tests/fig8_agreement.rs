//! Figure 8 measured-vs-target agreement: the bins are computed from
//! recorded traces, and this test pins how closely the measured
//! predictability tracks the fractions the corpus was dialed to.
//!
//! The bands are deliberately loose at small size: with 8 sampled
//! invocations the predictable fraction has denominator 7, so a target of
//! 0.82 can only be measured as 5/7 or 6/7. What must hold is that the
//! measurement is present for every loop, within a bounded mean error, and
//! directionally right at the extremes.

use spice_bench::experiments::{fig8, fig8_mean_abs_error};

#[test]
fn measured_predictability_tracks_the_corpus_targets() {
    let bars = fig8(true).expect("fig8");
    assert_eq!(bars.len(), 38, "corpus size");

    let mut loops = 0usize;
    for bar in &bars {
        assert_eq!(
            bar.loops,
            bar.targets.len(),
            "{}: every target loop must be measured",
            bar.benchmark
        );
        assert_eq!(bar.measured.len(), bar.targets.len(), "{}", bar.benchmark);
        for (target, measured) in bar.targets.iter().zip(&bar.measured) {
            assert!(
                (0.0..=1.0).contains(measured),
                "{}: measured fraction {measured} out of range",
                bar.benchmark
            );
            // Directional bands at the extremes: near-certain loops must
            // measure clearly predictable, near-random loops must not.
            if *target >= 0.95 {
                assert!(
                    *measured >= 0.5,
                    "{}: target {target} measured only {measured}",
                    bar.benchmark
                );
            }
            if *target <= 0.05 {
                assert!(
                    *measured <= 0.5,
                    "{}: target {target} measured {measured}",
                    bar.benchmark
                );
            }
            loops += 1;
        }
    }
    assert!(loops > 50, "corpus must span many loops, got {loops}");

    // Aggregate agreement band: mean |measured - target| over every loop.
    let err = fig8_mean_abs_error(&bars);
    assert!(
        err <= 0.30,
        "mean measured-vs-target error {err:.3} exceeds the agreement band"
    );
}
