//! Suite-wide positive lint coverage and the dependence cross-check.
//!
//! Two guarantees over *every* workload factory the farm dispatches:
//!
//! 1. Pre- and post-transform, each workload passes structural verification
//!    and the full speculation-safety lint stack, at every thread count and
//!    conflict granularity in the farm manifest's sweep matrix.
//! 2. The static dependence pre-screen never contradicts dynamic truth: a
//!    workload whose Spice run *measures* cross-chunk dependence violations
//!    is never classified provably-disjoint, and every workload that
//!    declares `AssumeIndependent` is one the pre-screen can actually prove
//!    disjoint.

use spice_bench::experiments::{all_workload_factories, LINE_GRANULARITY_LOG2};
use spice_core::analysis::LoopAnalysis;
use spice_core::backend::SimBackend;
use spice_core::pipeline::predictor_options_with_estimate;
use spice_core::transform::{SpiceOptions, SpiceTransform};
use spice_ir::exec::ConflictPolicy;
use spice_ir::lint::lint_spice;
use spice_ir::verify::verify_program;
use spice_ir::DependenceClass;
use spice_workloads::{run_workload_on_with, workload_load_options};

/// Thread counts the farm manifest sweeps (`SweepMode::ALL`).
const FARM_THREADS: [usize; 2] = [2, 4];

#[test]
fn every_workload_passes_verify_and_lints_across_the_farm_matrix() {
    for (name, factory) in all_workload_factories(true) {
        for threads in FARM_THREADS {
            // The transform is granularity-invariant today; sweeping the
            // manifest's granularities here guards against that coupling
            // silently appearing.
            for granularity in [0u8, LINE_GRANULARITY_LOG2] {
                let mut wl = factory();
                let built = wl.build();
                assert!(
                    verify_program(&built.program).is_ok(),
                    "{name}: pre-transform verify failed"
                );
                let options = workload_load_options(wl.as_ref(), &built)
                    .with_conflict_granularity_log2(granularity);
                let analysis = match options.loop_header {
                    Some(h) => LoopAnalysis::analyze(&built.program, built.kernel, h),
                    None => LoopAnalysis::analyze_outermost(&built.program, built.kernel),
                }
                .unwrap_or_else(|e| panic!("{name}: analysis failed: {e}"));
                let mut program = built.program;
                let spice = SpiceTransform::new(SpiceOptions {
                    threads,
                    predictor: predictor_options_with_estimate(wl.expected_iterations()),
                    conflict_policy: options.conflict_policy,
                })
                .apply(&mut program, &analysis)
                .unwrap_or_else(|e| panic!("{name}: transform failed at {threads} threads: {e}"));
                if let Err(errs) = verify_program(&program) {
                    panic!("{name}: post-transform verify failed: {errs:?}");
                }
                if let Err(errs) = lint_spice(&program, &spice.protocol()) {
                    let rendered: Vec<String> = errs.iter().map(|e| e.render(&program)).collect();
                    panic!(
                        "{name}: speculation-safety lints failed at {threads} threads, \
                         granularity {granularity}:\n{}",
                        rendered.join("\n")
                    );
                }
            }
        }
    }
}

#[test]
fn measured_violations_never_contradict_the_prescreen() {
    let mut saw_violations = false;
    let mut saw_disjoint = false;
    for (name, factory) in all_workload_factories(true) {
        // Static side: classify the target loop.
        let mut wl = factory();
        let built = wl.build();
        let options = workload_load_options(wl.as_ref(), &built);
        let analysis = match options.loop_header {
            Some(h) => LoopAnalysis::analyze(&built.program, built.kernel, h),
            None => LoopAnalysis::analyze_outermost(&built.program, built.kernel),
        }
        .unwrap_or_else(|e| panic!("{name}: analysis failed: {e}"));
        let class = analysis.dependence.class;
        saw_disjoint |= class == DependenceClass::ProvablyDisjoint;

        // Dynamic side: run a fresh instance with detection forced on (word
        // granularity — the honest violation count) and compare.
        let mut run_wl = factory();
        let mut backend = SimBackend::new(4).with_predictor(predictor_options_with_estimate(
            run_wl.expected_iterations(),
        ));
        let summary = run_workload_on_with(run_wl.as_mut(), &mut backend, |o| {
            o.with_conflict_policy(ConflictPolicy::Detect)
        })
        .unwrap_or_else(|e| panic!("{name}: detect run failed: {e}"));
        if summary.dependence_violations > 0 {
            saw_violations = true;
            assert_ne!(
                class,
                DependenceClass::ProvablyDisjoint,
                "{name}: measured {} dependence violations but the pre-screen \
                 claims the loop is provably disjoint — the classification is unsound",
                summary.dependence_violations
            );
        }
    }
    // Keep the implication non-vacuous: the suite must contain both a
    // conflict-carrying workload and a provably-disjoint one.
    assert!(saw_violations, "no workload measured any violations");
    assert!(saw_disjoint, "no workload classified provably-disjoint");
}

#[test]
fn declared_independence_is_always_provable() {
    // `AssumeIndependent` disables the conflict-detection safety net, so a
    // declaration the pre-screen cannot prove is a red flag: either the
    // declaration is wrong or the pre-screen lost precision. Workloads that
    // carry (or may carry) dependences must declare `Detect`.
    for (name, factory) in all_workload_factories(true) {
        let mut wl = factory();
        let declared = wl.conflict_policy();
        let built = wl.build();
        let options = workload_load_options(wl.as_ref(), &built);
        let analysis = match options.loop_header {
            Some(h) => LoopAnalysis::analyze(&built.program, built.kernel, h),
            None => LoopAnalysis::analyze_outermost(&built.program, built.kernel),
        }
        .unwrap_or_else(|e| panic!("{name}: analysis failed: {e}"));
        if declared == ConflictPolicy::AssumeIndependent {
            assert_eq!(
                analysis.dependence.class,
                DependenceClass::ProvablyDisjoint,
                "{name} declares AssumeIndependent but the pre-screen cannot prove \
                 the loop disjoint ({:?})",
                analysis.dependence
            );
            assert_eq!(
                analysis.recommended_policy(),
                ConflictPolicy::AssumeIndependent
            );
        }
    }
}
