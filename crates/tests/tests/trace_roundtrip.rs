//! Trace-file round-trip property: for every real driver of the suite,
//! record → serialize → parse → replay reproduces the recording exactly,
//! and corrupted documents fail with typed errors instead of panicking.

use spice_bench::experiments::{all_workload_factories, replay_sequential};
use spice_bench::tracefile::{trace_from_json, trace_to_json, TraceFileError};
use spice_profiler::record_workload_trace;
use spice_workloads::trace::{fuzz_trace, FuzzConfig, TraceError};

#[test]
fn recorded_traces_round_trip_and_replay_across_the_suite() {
    for (name, factory) in all_workload_factories(true) {
        let mut wl = factory();
        let trace = record_workload_trace(wl.as_mut(), None)
            .unwrap_or_else(|e| panic!("{name}: recording failed: {e:?}"));
        trace
            .validate()
            .unwrap_or_else(|e| panic!("{name}: recorded an invalid trace: {e}"));
        assert!(trace.total_iterations() > 0, "{name}: empty recording");

        // Serialize → parse reproduces the trace exactly, and the format is
        // canonical: re-serializing the parse is byte-identical.
        let doc = trace_to_json(&trace);
        let parsed = trace_from_json(&doc)
            .unwrap_or_else(|e| panic!("{name}: own serialization failed to parse: {e}"));
        assert_eq!(parsed, trace, "{name}: round trip changed the trace");
        assert_eq!(
            trace_to_json(&parsed),
            doc,
            "{name}: re-serialization is not canonical"
        );

        // The parsed trace replays: the sequential replay checks the host
        // mirror on every invocation internally.
        let replay = replay_sequential(&parsed)
            .unwrap_or_else(|e| panic!("{name}: parsed trace failed to replay: {e}"));
        assert_eq!(
            replay.returns.len(),
            trace.invocations.len(),
            "{name}: replay invocation count"
        );

        // Fuzzed descendants keep the property: still valid, still
        // round-trip, still replay.
        for seed in [1u64, 2] {
            let mutant = fuzz_trace(
                &trace,
                &FuzzConfig {
                    seed,
                    ..FuzzConfig::default()
                },
            );
            mutant
                .validate()
                .unwrap_or_else(|e| panic!("{name}/seed{seed}: invalid mutant: {e}"));
            let mutant_doc = trace_to_json(&mutant);
            let mutant_back = trace_from_json(&mutant_doc)
                .unwrap_or_else(|e| panic!("{name}/seed{seed}: mutant failed to parse: {e}"));
            assert_eq!(mutant_back, mutant);
            replay_sequential(&mutant_back)
                .unwrap_or_else(|e| panic!("{name}/seed{seed}: mutant failed to replay: {e}"));
        }
    }
}

#[test]
fn corrupted_trace_files_from_real_recordings_fail_typed() {
    // One real recording as the corruption substrate.
    let (name, factory) = all_workload_factories(true).remove(0);
    let mut wl = factory();
    let trace = record_workload_trace(wl.as_mut(), None)
        .unwrap_or_else(|e| panic!("{name}: recording failed: {e:?}"));
    let doc = trace_to_json(&trace);

    // Truncation at every eighth byte: always a typed error, never a panic,
    // never a silently-parsed trace.
    for cut in (0..doc.len() - 1).step_by(8) {
        let truncated = &doc[..cut];
        assert!(
            trace_from_json(truncated).is_err(),
            "{name}: truncation at {cut} parsed"
        );
    }

    // Wrong format tag is a schema error; flipped content is a checksum
    // mismatch.
    let retagged = doc.replacen("spice-trace", "spicy-trace", 1);
    assert!(matches!(
        trace_from_json(&retagged),
        Err(TraceFileError::Schema(_))
    ));
    let tampered = doc.replacen("\"write\": null", "\"write\": 1", 1);
    assert_ne!(tampered, doc, "{name}: recording has no iterations?");
    assert!(matches!(
        trace_from_json(&tampered),
        Err(TraceFileError::ChecksumMismatch { .. })
    ));

    // A checksum-consistent but invariant-breaking document surfaces the
    // underlying TraceError.
    let mut bad = trace.clone();
    let last = bad.invocations[0].iterations.len() - 1;
    bad.invocations[0].iterations[last].write = Some(1);
    assert!(matches!(
        trace_from_json(&trace_to_json(&bad)),
        Err(TraceFileError::Invalid(TraceError::WriteOutOfRange { .. }))
    ));
}
