//! Differential test layer for the `mcf_app` miniature application.
//!
//! Modeled on the interpreter-validation pattern of differential execution:
//! the same program runs on three independent engines — the timing-simulator
//! backend (Spice-transformed IR on simulated cores), the native-thread
//! backend (interpreted chunks on OS threads), and a pure-host Rust
//! implementation of the network simplex ([`spice_workloads::HostMcfApp`],
//! which never touches simulated memory) — and everything observable must be
//! bit-identical across all three:
//!
//! * the per-pivot checksum (the sum of all non-root potentials — a value
//!   data-dependent on every store the refresh loop makes),
//! * the final potential of every node (live-out memory of the
//!   application),
//! * the invocation count.
//!
//! A sweep of seeded random flow networks (several sizes × seeds) keeps the
//! agreement from being an artifact of one lucky instance. Because the
//! refresh loop carries the faithful `pred->potential` dependence and the
//! pivot phases store into the very links the speculative walk traverses,
//! agreement *requires* the conflict-detection subsystem to squash and
//! recover correctly on both backends — which the test also asserts it
//! actually exercised.

use spice_core::backend::SimBackend;
use spice_ir::exec::ExecutionBackend;
use spice_runtime::NativeLoopBackend;
use spice_workloads::{run_workload_on, HostMcfApp, McfAppConfig, McfAppWorkload};

fn run_backend(
    config: &McfAppConfig,
    backend: &mut dyn ExecutionBackend,
) -> (Vec<Option<i64>>, Vec<i64>, usize) {
    let mut wl = McfAppWorkload::new(config.clone());
    let summary = run_workload_on(&mut wl, backend)
        .unwrap_or_else(|e| panic!("{} run failed: {e}", backend.name()));
    let potentials: Vec<i64> = (0..config.nodes)
        .map(|i| wl.potential(backend.mem(), i))
        .collect();
    (summary.return_values, potentials, summary.invocations)
}

#[test]
fn sim_native_and_host_agree_over_a_sweep_of_networks() {
    for &(nodes, arcs) in &[(60usize, 140usize), (110, 260)] {
        for seed in [11u64, 12, 13] {
            let config = McfAppConfig {
                nodes,
                arcs,
                pivots: 8,
                seed,
            };
            let label = format!("nodes={nodes} arcs={arcs} seed={seed}");

            // Leg 1: pure host — plain Rust arrays, no IR anywhere.
            let mut host = HostMcfApp::new(&config);
            let host_checksums: Vec<Option<i64>> =
                (0..config.pivots).map(|_| Some(host.pivot())).collect();
            let host_potentials = host.potentials().to_vec();

            // Leg 2: the timing simulator (Spice-transformed, 4 threads).
            let mut sim = SimBackend::tiny(4);
            let (sim_checksums, sim_potentials, sim_invocations) = run_backend(&config, &mut sim);

            // Leg 3: native OS threads (interpreted chunks, 4 threads).
            let mut native = NativeLoopBackend::new(4);
            let (nat_checksums, nat_potentials, nat_invocations) =
                run_backend(&config, &mut native);

            assert_eq!(sim_invocations, config.pivots, "{label}: sim invocations");
            assert_eq!(
                nat_invocations, config.pivots,
                "{label}: native invocations"
            );
            assert_eq!(
                sim_checksums, host_checksums,
                "{label}: sim checksums diverged from the host application"
            );
            assert_eq!(
                nat_checksums, host_checksums,
                "{label}: native checksums diverged from the host application"
            );
            assert_eq!(
                sim_potentials, host_potentials,
                "{label}: sim final potentials diverged"
            );
            assert_eq!(
                nat_potentials, host_potentials,
                "{label}: native final potentials diverged"
            );
        }
    }
}

/// The agreement above is only meaningful if speculation actually ran and
/// the conflict subsystem actually recovered: a config large enough to
/// speculate must produce dependence-violation squashes on both backends,
/// and the results must *still* be bit-identical to the host.
#[test]
fn agreement_survives_actual_dependence_violations() {
    let config = McfAppConfig {
        nodes: 120,
        arcs: 260,
        pivots: 8,
        seed: 0x6d63_6661,
    };
    let mut host = HostMcfApp::new(&config);
    let host_checksums: Vec<Option<i64>> = (0..config.pivots).map(|_| Some(host.pivot())).collect();

    for (name, backend) in [
        (
            "sim",
            Box::new(SimBackend::tiny(4)) as Box<dyn ExecutionBackend>,
        ),
        ("native", Box::new(NativeLoopBackend::new(4))),
    ] {
        let mut backend = backend;
        let mut wl = McfAppWorkload::new(config.clone());
        let summary = run_workload_on(&mut wl, backend.as_mut())
            .unwrap_or_else(|e| panic!("{name} run failed: {e}"));
        assert_eq!(summary.return_values, host_checksums, "{name} checksums");
        assert!(
            summary.dependence_violations > 0,
            "{name}: the refresh chain never tripped the conflict detector — \
             nothing was speculated, the differential layer proved nothing"
        );
        assert!(
            summary.committed_chunks + summary.squashed_chunks > 0,
            "{name}"
        );
    }
}

/// The expectation machinery itself is differential: `run_workload_on`
/// checks every invocation against `expected_result`, which snapshots the
/// network *from simulated memory* and runs the host pivot on it. This test
/// pins the third leg the other way around: a sequential (2-thread minimum,
/// but prediction-free first invocation) run and the host app stay in
/// lockstep pivot by pivot, not just at the end.
#[test]
fn per_pivot_lockstep_with_the_host_application() {
    let config = McfAppConfig {
        nodes: 80,
        arcs: 180,
        pivots: 6,
        seed: 21,
    };
    let mut host = HostMcfApp::new(&config);
    let mut wl = McfAppWorkload::new(config.clone());
    let mut backend = NativeLoopBackend::new(2);
    let summary = run_workload_on(&mut wl, &mut backend).expect("native run");
    assert_eq!(summary.return_values.len(), config.pivots);
    for (inv, ret) in summary.return_values.iter().enumerate() {
        let expected = host.pivot();
        assert_eq!(*ret, Some(expected), "pivot {inv}");
    }
}
