//! Golden-cycle regression test: the simulated cycle counts of the Figure 7
//! suite are pinned exactly.
//!
//! The event-driven scheduler and the pre-decoded dispatch are *host-side*
//! optimizations — the simulated machine model did not change, so every
//! workload's sequential and Spice cycle counts must be bit-identical to the
//! goldens below (captured from the committed machine model on the
//! reduced-size suite; the full-size equivalent is enforced in CI by
//! regenerating `BENCH_fig7.json` and diffing it byte-for-byte against the
//! committed artifact).
//!
//! If a PR *intends* to change simulated time (a new latency, an extra
//! instruction in the transform), regenerate: run
//! `cargo run --release -p spice-bench --bin fig7 -- --small` and copy the
//! `sequential_cycles`/`spice_cycles` columns here, and commit the
//! regenerated full-size `BENCH_fig7.json` alongside.

use spice_bench::experiments::fig7;

/// `(benchmark, threads, sequential_cycles, spice_cycles)` of the small
/// suite.
///
/// Re-captured for the mcf_app PR, which changes simulated time in three
/// deliberate ways: the dependence-free paper loops (ks, otter, sjeng) now
/// declare `ConflictPolicy::AssumeIndependent` per the per-workload registry
/// (no `spec.check` instructions in their merge chains), the conflict
/// tracker no longer records architectural writes made while no chunk is
/// speculating (exact, affects one list_splice verdict), and the suite gains
/// the `mcf_app` miniature application rows.
const GOLDEN: &[(&str, usize, u64, u64)] = &[
    ("ks", 2, 22363, 25710),
    ("ks", 4, 22363, 25225),
    ("otter", 2, 12067, 15053),
    ("otter", 4, 12067, 14471),
    ("181.mcf", 2, 36342, 40308),
    ("181.mcf", 4, 36342, 35238),
    ("458.sjeng", 2, 19648, 18264),
    ("458.sjeng", 4, 19648, 21256),
    ("mcf_true", 2, 31820, 52887),
    ("mcf_true", 4, 31820, 54802),
    ("list_splice", 2, 18811, 30693),
    ("list_splice", 4, 18811, 31793),
    ("mcf_app", 2, 105869, 125966),
    ("mcf_app", 4, 105869, 127654),
];

#[test]
fn fig7_small_cycle_counts_match_goldens_exactly() {
    let rows = fig7(true).expect("fig7 small");
    assert_eq!(rows.len(), GOLDEN.len(), "suite composition changed");
    for (row, &(name, threads, seq, spice)) in rows.iter().zip(GOLDEN) {
        assert_eq!(row.benchmark, name, "row order changed");
        assert_eq!(row.threads, threads, "thread sweep changed");
        assert_eq!(
            row.sequential_cycles, seq,
            "{name}/{threads}t: sequential cycles drifted (simulated time must be bit-identical; \
             see the module docs if the change is intentional)"
        );
        assert_eq!(
            row.spice_cycles, spice,
            "{name}/{threads}t: Spice cycles drifted (simulated time must be bit-identical; \
             see the module docs if the change is intentional)"
        );
    }
}
