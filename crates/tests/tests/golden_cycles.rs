//! Golden-cycle regression test: the simulated cycle counts of the Figure 7
//! suite are pinned exactly.
//!
//! The event-driven scheduler and the pre-decoded dispatch are *host-side*
//! optimizations — the simulated machine model did not change, so every
//! workload's sequential and Spice cycle counts must be bit-identical to the
//! goldens below (captured from the committed machine model on the
//! reduced-size suite; the full-size equivalent is enforced in CI by
//! regenerating `BENCH_fig7.json` and diffing it byte-for-byte against the
//! committed artifact).
//!
//! If a PR *intends* to change simulated time (a new latency, an extra
//! instruction in the transform), regenerate: run
//! `cargo run --release -p spice-bench --bin fig7 -- --small` and copy the
//! `sequential_cycles`/`spice_cycles` columns here, and commit the
//! regenerated full-size `BENCH_fig7.json` alongside.

use spice_bench::experiments::fig7;

/// `(benchmark, threads, sequential_cycles, spice_cycles)` of the small
/// suite.
const GOLDEN: &[(&str, usize, u64, u64)] = &[
    ("ks", 2, 22363, 25740),
    ("ks", 4, 22363, 25294),
    ("otter", 2, 12067, 15083),
    ("otter", 4, 12067, 14561),
    ("181.mcf", 2, 36342, 40308),
    ("181.mcf", 4, 36342, 35238),
    ("458.sjeng", 2, 19648, 18315),
    ("458.sjeng", 4, 19648, 21391),
    ("mcf_true", 2, 31820, 52887),
    ("mcf_true", 4, 31820, 54802),
    ("list_splice", 2, 18811, 30693),
    ("list_splice", 4, 18811, 31705),
];

#[test]
fn fig7_small_cycle_counts_match_goldens_exactly() {
    let rows = fig7(true).expect("fig7 small");
    assert_eq!(rows.len(), GOLDEN.len(), "suite composition changed");
    for (row, &(name, threads, seq, spice)) in rows.iter().zip(GOLDEN) {
        assert_eq!(row.benchmark, name, "row order changed");
        assert_eq!(row.threads, threads, "thread sweep changed");
        assert_eq!(
            row.sequential_cycles, seq,
            "{name}/{threads}t: sequential cycles drifted (simulated time must be bit-identical; \
             see the module docs if the change is intentional)"
        );
        assert_eq!(
            row.spice_cycles, spice,
            "{name}/{threads}t: Spice cycles drifted (simulated time must be bit-identical; \
             see the module docs if the change is intentional)"
        );
    }
}
