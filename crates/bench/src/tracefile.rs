//! The validated trace-file format: `WorkloadTrace` ⇄ JSON.
//!
//! A trace file is one JSON object (grammar in DESIGN.md §"Trace layer"):
//!
//! ```text
//! {
//!   "format": "spice-trace",
//!   "version": 1,
//!   "name": <string>,            // originating workload
//!   "loop": <string>,            // recorded loop
//!   "site": <int ≥ 0>,           // profile-hook site id
//!   "checksum": <int>,           // content checksum (u64 as decimal)
//!   "invocations": [             // one array per invocation
//!     [ {"key": [<int>...], "write": <int>|null}, ... ],
//!     ...
//!   ]
//! }
//! ```
//!
//! Emission goes through [`crate::json`] (ROADMAP §3.7 — no serde), and
//! every written document validates against the full JSON grammar before it
//! leaves the process. Parsing is strictly typed: syntax errors, schema
//! violations, checksum mismatches and semantic violations (via
//! [`WorkloadTrace::validate`]) each surface as a [`TraceFileError`]
//! variant — a corrupted file can never panic or silently replay wrong.

use spice_workloads::trace::{TraceError, TraceInvocation, TraceIteration, WorkloadTrace};

use crate::json::{self, Value};

/// Format tag (the `"format"` member).
pub const FORMAT: &str = "spice-trace";
/// Current format version (the `"version"` member).
pub const VERSION: i64 = 1;

/// Why a trace file failed to load. Every path is typed; none panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFileError {
    /// The document is not well-formed JSON.
    Syntax(String),
    /// The document is valid JSON but not a trace file (wrong shape,
    /// missing or mistyped member, unknown format tag or version).
    Schema(String),
    /// The stored checksum does not match the recomputed content checksum.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed from the parsed content.
        computed: u64,
    },
    /// The trace parsed but violates a structural invariant.
    Invalid(TraceError),
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Syntax(e) => write!(f, "trace file syntax error: {e}"),
            TraceFileError::Schema(e) => write!(f, "trace file schema error: {e}"),
            TraceFileError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace file checksum mismatch: stored {stored}, computed {computed}"
            ),
            TraceFileError::Invalid(e) => write!(f, "trace invariant violated: {e}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

/// Serializes a trace as a trace-file document (trailing newline included).
///
/// The output is deterministic — same trace, same bytes — and is validated
/// against the JSON grammar before being returned.
#[must_use]
pub fn trace_to_json(trace: &WorkloadTrace) -> String {
    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str(&format!("  \"format\": {},\n", json::string(FORMAT)));
    doc.push_str(&format!("  \"version\": {VERSION},\n"));
    doc.push_str(&format!("  \"name\": {},\n", json::string(&trace.name)));
    doc.push_str(&format!(
        "  \"loop\": {},\n",
        json::string(&trace.loop_name)
    ));
    doc.push_str(&format!("  \"site\": {},\n", trace.site));
    // Bit-cast to i64: JSON integers in this codebase are i64, and the
    // parser round-trips the cast exactly.
    doc.push_str(&format!("  \"checksum\": {},\n", trace.checksum() as i64));
    doc.push_str("  \"invocations\": [");
    for (i, inv) in trace.invocations.iter().enumerate() {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str("\n    [");
        for (j, it) in inv.iterations.iter().enumerate() {
            if j > 0 {
                doc.push(',');
            }
            let key: Vec<String> = it.key.iter().map(ToString::to_string).collect();
            let write = it.write.map_or("null".to_string(), |w| w.to_string());
            doc.push_str(&format!(
                "\n      {{\"key\": [{}], \"write\": {write}}}",
                key.join(", ")
            ));
        }
        if inv.iterations.is_empty() {
            doc.push(']');
        } else {
            doc.push_str("\n    ]");
        }
    }
    if trace.invocations.is_empty() {
        doc.push_str("]\n}\n");
    } else {
        doc.push_str("\n  ]\n}\n");
    }
    debug_assert!(json::validate(&doc).is_ok());
    doc
}

fn schema<T>(msg: impl Into<String>) -> Result<T, TraceFileError> {
    Err(TraceFileError::Schema(msg.into()))
}

fn member<'a>(doc: &'a Value, key: &str) -> Result<&'a Value, TraceFileError> {
    match doc.get(key) {
        Some(v) => Ok(v),
        None => schema(format!("missing member `{key}`")),
    }
}

/// Parses and fully checks a trace-file document: JSON grammar, schema,
/// content checksum, then [`WorkloadTrace::validate`].
///
/// # Errors
///
/// Returns the first failure as a typed [`TraceFileError`].
pub fn trace_from_json(doc: &str) -> Result<WorkloadTrace, TraceFileError> {
    let root = json::parse(doc).map_err(TraceFileError::Syntax)?;
    if !matches!(root, Value::Object(_)) {
        return schema("root is not an object");
    }
    let format = member(&root, "format")?;
    if format.as_str() != Some(FORMAT) {
        return schema(format!("unknown format tag {format:?}"));
    }
    let version = member(&root, "version")?;
    if version.as_i64() != Some(VERSION) {
        return schema(format!("unsupported version {version:?}"));
    }
    let name = member(&root, "name")?
        .as_str()
        .map_or_else(|| schema("`name` is not a string"), |s| Ok(s.to_string()))?;
    let loop_name = member(&root, "loop")?
        .as_str()
        .map_or_else(|| schema("`loop` is not a string"), |s| Ok(s.to_string()))?;
    let site = match member(&root, "site")?.as_i64() {
        Some(s) if (0..=i64::from(u32::MAX)).contains(&s) => s as u32,
        _ => return schema("`site` is not a u32"),
    };
    let stored = match member(&root, "checksum")?.as_i64() {
        Some(c) => c as u64,
        None => return schema("`checksum` is not an integer"),
    };

    let invocations_val = member(&root, "invocations")?;
    let Some(inv_items) = invocations_val.as_array() else {
        return schema("`invocations` is not an array");
    };
    let mut invocations = Vec::with_capacity(inv_items.len());
    for (i, inv) in inv_items.iter().enumerate() {
        let Some(iterations_val) = inv.as_array() else {
            return schema(format!("invocation {i} is not an array"));
        };
        let mut iterations = Vec::with_capacity(iterations_val.len());
        for (j, it) in iterations_val.iter().enumerate() {
            if !matches!(it, Value::Object(_)) {
                return schema(format!("invocation {i} iteration {j} is not an object"));
            }
            let Some(key_items) = it
                .get("key")
                .ok_or_else(|| {
                    TraceFileError::Schema(format!("invocation {i} iteration {j} missing `key`"))
                })?
                .as_array()
            else {
                return schema(format!(
                    "invocation {i} iteration {j}: `key` is not an array"
                ));
            };
            let mut key = Vec::with_capacity(key_items.len());
            for k in key_items {
                match k.as_i64() {
                    Some(v) => key.push(v),
                    None => {
                        return schema(format!(
                            "invocation {i} iteration {j}: key element is not an integer"
                        ))
                    }
                }
            }
            let write = match it.get("write") {
                Some(Value::Null) | None => None,
                Some(v) => match v.as_i64() {
                    Some(w) if (0..=i64::from(u32::MAX)).contains(&w) => Some(w as u32),
                    _ => {
                        return schema(format!(
                            "invocation {i} iteration {j}: `write` is not a u32 or null"
                        ))
                    }
                },
            };
            iterations.push(TraceIteration { key, write });
        }
        invocations.push(TraceInvocation { iterations });
    }

    let trace = WorkloadTrace {
        name,
        loop_name,
        site,
        invocations,
    };
    let computed = trace.checksum();
    if stored != computed {
        return Err(TraceFileError::ChecksumMismatch { stored, computed });
    }
    trace.validate().map_err(TraceFileError::Invalid)?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_workloads::trace::{fuzz_trace, synthetic_trace, FuzzConfig};

    #[test]
    fn serialization_round_trips_exactly() {
        for p in [0.0, 0.6, 1.0] {
            let t = synthetic_trace("rt", 5, 12, p, 0xABCD);
            let doc = trace_to_json(&t);
            json::validate(&doc).unwrap();
            let back = trace_from_json(&doc).unwrap();
            assert_eq!(back, t);
            // Re-serialization is byte-identical: the format is canonical.
            assert_eq!(trace_to_json(&back), doc);
        }
    }

    #[test]
    fn fuzzed_traces_with_writes_round_trip() {
        let base = synthetic_trace("w", 4, 20, 0.5, 77);
        let mutant = fuzz_trace(
            &base,
            &FuzzConfig {
                seed: 3,
                splice_rate: 0.5,
                relink_depth: 3,
                churn_rate: 0.5,
            },
        );
        assert!(mutant.has_writes());
        let back = trace_from_json(&trace_to_json(&mutant)).unwrap();
        assert_eq!(back, mutant);
    }

    #[test]
    fn corrupted_documents_yield_typed_errors_not_panics() {
        let doc = trace_to_json(&synthetic_trace("c", 3, 6, 1.0, 5));

        // Syntax damage.
        let truncated = &doc[..doc.len() / 2];
        assert!(matches!(
            trace_from_json(truncated),
            Err(TraceFileError::Syntax(_))
        ));
        assert!(matches!(
            trace_from_json(""),
            Err(TraceFileError::Syntax(_))
        ));

        // Schema damage.
        for (from, to) in [
            ("\"format\": \"spice-trace\"", "\"format\": \"not-a-trace\""),
            ("\"version\": 1", "\"version\": 99"),
            ("\"site\": 0", "\"site\": -4"),
            ("\"key\": [", "\"key\": [\"x\", "),
            ("\"checksum\": ", "\"checksum\": null, \"x\": "),
        ] {
            let bad = doc.replacen(from, to, 1);
            assert_ne!(bad, doc, "replacement `{from}` did not apply");
            assert!(
                matches!(trace_from_json(&bad), Err(TraceFileError::Schema(_))),
                "`{from}` → `{to}` did not raise a schema error"
            );
        }
        assert!(matches!(
            trace_from_json("[1, 2]"),
            Err(TraceFileError::Schema(_))
        ));

        // Content damage flips the checksum.
        let tampered = doc.replacen("\"write\": null", "\"write\": 1", 1);
        assert_ne!(tampered, doc);
        assert!(matches!(
            trace_from_json(&tampered),
            Err(TraceFileError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn semantic_violations_surface_as_invalid() {
        // A trace whose checksum is right but whose content breaks the
        // replay invariants (write past the end of its invocation).
        let mut t = synthetic_trace("bad", 2, 4, 1.0, 9);
        t.invocations[0].iterations[3].write = Some(2);
        let doc = trace_to_json(&t);
        assert!(matches!(
            trace_from_json(&doc),
            Err(TraceFileError::Invalid(TraceError::WriteOutOfRange { .. }))
        ));
    }
}
