//! # spice-bench — experiment harness for the Spice reproduction
//!
//! One entry point per table and figure of the paper's evaluation:
//!
//! | paper artifact | binary | function |
//! |---|---|---|
//! | Table 1 (machine) | `cargo run -p spice-bench --bin table1` | [`experiments::table1`] |
//! | Table 2 (benchmarks) | `cargo run -p spice-bench --bin table2` | [`experiments::table2`] |
//! | Figures 2/3/5 (schedules) | `cargo run -p spice-bench --bin schedules` | [`experiments::schedules`] |
//! | Figure 7 (loop speedups) | `cargo run -p spice-bench --bin fig7` | [`experiments::fig7`] |
//! | Figure 8 (predictability) | `cargo run -p spice-bench --bin fig8` | [`experiments::fig8`] |
//! | Ablations (§4/§5 discussion) | `cargo run -p spice-bench --bin ablation` | [`experiments::ablation`] |
//! | Whole evaluation, in parallel | `cargo run -p spice-bench --bin farm` | [`farm_driver::run_manifest`] |
//!
//! Pass `--small` to any binary for a fast, reduced-size run (used by CI and
//! the crate's own tests). The figure binaries are thin wrappers over the
//! simulation farm ([`farm_driver`]): the same jobs, run on a work-stealing
//! pool sized by `--jobs` (default: host parallelism), with artifacts
//! streamed in deterministic job order so bytes never depend on scheduling.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod farm_driver;
pub mod json;
pub mod trace_json;
pub mod tracefile;

/// Returns the `--jobs N` argument (worker threads), or 0 meaning "size to
/// the host's parallelism".
#[must_use]
pub fn jobs_requested() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Returns `true` when the process arguments request a reduced-size run.
#[must_use]
pub fn small_requested() -> bool {
    std::env::args().any(|a| a == "--small")
}
