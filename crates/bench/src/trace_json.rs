//! JSON serialization of [`TraceEvent`] streams through the validated
//! [`crate::json`] emitter.
//!
//! Two consumers share these functions:
//!
//! * the farm's `--trace-out` artifact — one job per row, streamed in job
//!   id order, so the document is byte-identical at `--jobs 1` and
//!   `--jobs N` (the trace-determinism CI gate diffs exactly that);
//! * failure-capture artifacts and the `inspect` CLI, which render a
//!   recorder's ring buffer for forensics.
//!
//! Events are flat objects tagged by `"kind"` (the [`TraceEvent::kind`]
//! name), with `null` for absent optional fields and the squash cause
//! flattened into `cause` / `cause_addr` — greppable without a JSON
//! library on the consumer side.

use spice_ir::{MisspeculationCause, SquashForensics, TraceEvent};

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

fn opt_i64(v: Option<i64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

fn opt_u32(v: Option<u32>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

/// The artifact label of a squash cause (stable, snake_case).
#[must_use]
pub fn cause_label(cause: &MisspeculationCause) -> &'static str {
    match cause {
        MisspeculationCause::StalePrediction => "stale_prediction",
        MisspeculationCause::Fault(_) => "fault",
        MisspeculationCause::SquashCascade => "squash_cascade",
        MisspeculationCause::NoPrediction => "no_prediction",
        MisspeculationCause::DependenceViolation { .. } => "dependence_violation",
    }
}

fn forensics_json(f: &SquashForensics) -> String {
    format!(
        "{{\"addr\": {}, \"word_addr\": {}, \"false_conflicts\": {}, \
         \"granularity_log2\": {}, \"writer_core\": {}, \"writer_chunk\": {}, \
         \"writer_func\": {}, \"writer_block\": {}, \"writer_at\": {}, \
         \"reader_func\": {}, \"reader_block\": {}}}",
        f.addr,
        opt_i64(f.word_addr),
        f.false_conflicts,
        f.granularity_log2,
        opt_u32(f.writer_core),
        opt_u64(f.writer_chunk),
        opt_u32(f.writer_site.map(|(func, _)| func.0)),
        opt_u32(f.writer_site.map(|(_, block)| block.0)),
        opt_u64(f.writer_at),
        opt_u32(f.reader_site.map(|(func, _)| func.0)),
        opt_u32(f.reader_site.map(|(_, block)| block.0)),
    )
}

/// Renders one event as a flat JSON object (no separator, no newline).
#[must_use]
pub fn trace_event_json(e: &TraceEvent) -> String {
    let kind = crate::json::string(e.kind());
    match e {
        TraceEvent::InvocationBegin { index } => {
            format!("{{\"kind\": {kind}, \"index\": {index}}}")
        }
        TraceEvent::Retire {
            at,
            core,
            func,
            block,
            retired,
        } => format!(
            "{{\"kind\": {kind}, \"at\": {at}, \"core\": {core}, \"func\": {}, \
             \"block\": {}, \"retired\": {retired}}}",
            func.0, block.0
        ),
        TraceEvent::ChannelSend {
            at,
            core,
            chan,
            value,
        }
        | TraceEvent::ChannelRecv {
            at,
            core,
            chan,
            value,
        } => format!(
            "{{\"kind\": {kind}, \"at\": {at}, \"core\": {core}, \"chan\": {chan}, \
             \"value\": {value}}}"
        ),
        TraceEvent::ChunkBegin { at, core, chunk } => {
            format!("{{\"kind\": {kind}, \"at\": {at}, \"core\": {core}, \"chunk\": {chunk}}}")
        }
        TraceEvent::ChunkValidate {
            at,
            core,
            chunk,
            conflict,
        } => format!(
            "{{\"kind\": {kind}, \"at\": {at}, \"core\": {core}, \"chunk\": {}, \
             \"conflict\": {}}}",
            opt_u64(*chunk),
            opt_i64(*conflict)
        ),
        TraceEvent::ChunkCommit {
            at,
            core,
            chunk,
            writes,
        } => format!(
            "{{\"kind\": {kind}, \"at\": {at}, \"core\": {core}, \"chunk\": {}, \
             \"writes\": {writes}}}",
            opt_u64(*chunk)
        ),
        TraceEvent::ChunkSquash {
            at,
            core,
            chunk,
            cause,
            forensics,
        } => {
            let cause_addr = match cause {
                MisspeculationCause::DependenceViolation { addr } => Some(*addr),
                _ => None,
            };
            format!(
                "{{\"kind\": {kind}, \"at\": {at}, \"core\": {core}, \"chunk\": {}, \
                 \"cause\": {}, \"cause_addr\": {}, \"forensics\": {}}}",
                opt_u64(*chunk),
                crate::json::string(cause_label(cause)),
                opt_i64(cause_addr),
                forensics
                    .as_ref()
                    .map_or_else(|| "null".to_string(), forensics_json)
            )
        }
        TraceEvent::PredictorPlan { at, chunks } => {
            format!("{{\"kind\": {kind}, \"at\": {at}, \"chunks\": {chunks}}}")
        }
        TraceEvent::PredictorFeedback {
            at,
            committed,
            squashed,
        } => format!(
            "{{\"kind\": {kind}, \"at\": {at}, \"committed\": {committed}, \
             \"squashed\": {squashed}}}"
        ),
        TraceEvent::CacheMiss {
            at,
            core,
            addr,
            is_store,
        } => format!(
            "{{\"kind\": {kind}, \"at\": {at}, \"core\": {core}, \"addr\": {addr}, \
             \"is_store\": {is_store}}}"
        ),
        TraceEvent::Watch {
            at,
            core,
            func,
            block,
            addr,
            value,
            is_store,
        } => format!(
            "{{\"kind\": {kind}, \"at\": {at}, \"core\": {core}, \"func\": {}, \
             \"block\": {}, \"addr\": {addr}, \"value\": {value}, \"is_store\": {is_store}}}",
            func.0, block.0
        ),
    }
}

/// Renders a sequence of events as a JSON array (single line per event,
/// two-space continuation indent under `indent`).
#[must_use]
pub fn trace_events_json<'a>(
    events: impl Iterator<Item = &'a TraceEvent>,
    indent: usize,
) -> String {
    let pad = " ".repeat(indent);
    let inner = " ".repeat(indent + 2);
    let rows: Vec<String> = events
        .map(|e| format!("{inner}{}", trace_event_json(e)))
        .collect();
    if rows.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n{pad}]", rows.join(",\n"))
    }
}

/// Opening of the farm's `--trace-out` document, up to `"jobs": [`.
#[must_use]
pub fn trace_json_header(small: bool) -> String {
    format!("{{\n  \"figure\": \"trace\",\n  \"small\": {small},\n  \"jobs\": [\n")
}

/// One job's trace row (no separator, no trailing newline): the label plus
/// every event its recorder held when the job retired.
#[must_use]
pub fn trace_job_json(label: &str, events: &[TraceEvent]) -> String {
    format!(
        "    {{\"label\": {}, \"events\": {}}}",
        crate::json::string(label),
        trace_events_json(events.iter(), 4)
    )
}

/// Closing of the `--trace-out` document.
#[must_use]
pub fn trace_json_footer() -> String {
    "\n  ]\n}\n".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spice_ir::{BlockId, FuncId};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::InvocationBegin { index: 0 },
            TraceEvent::Retire {
                at: 3,
                core: 0,
                func: FuncId(1),
                block: BlockId(2),
                retired: 4,
            },
            TraceEvent::ChannelSend {
                at: 4,
                core: 0,
                chan: 7,
                value: -3,
            },
            TraceEvent::ChunkBegin {
                at: 5,
                core: 1,
                chunk: 9,
            },
            TraceEvent::ChunkValidate {
                at: 6,
                core: 1,
                chunk: Some(9),
                conflict: Some(132),
            },
            TraceEvent::ChunkSquash {
                at: 7,
                core: 1,
                chunk: Some(9),
                cause: MisspeculationCause::DependenceViolation { addr: 132 },
                forensics: Some(SquashForensics {
                    addr: 132,
                    word_addr: Some(133),
                    writer_core: Some(0),
                    writer_chunk: None,
                    writer_site: Some((FuncId(1), BlockId(3))),
                    writer_at: Some(6),
                    reader_site: None,
                    false_conflicts: 1,
                    granularity_log2: 3,
                }),
            },
            TraceEvent::PredictorFeedback {
                at: 8,
                committed: 2,
                squashed: 1,
            },
            TraceEvent::CacheMiss {
                at: 9,
                core: 2,
                addr: 40,
                is_store: false,
            },
            TraceEvent::Watch {
                at: 10,
                core: 0,
                func: FuncId(0),
                block: BlockId(1),
                addr: 132,
                value: 7,
                is_store: true,
            },
        ]
    }

    #[test]
    fn every_event_kind_serializes_to_valid_json() {
        for e in sample_events() {
            let doc = trace_event_json(&e);
            crate::json::validate(&doc).unwrap_or_else(|err| panic!("invalid: {err}\n{doc}"));
            assert!(doc.contains(&format!("\"{}\"", e.kind())), "{doc}");
        }
    }

    #[test]
    fn squash_rows_carry_the_violating_address_and_forensics() {
        let events = sample_events();
        let squash = events
            .iter()
            .find(|e| matches!(e, TraceEvent::ChunkSquash { .. }))
            .unwrap();
        let doc = trace_event_json(squash);
        assert!(doc.contains("\"cause\": \"dependence_violation\""), "{doc}");
        assert!(doc.contains("\"cause_addr\": 132"), "{doc}");
        assert!(doc.contains("\"word_addr\": 133"), "{doc}");
        assert!(doc.contains("\"false_conflicts\": 1"), "{doc}");
        assert!(doc.contains("\"writer_chunk\": null"), "{doc}");
    }

    #[test]
    fn the_trace_document_composes_and_validates() {
        let events = sample_events();
        let mut doc = trace_json_header(true);
        doc.push_str(&trace_job_json("sweep/ks/spice4", &events));
        doc.push_str(",\n");
        doc.push_str(&trace_job_json("sweep/ks/sequential", &[]));
        doc.push_str(&trace_json_footer());
        crate::json::validate(&doc).unwrap_or_else(|err| panic!("invalid: {err}\n{doc}"));
    }
}
