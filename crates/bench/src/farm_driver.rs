//! The simulation farm: bench experiments as jobs on the `spice-farm`
//! work-stealing engine.
//!
//! [`run_manifest`] turns an [`Manifest`] (which figures, which size, how
//! many workers) into a deterministic job list:
//!
//! * one **sweep job** per `(benchmark, mode)` cell of the Figure 7 /
//!   harness matrix — sequential, 2-thread and 4-thread Spice. Figure 7 and
//!   the harness report both derive from this one job set, so requesting
//!   both costs no extra simulation;
//! * one **hotness job** plus (for conflict-detecting workloads) two
//!   **conflict-probe jobs** per benchmark for Table 2;
//! * one job per **ablation variant**.
//!
//! Each preparation (IR build → analysis → transform → decode → image) is
//! built once in a [`PreparedCache`] keyed by
//! [`sweep_prep_key`](crate::experiments::sweep_prep_key) and shared by
//! `Arc` across every job that needs it; at full size the Table 2
//! word-granularity probe keys identically to the Figure 7 four-thread run
//! and reuses its decode.
//!
//! Artifacts stream: each JSON row is appended to the output file the
//! moment its job retires, and because the engine delivers results in job
//! id order — never completion order — the bytes are identical at
//! `--jobs 1` and `--jobs N`, and identical to what the serial emitters in
//! [`crate::experiments`] produce (the row/header/footer functions are
//! shared). Aggregates that need every row (geomeans, totals) live in the
//! footers.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use spice_farm::{CacheStats, FarmStats, Job, PreparedCache};
use spice_ir::TraceEvent;
use spice_workloads::trace::{fuzz_trace, WorkloadTrace};
use spice_workloads::{fig8_corpus, BackendRunSummary};

use crate::experiments::{
    ablation_variants, all_workload_factories, capture_crosscheck_divergence,
    capture_sweep_failure, crosscheck_json_footer, crosscheck_json_header, crosscheck_json_row,
    crosscheck_workload, failure_capture_json, fig7_json_footer, fig7_json_header, fig7_json_row,
    fig7_row_from_sweep, fig8_bar, fig8_json_footer, fig8_json_header, fig8_json_row,
    fuzz_config_for_seed, fuzz_differential, harness_row_from_sweep, harnessperf_json_footer,
    harnessperf_json_header, harnessperf_json_row, prepare_sweep, record_driver_trace,
    run_prepared_sweep, run_prepared_sweep_traced, sweep_prep_key, table2_hotness_row,
    table2_json_footer, table2_json_header, table2_json_row, AblationRow, CrosscheckRow,
    FailureCapture, Fig7Row, Fig8Bar, FuzzRow, HarnessPerfRow, SweepMode, SweepPrep, SweepRun,
    Table2Row, WorkloadFactory, LINE_GRANULARITY_LOG2, REPLAY_THREADS,
};
use crate::trace_json::{trace_job_json, trace_json_footer, trace_json_header};
use crate::tracefile::trace_to_json;

/// Thread count of the cross-check jobs (matches the `crosscheck` binary).
const CROSSCHECK_THREADS: usize = 4;

/// One figure of the evaluation, as selectable in an experiment manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    /// Figure 7 loop speedups (`BENCH_fig7.json`).
    Fig7,
    /// Table 2 benchmark details with conflict-precision probes
    /// (`BENCH_table2.json`).
    Table2,
    /// Predictor-design ablation (text only).
    Ablation,
    /// Harness performance (`BENCH_harness.json`).
    Harness,
    /// Sim ↔ native backend cross-check (`BENCH_crosscheck.json`) — one job
    /// per workload, always on the small/tiny configurations; a divergence
    /// fails the job and routes forensics through the failed-job capture.
    Crosscheck,
    /// Figure 8 live-in predictability (`BENCH_fig8.json`) — one job per
    /// corpus benchmark; bins are measured by recording each loop's trace
    /// and re-analyzing it offline.
    Fig8,
    /// Trace-fuzz differential sweep (rows in the report only) — one job
    /// per seed in the manifest's `fuzz_seeds` range; a replay divergence
    /// fails the job and persists the offending trace file.
    Fuzz,
}

impl Figure {
    /// Every figure, in canonical order.
    pub const ALL: [Figure; 7] = [
        Figure::Fig7,
        Figure::Table2,
        Figure::Ablation,
        Figure::Harness,
        Figure::Crosscheck,
        Figure::Fig8,
        Figure::Fuzz,
    ];

    /// The manifest name of this figure.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Figure::Fig7 => "fig7",
            Figure::Table2 => "table2",
            Figure::Ablation => "ablation",
            Figure::Harness => "harness",
            Figure::Crosscheck => "crosscheck",
            Figure::Fig8 => "fig8",
            Figure::Fuzz => "fuzz",
        }
    }

    /// Parses a comma-separated figure list (e.g. `"fig7,table2"`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown figure.
    pub fn parse_list(s: &str) -> Result<Vec<Figure>, String> {
        s.split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(|p| {
                Figure::ALL
                    .into_iter()
                    .find(|f| f.name() == p)
                    .ok_or_else(|| {
                        format!(
                            "unknown figure {p:?} \
                             (expected fig7, table2, ablation, harness, crosscheck, \
                             fig8, fuzz)"
                        )
                    })
            })
            .collect()
    }
}

/// An experiment manifest: what to run and how wide.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Figures to produce. Order does not matter; job enumeration is fixed.
    pub figures: Vec<Figure>,
    /// Reduced-size inputs (the `--small` suite).
    pub small: bool,
    /// Worker threads; 0 sizes to the host's parallelism.
    pub jobs: usize,
    /// Mutation-seed sweep axis for the `fuzz` figure: one differential
    /// replay job per seed. Ignored unless `fuzz` is requested.
    pub fuzz_seeds: std::ops::Range<u64>,
}

impl Default for Manifest {
    fn default() -> Self {
        Manifest {
            figures: Vec::new(),
            small: false,
            jobs: 0,
            fuzz_seeds: 0..DEFAULT_FUZZ_SEEDS,
        }
    }
}

/// Seeds the `fuzz` figure sweeps when no `--fuzz-seeds` width is given.
pub const DEFAULT_FUZZ_SEEDS: u64 = 8;

impl Manifest {
    fn wants(&self, f: Figure) -> bool {
        self.figures.contains(&f)
    }
}

/// Where to write each streamed artifact; `None` skips that artifact (the
/// figure's rows are still computed and returned).
#[derive(Debug, Clone, Default)]
pub struct OutPaths {
    /// `BENCH_fig7.json` destination.
    pub fig7: Option<PathBuf>,
    /// `BENCH_table2.json` destination.
    pub table2: Option<PathBuf>,
    /// `BENCH_harness.json` destination.
    pub harness: Option<PathBuf>,
    /// `BENCH_crosscheck.json` destination.
    pub crosscheck: Option<PathBuf>,
    /// `BENCH_fig8.json` destination.
    pub fig8: Option<PathBuf>,
    /// `--trace-out` destination. Setting this turns tracing on for every
    /// sweep job (simulator-side only — native traces are not reproducible
    /// for racy workloads, so they never enter this artifact) and streams
    /// one trace row per job, byte-identical at any `--jobs` width.
    pub trace: Option<PathBuf>,
    /// Directory for failed-job forensics (`FAILED_<label>.json`): the
    /// re-run's trace ring-buffer, snapshot cycles and final state dump.
    pub failures_dir: Option<PathBuf>,
}

/// Everything a farm run produced: the per-figure rows (exactly what the
/// serial experiment functions would have returned) plus the engine's
/// accounting.
#[derive(Debug)]
pub struct FarmReport {
    /// Figure 7 rows, in benchmark-major order (empty unless requested).
    pub fig7_rows: Vec<Fig7Row>,
    /// Harness-perf rows (empty unless requested).
    pub harness_rows: Vec<HarnessPerfRow>,
    /// Table 2 rows with probe columns filled (empty unless requested).
    pub table2_rows: Vec<Table2Row>,
    /// Ablation rows (empty unless requested).
    pub ablation_rows: Vec<AblationRow>,
    /// Cross-check rows (empty unless requested). Present rows always
    /// agree — a divergence fails its job instead of producing a row.
    pub crosscheck_rows: Vec<CrosscheckRow>,
    /// Figure 8 bars in corpus order (empty unless requested).
    pub fig8_bars: Vec<Fig8Bar>,
    /// Fuzz-differential rows in seed order (empty unless requested).
    /// Present rows always agree — a divergence fails its job after
    /// persisting the offending trace.
    pub fuzz_rows: Vec<FuzzRow>,
    /// Per-Spice-job backend summaries `(job label, summary)` — the
    /// determinism test compares these across worker counts.
    pub sweep_summaries: Vec<(String, BackendRunSummary)>,
    /// Engine accounting: job count, workers, wall time, per-job compute.
    pub stats: FarmStats,
    /// Preparation-cache accounting: hits, misses, build time.
    pub cache: CacheStats,
    /// Host hardware parallelism at run time.
    pub host_cores: usize,
    /// The `jobs` the manifest requested (0 = host).
    pub requested_jobs: usize,
    /// Whether this was a reduced-size run.
    pub small: bool,
    /// Simulated cycles summed over sweep jobs.
    pub simulated_cycles: u64,
    /// Simulate-only host nanoseconds summed over sweep jobs.
    pub sim_nanos: u128,
}

impl FarmReport {
    /// Host seconds an equivalent serial run would have computed for: the
    /// sum of every job's own compute time (no overlap).
    #[must_use]
    pub fn serial_equivalent_seconds(&self) -> f64 {
        self.stats.total_job_nanos as f64 / 1e9
    }

    /// Wall seconds the farm actually took.
    #[must_use]
    pub fn farm_wall_seconds(&self) -> f64 {
        self.stats.wall_nanos as f64 / 1e9
    }

    /// Serial-equivalent over wall — the farm's parallel speedup.
    #[must_use]
    pub fn parallel_speedup(&self) -> f64 {
        self.serial_equivalent_seconds() / self.farm_wall_seconds()
    }

    /// Host nanoseconds per simulated cycle over the sweep jobs (dispatch
    /// only — preparation time is cached and excluded). The size-independent
    /// rate `farm --check` gates on.
    #[must_use]
    pub fn ns_per_simulated_cycle(&self) -> f64 {
        if self.simulated_cycles == 0 {
            f64::NAN
        } else {
            self.sim_nanos as f64 / self.simulated_cycles as f64
        }
    }
}

/// Renders the farm's own artifact (`BENCH_farm.json`): serial vs farm
/// seconds, job and worker counts, host cores, cache accounting, and the
/// dispatch rate the perf smoke gates on.
#[must_use]
pub fn farm_json(report: &FarmReport) -> String {
    let metric_rows: Vec<String> = report
        .stats
        .details
        .iter()
        .map(|m| {
            format!(
                "    {{\"label\": {}, \"host_nanos\": {}, \"ok\": {}, \
                 \"events\": {}, \"squashes\": {}}}",
                crate::json::string(&m.label),
                m.host_nanos,
                m.ok,
                m.events,
                m.squashes
            )
        })
        .collect();
    let job_metrics = if metric_rows.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n  ]", metric_rows.join(",\n"))
    };
    format!(
        "{{\n  \"figure\": \"farm\",\n  \"small\": {},\n  \"host_cores\": {},\n  \
         \"requested_jobs\": {},\n  \"workers\": {},\n  \"jobs\": {},\n  \
         \"failures\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"prepare_seconds\": {},\n  \"serial_equivalent_seconds\": {},\n  \
         \"farm_wall_seconds\": {},\n  \"parallel_speedup\": {},\n  \
         \"simulated_cycles\": {},\n  \"ns_per_simulated_cycle\": {},\n  \
         \"job_metrics\": {job_metrics}\n}}\n",
        report.small,
        report.host_cores,
        report.requested_jobs,
        report.stats.workers,
        report.stats.jobs,
        report.stats.failures,
        report.cache.hits,
        report.cache.misses,
        crate::json::float(report.cache.build_nanos as f64 / 1e9),
        crate::json::float(report.serial_equivalent_seconds()),
        crate::json::float(report.farm_wall_seconds()),
        crate::json::float(report.parallel_speedup()),
        report.simulated_cycles,
        crate::json::float(report.ns_per_simulated_cycle())
    )
}

/// What one farm job computed.
enum Payload {
    Sweep {
        bench: String,
        mode: SweepMode,
        build_nanos: u128,
        run: Box<SweepRun>,
        /// Recorded trace events (empty unless `--trace-out` was requested).
        trace: Vec<TraceEvent>,
    },
    Hotness(Box<Table2Row>),
    Probe {
        bench: String,
        granularity_log2: u8,
        violations: usize,
    },
    Ablation(Box<AblationRow>),
    Crosscheck(Box<CrosscheckRow>),
    Fig8(Box<Fig8Bar>),
    Fuzz(Box<FuzzRow>),
}

/// A file-system-safe rendering of a job label (`sweep/ks/spice4` →
/// `sweep_ks_spice4`).
fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes a failure-capture artifact as `<dir>/FAILED_<label>.json` and
/// returns its path. Artifacts are per-job files, so concurrent failing
/// jobs never interleave writes.
fn write_failure_artifact(dir: &Path, capture: &FailureCapture) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join(format!("FAILED_{}.json", sanitize_label(&capture.label)));
    let doc = failure_capture_json(capture);
    crate::json::validate(&doc).map_err(|e| format!("failure artifact invalid: {e}"))?;
    std::fs::write(&path, doc).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Persists a diverging fuzz mutant as `<dir>/FAILED_<label>.json`: the
/// divergence description plus the full trace-file document, so the exact
/// scenario replays offline with no recording step.
fn write_fuzz_failure_artifact(
    dir: &Path,
    label: &str,
    error: &str,
    trace: &WorkloadTrace,
) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join(format!("FAILED_{}.json", sanitize_label(label)));
    let trace_doc = trace_to_json(trace);
    let doc = format!(
        "{{\n  \"label\": {},\n  \"error\": {},\n  \"trace\": {}}}\n",
        crate::json::string(label),
        crate::json::string(error),
        // The embedded document ends in "}\n"; trim to nest it cleanly.
        trace_doc.trim_end()
    );
    crate::json::validate(&doc).map_err(|e| format!("fuzz artifact invalid: {e}"))?;
    std::fs::write(&path, doc).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Annotates a sweep-job error with a forensic re-run: a traced,
/// snapshotted deterministic replay persisted as a retryable artifact.
fn sweep_failed(
    failures_dir: Option<&Path>,
    factory: &WorkloadFactory,
    prep: &SweepPrep,
    label: &str,
    error: String,
) -> String {
    let Some(dir) = failures_dir else {
        return error;
    };
    let capture = capture_sweep_failure(factory, prep, label, &error);
    match write_failure_artifact(dir, &capture) {
        Ok(path) => format!("{error} (forensics: {})", path.display()),
        Err(e) => format!("{error} (forensics capture failed: {e})"),
    }
}

/// A JSON artifact written row-by-row as jobs retire. The file on disk and
/// the in-memory mirror are appended in lockstep; `finish` validates the
/// mirror so a malformed document fails loudly instead of shipping.
struct RowStream {
    path: PathBuf,
    file: std::fs::File,
    mirror: String,
    rows: usize,
}

impl RowStream {
    fn create(path: &Path, header: &str) -> Result<RowStream, String> {
        let mut file =
            std::fs::File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
        file.write_all(header.as_bytes())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        Ok(RowStream {
            path: path.to_path_buf(),
            file,
            mirror: header.to_string(),
            rows: 0,
        })
    }

    fn push_row(&mut self, row: &str) -> Result<(), String> {
        let mut chunk = String::new();
        if self.rows > 0 {
            chunk.push_str(",\n");
        }
        chunk.push_str(row);
        self.rows += 1;
        self.mirror.push_str(&chunk);
        self.file
            .write_all(chunk.as_bytes())
            .map_err(|e| format!("write {}: {e}", self.path.display()))
    }

    fn finish(mut self, footer: &str) -> Result<(), String> {
        self.mirror.push_str(footer);
        self.file
            .write_all(footer.as_bytes())
            .map_err(|e| format!("write {}: {e}", self.path.display()))?;
        self.file
            .flush()
            .map_err(|e| format!("flush {}: {e}", self.path.display()))?;
        crate::json::validate(&self.mirror)
            .map_err(|e| format!("{}: emitted invalid JSON: {e}", self.path.display()))?;
        eprintln!("wrote {}", self.path.display());
        Ok(())
    }
}

/// Runs the manifest's figures as one parallel sweep, streaming the
/// requested artifacts row-by-row, and returns the assembled rows plus the
/// engine accounting.
///
/// # Errors
///
/// Returns the first job failure (in job id order) or artifact I/O error.
///
/// # Panics
///
/// Panics only on engine invariant violations (duplicate job ids).
pub fn run_manifest(manifest: &Manifest, outs: &OutPaths) -> Result<FarmReport, String> {
    let small = manifest.small;
    let factories: Vec<(&'static str, Arc<WorkloadFactory>)> = all_workload_factories(small)
        .into_iter()
        .map(|(name, factory)| (name, Arc::new(factory)))
        .collect();
    let cache: Arc<PreparedCache<SweepPrep>> = Arc::new(PreparedCache::new());

    // --- Deterministic job enumeration -----------------------------------
    // Ids fix the artifact row order: sweep jobs benchmark-major with modes
    // in `SweepMode::ALL` order, then Table 2 parts benchmark-major with the
    // hotness job before its probes, then ablation variants. The sink
    // relies on this: a benchmark's sequential result always precedes its
    // Spice results, a hotness row always precedes its probes.
    let sweep_wanted = manifest.wants(Figure::Fig7) || manifest.wants(Figure::Harness);
    let tracing = outs.trace.is_some();
    let mut jobs: Vec<Job<Payload>> = Vec::new();

    if sweep_wanted {
        for (bench, factory) in &factories {
            for mode in SweepMode::ALL {
                let key = sweep_prep_key(bench, mode, small, 0);
                let factory = Arc::clone(factory);
                let cache = Arc::clone(&cache);
                let bench = (*bench).to_string();
                let label = format!("sweep/{bench}/{}", mode.label());
                let failures_dir = outs.failures_dir.clone();
                jobs.push(Job::new(jobs.len() as u64, label.clone(), move || {
                    let prep =
                        cache.try_get_or_build(&key, || prepare_sweep(&factory, mode, small, 0))?;
                    let traced = if tracing {
                        run_prepared_sweep_traced(&factory, &prep)
                    } else {
                        run_prepared_sweep(&factory, &prep).map(|run| (run, Vec::new()))
                    };
                    let (run, trace) = traced.map_err(|e| {
                        sweep_failed(failures_dir.as_deref(), &factory, &prep, &label, e)
                    })?;
                    Ok(Payload::Sweep {
                        bench,
                        mode,
                        build_nanos: prep.build_nanos,
                        run: Box::new(run),
                        trace,
                    })
                }));
            }
        }
    }

    // Probe counts per benchmark, so the sink knows when a Table 2 row is
    // complete without consulting the workload again.
    let mut probes_expected: HashMap<String, usize> = HashMap::new();
    if manifest.wants(Figure::Table2) {
        for (bench, factory) in &factories {
            {
                let factory = Arc::clone(factory);
                jobs.push(Job::new(
                    jobs.len() as u64,
                    format!("table2/{bench}/hotness"),
                    move || {
                        Ok(Payload::Hotness(Box::new(table2_hotness_row(
                            &factory, small,
                        )?)))
                    },
                ));
            }
            let detects = factory().conflict_policy().detects();
            probes_expected.insert((*bench).to_string(), if detects { 2 } else { 0 });
            if detects {
                for granularity_log2 in [0u8, LINE_GRANULARITY_LOG2] {
                    let factory = Arc::clone(factory);
                    let cache = Arc::clone(&cache);
                    let key = sweep_prep_key(
                        bench,
                        SweepMode::Spice { threads: 4 },
                        small,
                        granularity_log2,
                    );
                    let bench = (*bench).to_string();
                    let label = format!("table2/{bench}/probe-g{granularity_log2}");
                    let failures_dir = outs.failures_dir.clone();
                    jobs.push(Job::new(jobs.len() as u64, label.clone(), move || {
                        // Same computation as `table2_probe`, but the
                        // preparation comes from the shared cache — at
                        // full size the g=0 probe reuses the Figure 7
                        // four-thread decode.
                        let prep = cache.try_get_or_build(&key, || {
                            prepare_sweep(
                                &factory,
                                SweepMode::Spice { threads: 4 },
                                small,
                                granularity_log2,
                            )
                        })?;
                        let run = run_prepared_sweep(&factory, &prep).map_err(|e| {
                            sweep_failed(failures_dir.as_deref(), &factory, &prep, &label, e)
                        })?;
                        Ok(Payload::Probe {
                            bench,
                            granularity_log2,
                            violations: run.dependence_violations,
                        })
                    }));
                }
            }
        }
    }

    if manifest.wants(Figure::Ablation) {
        for variant in 0..ablation_variants().len() {
            jobs.push(Job::new(
                jobs.len() as u64,
                format!("ablation/{variant}"),
                move || {
                    Ok(Payload::Ablation(Box::new(
                        crate::experiments::ablation_variant_row(small, variant)?,
                    )))
                },
            ));
        }
    }

    if manifest.wants(Figure::Crosscheck) {
        // Cross-check always runs the small/tiny configurations regardless
        // of `manifest.small` — the comparison is about backend agreement,
        // not workload scale, and this keeps the 7-row pin of the
        // standalone `crosscheck` binary.
        for (bench, factory) in all_workload_factories(true) {
            let factory = Arc::new(factory);
            let bench = bench.to_string();
            let label = format!("crosscheck/{bench}");
            let failures_dir = outs.failures_dir.clone();
            jobs.push(Job::new(jobs.len() as u64, label.clone(), move || {
                let row = crosscheck_workload(&bench, &factory, CROSSCHECK_THREADS)?;
                if row.agree && row.sim.invocations == row.native.invocations {
                    return Ok(Payload::Crosscheck(Box::new(row)));
                }
                let error = format!(
                    "backend divergence: sim returned {:?} over {} invocations, \
                     native returned {:?} over {} invocations",
                    row.sim.return_values,
                    row.sim.invocations,
                    row.native.return_values,
                    row.native.invocations
                );
                let Some(dir) = failures_dir else {
                    return Err(error);
                };
                let capture =
                    capture_crosscheck_divergence(&factory, CROSSCHECK_THREADS, &label, &error);
                Err(match write_failure_artifact(&dir, &capture) {
                    Ok(path) => format!("{error} (forensics: {})", path.display()),
                    Err(e) => format!("{error} (forensics capture failed: {e})"),
                })
            }));
        }
    }

    if manifest.wants(Figure::Fig8) {
        // One job per corpus benchmark. Recording + offline analysis is a
        // pure function of the (seeded) workload, so the rows are
        // deterministic and the streamed artifact byte-identical at any
        // worker count.
        for bench in fig8_corpus() {
            let label = format!("fig8/{}", bench.name);
            jobs.push(Job::new(jobs.len() as u64, label, move || {
                Ok(Payload::Fig8(Box::new(fig8_bar(&bench, small)?)))
            }));
        }
    }

    if manifest.wants(Figure::Fuzz) {
        // One job per mutation seed; seeds round-robin over the real
        // drivers. Each driver's base trace is recorded once (small
        // configurations, like the cross-check) and shared through the
        // prepared cache; the mutant is derived in-job, replayed on sim,
        // native and sequential substrates, and any divergence persists the
        // offending trace file before failing the job.
        let fuzz_factories: Vec<(&'static str, Arc<WorkloadFactory>)> =
            all_workload_factories(true)
                .into_iter()
                .map(|(name, factory)| (name, Arc::new(factory)))
                .collect();
        let trace_cache: Arc<PreparedCache<WorkloadTrace>> = Arc::new(PreparedCache::new());
        for seed in manifest.fuzz_seeds.clone() {
            let (base_name, factory) = &fuzz_factories[seed as usize % fuzz_factories.len()];
            let base_name = *base_name;
            let factory = Arc::clone(factory);
            let trace_cache = Arc::clone(&trace_cache);
            let label = format!("fuzz/{base_name}/{seed}");
            let failures_dir = outs.failures_dir.clone();
            jobs.push(Job::new(jobs.len() as u64, label.clone(), move || {
                let base = trace_cache.try_get_or_build(&format!("trace/{base_name}"), || {
                    record_driver_trace(&factory).map_err(|e| format!("{base_name}: {e}"))
                })?;
                let mutant = fuzz_trace(&base, &fuzz_config_for_seed(seed));
                let row = fuzz_differential(&label, seed, base_name, &mutant, REPLAY_THREADS)?;
                if row.agree {
                    return Ok(Payload::Fuzz(Box::new(row)));
                }
                let error = format!(
                    "replay divergence on mutant {:#x} (seq {:#x}, sim {:#x}, native {:#x})",
                    row.trace_checksum, row.checksum, row.sim_checksum, row.native_checksum
                );
                let Some(dir) = failures_dir else {
                    return Err(error);
                };
                Err(
                    match write_fuzz_failure_artifact(&dir, &label, &error, &mutant) {
                        Ok(path) => format!("{error} (trace: {})", path.display()),
                        Err(e) => format!("{error} (trace capture failed: {e})"),
                    },
                )
            }));
        }
    }

    // --- Streaming sinks --------------------------------------------------
    let mut fig7_stream = match (&outs.fig7, manifest.wants(Figure::Fig7)) {
        (Some(path), true) => Some(RowStream::create(path, &fig7_json_header(small))?),
        _ => None,
    };
    let mut harness_stream = match (&outs.harness, manifest.wants(Figure::Harness)) {
        (Some(path), true) => Some(RowStream::create(path, &harnessperf_json_header(small))?),
        _ => None,
    };
    let mut table2_stream = match (&outs.table2, manifest.wants(Figure::Table2)) {
        (Some(path), true) => Some(RowStream::create(path, &table2_json_header(small))?),
        _ => None,
    };
    let mut crosscheck_stream = match (&outs.crosscheck, manifest.wants(Figure::Crosscheck)) {
        (Some(path), true) => Some(RowStream::create(
            path,
            &crosscheck_json_header(CROSSCHECK_THREADS),
        )?),
        _ => None,
    };
    let mut fig8_stream = match (&outs.fig8, manifest.wants(Figure::Fig8)) {
        (Some(path), true) => Some(RowStream::create(path, &fig8_json_header(small))?),
        _ => None,
    };
    // Only sweep jobs contribute trace rows: the simulator is
    // single-threaded and deterministic, so the artifact byte-diffs across
    // `--jobs` widths. Native (cross-check) traces are deterministic in
    // validate/commit order but not in content for racy workloads, so they
    // stay out of this artifact and are only persisted by failure capture.
    let mut trace_stream = match (&outs.trace, sweep_wanted) {
        (Some(path), true) => Some(RowStream::create(path, &trace_json_header(small))?),
        _ => None,
    };

    let mut fig7_rows: Vec<Fig7Row> = Vec::new();
    let mut harness_rows: Vec<HarnessPerfRow> = Vec::new();
    let mut table2_rows: Vec<Table2Row> = Vec::new();
    let mut ablation_rows: Vec<AblationRow> = Vec::new();
    let mut crosscheck_rows: Vec<CrosscheckRow> = Vec::new();
    let mut fig8_bars: Vec<Fig8Bar> = Vec::new();
    let mut fuzz_rows: Vec<FuzzRow> = Vec::new();
    let mut sweep_summaries: Vec<(String, BackendRunSummary)> = Vec::new();
    let mut job_observability: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut seq_cycles: HashMap<String, u64> = HashMap::new();
    let mut pending_table2: HashMap<String, (Table2Row, usize)> = HashMap::new();
    let mut simulated_cycles = 0u64;
    let mut sim_nanos = 0u128;
    let mut first_error: Option<String> = None;

    let fig7_wanted = manifest.wants(Figure::Fig7);
    let harness_wanted = manifest.wants(Figure::Harness);

    let mut stats = spice_farm::run_jobs(jobs, manifest.jobs, |result| {
        if first_error.is_some() {
            return;
        }
        let payload = match result.outcome {
            Ok(p) => p,
            Err(e) => {
                first_error = Some(format!("{}: {e}", result.label));
                return;
            }
        };
        let sunk: Result<(), String> = (|| {
            match payload {
                Payload::Sweep {
                    bench,
                    mode,
                    build_nanos,
                    run,
                    trace,
                } => {
                    simulated_cycles = simulated_cycles.saturating_add(run.cycles);
                    sim_nanos += run.sim_nanos;
                    let squashes = run.summary.as_ref().map_or(0, |s| s.squashed_chunks as u64);
                    job_observability.insert(result.id, (trace.len() as u64, squashes));
                    if let Some(s) = &mut trace_stream {
                        s.push_row(&trace_job_json(&result.label, &trace))?;
                    }
                    if let Some(summary) = &run.summary {
                        sweep_summaries.push((result.label.clone(), summary.clone()));
                    }
                    if harness_wanted {
                        let row = harness_row_from_sweep(&bench, mode, build_nanos, &run);
                        if let Some(s) = &mut harness_stream {
                            s.push_row(&harnessperf_json_row(&row))?;
                        }
                        harness_rows.push(row);
                    }
                    match mode {
                        SweepMode::Sequential => {
                            seq_cycles.insert(bench, run.cycles);
                        }
                        SweepMode::Spice { threads } => {
                            if fig7_wanted {
                                let seq = *seq_cycles
                                    .get(&bench)
                                    .expect("sequential job precedes spice jobs in id order");
                                let row = fig7_row_from_sweep(&bench, threads, seq, &run);
                                if let Some(s) = &mut fig7_stream {
                                    s.push_row(&fig7_json_row(&row))?;
                                }
                                fig7_rows.push(row);
                            }
                        }
                    }
                }
                Payload::Hotness(row) => {
                    let bench = row.benchmark.clone();
                    let expected = probes_expected.get(&bench).copied().unwrap_or(0);
                    pending_table2.insert(bench.clone(), (*row, expected));
                    if expected == 0 {
                        let (row, _) = pending_table2.remove(&bench).expect("just inserted");
                        if let Some(s) = &mut table2_stream {
                            s.push_row(&table2_json_row(&row))?;
                        }
                        table2_rows.push(row);
                    }
                }
                Payload::Probe {
                    bench,
                    granularity_log2,
                    violations,
                } => {
                    let (row, remaining) = pending_table2
                        .get_mut(&bench)
                        .expect("hotness job precedes probes in id order");
                    if granularity_log2 == 0 {
                        row.word_violations = Some(violations);
                    } else {
                        row.line_violations = Some(violations);
                    }
                    *remaining -= 1;
                    if *remaining == 0 {
                        let (row, _) = pending_table2.remove(&bench).expect("present");
                        if let Some(s) = &mut table2_stream {
                            s.push_row(&table2_json_row(&row))?;
                        }
                        table2_rows.push(row);
                    }
                }
                Payload::Ablation(row) => ablation_rows.push(*row),
                Payload::Crosscheck(row) => {
                    let squashes = (row.sim.squashed_chunks + row.native.squashed_chunks) as u64;
                    job_observability.insert(result.id, (0, squashes));
                    if let Some(s) = &mut crosscheck_stream {
                        s.push_row(&crosscheck_json_row(&row))?;
                    }
                    crosscheck_rows.push(*row);
                }
                Payload::Fig8(bar) => {
                    if let Some(s) = &mut fig8_stream {
                        s.push_row(&fig8_json_row(&bar))?;
                    }
                    fig8_bars.push(*bar);
                }
                Payload::Fuzz(row) => {
                    job_observability
                        .insert(result.id, (row.iterations, row.sim_violations as u64));
                    fuzz_rows.push(*row);
                }
            }
            Ok(())
        })();
        if let Err(e) = sunk {
            first_error = Some(e);
        }
    });

    for (id, (events, squashes)) in &job_observability {
        stats.annotate(*id, *events, *squashes);
    }

    if let Some(e) = first_error {
        return Err(e);
    }
    if let Some(s) = fig7_stream {
        s.finish(&fig7_json_footer(&fig7_rows))?;
    }
    if let Some(s) = harness_stream {
        s.finish(&harnessperf_json_footer(&harness_rows))?;
    }
    if let Some(s) = table2_stream {
        s.finish(&table2_json_footer())?;
    }
    if let Some(s) = crosscheck_stream {
        s.finish(&crosscheck_json_footer(&crosscheck_rows))?;
    }
    if let Some(s) = fig8_stream {
        s.finish(&fig8_json_footer(&fig8_bars))?;
    }
    if let Some(s) = trace_stream {
        s.finish(&trace_json_footer())?;
    }

    Ok(FarmReport {
        fig7_rows,
        harness_rows,
        table2_rows,
        ablation_rows,
        crosscheck_rows,
        fig8_bars,
        fuzz_rows,
        sweep_summaries,
        stats,
        cache: cache.stats(),
        host_cores: spice_farm::resolve_workers(0),
        requested_jobs: manifest.jobs,
        small,
        simulated_cycles,
        sim_nanos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_list_parses_and_rejects() {
        assert_eq!(
            Figure::parse_list("fig7, table2").unwrap(),
            vec![Figure::Fig7, Figure::Table2]
        );
        assert_eq!(
            Figure::parse_list("crosscheck").unwrap(),
            vec![Figure::Crosscheck]
        );
        assert_eq!(
            Figure::parse_list("fig8, fuzz").unwrap(),
            vec![Figure::Fig8, Figure::Fuzz]
        );
        assert_eq!(Figure::parse_list("").unwrap(), Vec::<Figure>::new());
        assert!(Figure::parse_list("fig9").is_err());
    }

    #[test]
    fn farm_json_is_valid_and_carries_the_accounting() {
        let report = FarmReport {
            fig7_rows: Vec::new(),
            harness_rows: Vec::new(),
            table2_rows: Vec::new(),
            ablation_rows: Vec::new(),
            crosscheck_rows: Vec::new(),
            fig8_bars: Vec::new(),
            fuzz_rows: Vec::new(),
            sweep_summaries: Vec::new(),
            stats: FarmStats {
                jobs: 21,
                workers: 4,
                failures: 0,
                total_job_nanos: 8_000_000_000,
                wall_nanos: 2_000_000_000,
                details: vec![spice_farm::JobMetric {
                    id: 0,
                    label: "sweep/ks/spice4".to_string(),
                    host_nanos: 1_000_000,
                    ok: true,
                    events: 42,
                    squashes: 3,
                }],
            },
            cache: CacheStats {
                hits: 3,
                misses: 21,
                build_nanos: 500_000_000,
            },
            host_cores: 8,
            requested_jobs: 0,
            small: false,
            simulated_cycles: 1_000_000,
            sim_nanos: 50_000_000,
        };
        let doc = farm_json(&report);
        crate::json::validate(&doc).unwrap_or_else(|e| panic!("invalid: {e}\n{doc}"));
        assert_eq!(
            crate::json::extract_number(&doc, "parallel_speedup"),
            Some(4.0)
        );
        assert_eq!(crate::json::extract_number(&doc, "cache_hits"), Some(3.0));
        assert_eq!(
            crate::json::extract_number(&doc, "ns_per_simulated_cycle"),
            Some(50.0)
        );
        assert!(doc.contains("\"job_metrics\": [\n"), "{doc}");
        assert!(
            doc.contains("{\"label\": \"sweep/ks/spice4\", \"host_nanos\": 1000000, \"ok\": true, \"events\": 42, \"squashes\": 3}"),
            "{doc}"
        );
    }

    #[test]
    fn labels_sanitize_to_filesystem_safe_names() {
        assert_eq!(sanitize_label("sweep/ks/spice4"), "sweep_ks_spice4");
        assert_eq!(sanitize_label("table2/bh/probe-g3"), "table2_bh_probe-g3");
    }
}
