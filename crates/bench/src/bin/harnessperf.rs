//! Harness wall-clock benchmark: how much host time one simulated cycle
//! costs, per workload and mode, over the Figure 7 suite. One-time
//! preparation (IR build, analysis, decode, memory image) is timed
//! separately from simulation, so ns-per-cycle measures dispatch only.
//!
//! A thin wrapper over the simulation farm (`--jobs N`, default host
//! parallelism). Writes `BENCH_harness.json` (streamed in job order —
//! byte-identical at any worker count) so harness-speed regressions become
//! visible trajectory data next to the simulated-number artifacts.
//! `--small` selects the reduced-size inputs; `--out PATH` redirects the
//! artifact.
//!
//! `--check` is the CI perf-smoke mode: instead of writing, it re-runs the
//! suite and compares the measured overall host-ns-per-simulated-cycle
//! against the committed `BENCH_harness.json`, failing only past a generous
//! threshold (shared runners are noisy; the gate is for order-of-magnitude
//! regressions, not percent drift). The committed artifact is full-size;
//! `--check --small` still compares against it, since ns-per-cycle is a
//! size-independent rate.

use spice_bench::experiments::{format_harnessperf, harness_ns_per_cycle};
use spice_bench::farm_driver::{run_manifest, Figure, Manifest, OutPaths};

/// A fresh run must stay within this factor of the committed
/// ns-per-simulated-cycle. Generous on purpose: CI machines differ from the
/// machine that committed the baseline.
const CHECK_FACTOR: f64 = 4.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = spice_bench::small_requested();
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_harness.json".to_string());

    let manifest = Manifest {
        figures: vec![Figure::Harness],
        small,
        jobs: spice_bench::jobs_requested(),
        ..Manifest::default()
    };
    let outs = if check {
        OutPaths::default()
    } else {
        OutPaths {
            harness: Some(out_path.clone().into()),
            ..OutPaths::default()
        }
    };
    let report = run_manifest(&manifest, &outs).expect("harnessperf");
    print!("{}", format_harnessperf(&report.harness_rows));

    if check {
        let committed = std::fs::read_to_string(&out_path)
            .unwrap_or_else(|e| panic!("--check needs the committed {out_path}: {e}"));
        let baseline = spice_bench::json::extract_number(&committed, "ns_per_simulated_cycle")
            .expect("committed artifact has ns_per_simulated_cycle");
        let measured = harness_ns_per_cycle(&report.harness_rows);
        println!(
            "perf-smoke: measured {measured:.1} ns/cycle vs committed {baseline:.1} \
             (limit {CHECK_FACTOR}x)"
        );
        if !measured.is_finite() || measured > baseline * CHECK_FACTOR {
            eprintln!(
                "harness-speed regression: {measured:.1} ns/cycle exceeds \
                 {CHECK_FACTOR}x the committed {baseline:.1}"
            );
            std::process::exit(1);
        }
    }
}
