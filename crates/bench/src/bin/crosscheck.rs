//! Sim ↔ native backend cross-check, as a CI gate.
//!
//! Runs every workload (the four paper loops plus the conflict-carrying
//! pair, small configurations) on both execution backends through the one
//! shared call site and compares every invocation's return value. Exits
//! non-zero on the first disagreement — so a predictor-placement or
//! load-balancer regression that makes the on-core (sim) and on-thread
//! (native) implementations of Algorithm 2 drift apart fails the pipeline,
//! not the next bench run.

use spice_bench::experiments::{crosscheck, format_crosscheck};

fn main() {
    let threads = 4;
    let rows = crosscheck(threads).unwrap_or_else(|e| {
        eprintln!("crosscheck failed to run: {e}");
        std::process::exit(2);
    });
    print!("{}", format_crosscheck(&rows));
    let mut ok = true;
    for r in &rows {
        if !r.agree {
            eprintln!(
                "{}: sim returned {:?}, native returned {:?}",
                r.benchmark, r.sim.return_values, r.native.return_values
            );
            ok = false;
        }
        if r.sim.invocations != r.native.invocations {
            eprintln!(
                "{}: invocation counts differ (sim {}, native {})",
                r.benchmark, r.sim.invocations, r.native.invocations
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    println!("all {} workloads agree across backends", rows.len());
}
