//! Reproduces Figure 7: loop speedups with 2 and 4 threads, plus the
//! conflict-carrying workloads' recovery-cost rows.
//!
//! Prints the text table and writes `BENCH_fig7.json` (machine-readable,
//! hand-emitted JSON — no serialization dependency) so the performance
//! trajectory of the reproduction can accumulate across runs. There is one
//! emit path and one artifact: `--small` selects reduced-size inputs and is
//! recorded in the JSON's `small` field, but writes to the same file, so the
//! trajectory always has a single source of truth. Pass `--out PATH` to
//! redirect the JSON elsewhere.

use std::fmt::Write as _;

use spice_bench::experiments::{fig7, fig7_geomean, format_fig7, Fig7Row};

/// Renders the rows as a JSON document (by hand: the build environment has
/// no serde_json, and the format is a dozen fixed fields).
fn to_json(rows: &[Fig7Row], small: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"figure\": \"fig7\",");
    let _ = writeln!(s, "  \"small\": {small},");
    let _ = writeln!(s, "  \"geomean_speedup_2t\": {:.6},", fig7_geomean(rows, 2));
    let _ = writeln!(s, "  \"geomean_speedup_4t\": {:.6},", fig7_geomean(rows, 4));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"benchmark\": \"{}\", \"threads\": {}, \"sequential_cycles\": {}, \
             \"spice_cycles\": {}, \"speedup\": {:.6}, \"misspeculation_rate\": {:.6}, \
             \"load_imbalance\": {:.6}, \"dependence_violations\": {}}}{comma}",
            r.benchmark,
            r.threads,
            r.sequential_cycles,
            r.spice_cycles,
            r.speedup,
            r.misspeculation_rate,
            r.load_imbalance,
            r.dependence_violations
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let small = spice_bench::small_requested();
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_fig7.json".to_string())
    };
    let rows = fig7(small).expect("fig7");
    print!("{}", format_fig7(&rows));
    let json = to_json(&rows, small);
    std::fs::write(&out_path, &json).expect("write BENCH_fig7.json");
    eprintln!("wrote {out_path}");
}
