//! Reproduces Figure 7: loop speedups with 2 and 4 threads.
fn main() {
    let small = spice_bench::small_requested();
    let rows = spice_bench::experiments::fig7(small).expect("fig7");
    print!("{}", spice_bench::experiments::format_fig7(&rows));
}
