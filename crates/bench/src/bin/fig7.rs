//! Reproduces Figure 7: loop speedups with 2 and 4 threads, plus the
//! conflict-carrying workloads' recovery-cost rows.
//!
//! Prints the text table and writes `BENCH_fig7.json` (machine-readable,
//! emitted through `spice_bench::json` — no serialization dependency, but
//! names are escaped and non-finite metrics become `null`) so the
//! performance trajectory of the reproduction can accumulate across runs.
//! There is one emit path and one artifact: `--small` selects reduced-size
//! inputs and is recorded in the JSON's `small` field, but writes to the
//! same file, so the trajectory always has a single source of truth. Pass
//! `--out PATH` to redirect the JSON elsewhere.

use spice_bench::experiments::{fig7, fig7_json, format_fig7};

fn main() {
    let small = spice_bench::small_requested();
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_fig7.json".to_string())
    };
    let rows = fig7(small).expect("fig7");
    print!("{}", format_fig7(&rows));
    let json = fig7_json(&rows, small);
    spice_bench::json::validate(&json).expect("emitted artifact must be well-formed JSON");
    std::fs::write(&out_path, &json).expect("write BENCH_fig7.json");
    eprintln!("wrote {out_path}");
}
