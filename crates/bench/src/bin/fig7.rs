//! Reproduces Figure 7: loop speedups with 2 and 4 threads, plus the
//! conflict-carrying workloads' recovery-cost rows.
//!
//! A thin wrapper over the simulation farm: the sweep runs on a
//! work-stealing pool (`--jobs N`, default host parallelism) and
//! `BENCH_fig7.json` streams out row-by-row in job order, so its bytes are
//! identical at any worker count. `--small` selects reduced-size inputs and
//! is recorded in the JSON's `small` field but writes to the same file, so
//! the trajectory always has a single source of truth. Pass `--out PATH` to
//! redirect the JSON elsewhere.

use spice_bench::experiments::format_fig7;
use spice_bench::farm_driver::{run_manifest, Figure, Manifest, OutPaths};

fn main() {
    let small = spice_bench::small_requested();
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_fig7.json".to_string())
    };
    let manifest = Manifest {
        figures: vec![Figure::Fig7],
        small,
        jobs: spice_bench::jobs_requested(),
        ..Manifest::default()
    };
    let outs = OutPaths {
        fig7: Some(out_path.into()),
        ..OutPaths::default()
    };
    let report = run_manifest(&manifest, &outs).expect("fig7");
    print!("{}", format_fig7(&report.fig7_rows));
}
