//! Reproduces the §2 comparison (Figures 2, 3 and 5): execution schedules and
//! expected speedups of TLS, TLS with value prediction, and Spice.
fn main() {
    let small = spice_bench::small_requested();
    let cmp = spice_bench::experiments::schedules(small).expect("schedules");
    println!("Section 2 timing model for the otter loop (measured on the simulator):");
    println!(
        "  t1 (synchronized traversal) = {:.1} cycles/iteration",
        cmp.model.t1
    );
    println!(
        "  t2 (remaining computation)  = {:.1} cycles/iteration",
        cmp.model.t2
    );
    println!("  t3 (inter-core forwarding)  = {:.1} cycles", cmp.model.t3);
    println!();
    for (kind, rows) in &cmp.schedules {
        let title = match kind {
            spice_core::baseline::ScheduleKind::Tls => "Figure 2 — TLS (no value speculation)",
            spice_core::baseline::ScheduleKind::TlsValuePrediction => {
                "Figure 3 — TLS with value prediction"
            }
            spice_core::baseline::ScheduleKind::Spice => "Figure 5 — Spice (chunked execution)",
        };
        println!("{title}");
        for r in rows {
            println!("  {r}");
        }
        println!();
    }
    println!("Expected / measured speedups (2 threads):");
    println!("  TLS (no value speculation): {:.2}x", cmp.tls_speedup);
    println!(
        "  TLS + stride value prediction (accuracy {:.1}%): {:.2}x",
        cmp.stride_accuracy * 100.0,
        cmp.tls_vp_speedup
    );
    println!(
        "  Spice expected (boundary survival {:.1}%): {:.2}x",
        cmp.spice_survival * 100.0,
        cmp.spice_expected_speedup
    );
    println!(
        "  Spice measured on the simulator: {:.2}x",
        cmp.spice_measured_speedup
    );
}
