//! Reproduces Table 1: the simulated machine configuration.
fn main() {
    println!("Table 1 — machine details (4-core Itanium 2 CMP model)");
    for (k, v) in spice_bench::experiments::table1() {
        println!("{k:<28} {v}");
    }
}
