//! Reproduces Table 2: benchmark details.
fn main() {
    let small = spice_bench::small_requested();
    let rows = spice_bench::experiments::table2(small).expect("table2");
    println!("Table 2 — benchmark details");
    println!(
        "{:<12} {:<38} {:<30} {:>8} {:>9} {:>14} {:>10}",
        "benchmark", "description", "loop", "paper", "measured", "loop insts/inv", "kernel frac"
    );
    for r in rows {
        println!(
            "{:<12} {:<38} {:<30} {:>7.0}% {:>8.1}% {:>14} {:>9.1}%",
            r.benchmark,
            r.description,
            r.loop_name,
            r.paper_hotness * 100.0,
            r.measured_hotness * 100.0,
            r.measured_loop_instructions,
            r.measured_kernel_fraction * 100.0
        );
    }
    println!("\n(paper column: whole-application fraction reported by the paper, for comparison;");
    println!(" measured column: profiler cycle attribution over the whole program — for the");
    println!(" kernel drivers that program is just the kernel, for mcf_app it is a miniature");
    println!(" network-simplex application. See DESIGN.md §3.5.)");
}
