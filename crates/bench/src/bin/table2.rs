//! Reproduces Table 2: benchmark details, including the conflict-precision
//! probe columns (word- vs line-granular dependence squashes).
//!
//! A thin wrapper over the simulation farm: hotness measurements and
//! conflict probes run as parallel jobs (`--jobs N`, default host
//! parallelism) and `BENCH_table2.json` streams out in job order —
//! byte-identical at any worker count. `--out PATH` redirects the artifact.

use spice_bench::experiments::format_table2;
use spice_bench::farm_driver::{run_manifest, Figure, Manifest, OutPaths};

fn main() {
    let small = spice_bench::small_requested();
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_table2.json".to_string())
    };
    let manifest = Manifest {
        figures: vec![Figure::Table2],
        small,
        jobs: spice_bench::jobs_requested(),
        ..Manifest::default()
    };
    let outs = OutPaths {
        table2: Some(out_path.into()),
        ..OutPaths::default()
    };
    let report = run_manifest(&manifest, &outs).expect("table2");
    print!("{}", format_table2(&report.table2_rows));
}
