//! Reproduces Table 2: benchmark details.
fn main() {
    let small = spice_bench::small_requested();
    let rows = spice_bench::experiments::table2(small).expect("table2");
    println!("Table 2 — benchmark details");
    println!(
        "{:<12} {:<38} {:<30} {:>8} {:>14} {:>10}",
        "benchmark", "description", "loop", "hotness", "loop insts/inv", "kernel frac"
    );
    for r in rows {
        println!(
            "{:<12} {:<38} {:<30} {:>7.0}% {:>14} {:>9.1}%",
            r.benchmark,
            r.description,
            r.loop_name,
            r.paper_hotness * 100.0,
            r.measured_loop_instructions,
            r.measured_kernel_fraction * 100.0
        );
    }
    println!(
        "\n(hotness column: whole-application fraction reported by the paper; the surrounding"
    );
    println!(" applications are not reproduced — see DESIGN.md substitutions.)");
}
