//! Ablation of the value-predictor design choices (re-memoization, dynamic
//! load balancing) on the otter loop with 4 threads.
fn main() {
    let small = spice_bench::small_requested();
    let rows = spice_bench::experiments::ablation(small).expect("ablation");
    println!("Predictor ablation — otter, 4 threads");
    println!(
        "{:<36} {:>14} {:>9} {:>10}",
        "variant", "cycles", "misspec", "imbalance"
    );
    for r in rows {
        println!(
            "{:<36} {:>14} {:>8.1}% {:>10.3}",
            r.variant,
            r.cycles,
            r.misspeculation_rate * 100.0,
            r.load_imbalance
        );
    }
}
