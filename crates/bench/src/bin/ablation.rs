//! Ablation of the value-predictor design choices (re-memoization, dynamic
//! load balancing) on the otter loop with 4 threads.
//!
//! A thin wrapper over the simulation farm: the three variants run as
//! parallel jobs (`--jobs N`, default host parallelism).

use spice_bench::experiments::format_ablation;
use spice_bench::farm_driver::{run_manifest, Figure, Manifest, OutPaths};

fn main() {
    let small = spice_bench::small_requested();
    let manifest = Manifest {
        figures: vec![Figure::Ablation],
        small,
        jobs: spice_bench::jobs_requested(),
        ..Manifest::default()
    };
    let report = run_manifest(&manifest, &OutPaths::default()).expect("ablation");
    print!("{}", format_ablation(&report.ablation_rows));
}
