//! Reproduces Figure 8: loop live-in predictability bins over the corpus.
fn main() {
    let small = spice_bench::small_requested();
    let bars = spice_bench::experiments::fig8(small).expect("fig8");
    print!("{}", spice_bench::experiments::format_fig8(&bars));
}
