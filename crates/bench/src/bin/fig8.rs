//! Reproduces Figure 8: loop live-in predictability bins over the corpus,
//! measured by recording each loop's live-in trace and re-analyzing it
//! offline — the bins are derived from recorded values, not dialed-in
//! targets (the targets are reported alongside for comparison).
//!
//! A thin wrapper over the simulation farm: one job per corpus benchmark
//! (`--jobs N`, default host parallelism) and `BENCH_fig8.json` streams out
//! row-by-row in job order — byte-identical at any worker count. `--small`
//! selects the reduced-size workload shape; `--out PATH` redirects the
//! artifact.

use spice_bench::experiments::format_fig8;
use spice_bench::farm_driver::{run_manifest, Figure, Manifest, OutPaths};

fn main() {
    let small = spice_bench::small_requested();
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_fig8.json".to_string())
    };
    let manifest = Manifest {
        figures: vec![Figure::Fig8],
        small,
        jobs: spice_bench::jobs_requested(),
        ..Manifest::default()
    };
    let outs = OutPaths {
        fig8: Some(out_path.into()),
        ..OutPaths::default()
    };
    let report = run_manifest(&manifest, &outs).expect("fig8");
    print!("{}", format_fig8(&report.fig8_bars));
}
