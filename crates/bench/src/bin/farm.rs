//! The simulation farm: runs the whole evaluation (or a chosen subset of
//! figures) as one parallel sweep on a work-stealing pool, with every
//! program decoded once and shared, and artifacts streamed row-by-row in
//! deterministic job order — byte-identical at any `--jobs`.
//!
//! ```text
//! cargo run --release -p spice-bench --bin farm -- [flags]
//!   --small           reduced-size inputs
//!   --jobs N          worker threads (default 0 = host parallelism)
//!   --figures LIST    comma-separated subset of
//!                     fig7,table2,ablation,harness,crosscheck,fig8,fuzz
//!   --out-dir DIR     where artifacts land (default ".")
//!   --trace-out PATH  also record simulator traces for every sweep job and
//!                     stream them to PATH (byte-identical at any --jobs)
//!   --fuzz-seeds N    width of the fuzz figure's mutation-seed sweep
//!                     (default 8; one differential-replay job per seed)
//!   --check           CI perf smoke: run the harness figure only, write
//!                     nothing, compare ns/simulated-cycle against the
//!                     committed BENCH_farm.json
//! ```
//!
//! Failed or diverged jobs persist forensics (trace ring-buffer, snapshot
//! cycles, final machine state) under `<out-dir>/failures/FAILED_<label>.json`.
//!
//! Besides the per-figure artifacts, a normal run writes `BENCH_farm.json`:
//! serial-equivalent vs wall seconds, worker/job counts, host cores, and
//! preparation-cache accounting — the farm's own performance record.

use std::path::PathBuf;

use spice_bench::experiments::{
    format_ablation, format_crosscheck, format_fig7, format_fig8, format_harnessperf, format_table2,
};
use spice_bench::farm_driver::{
    farm_json, run_manifest, Figure, Manifest, OutPaths, DEFAULT_FUZZ_SEEDS,
};

/// A fresh run must stay within this factor of the committed
/// ns-per-simulated-cycle. Generous on purpose: CI machines differ from the
/// machine that committed the baseline.
const CHECK_FACTOR: f64 = 4.0;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = spice_bench::small_requested();
    let jobs = spice_bench::jobs_requested();
    let check = args.iter().any(|a| a == "--check");
    let out_dir = PathBuf::from(arg_value(&args, "--out-dir").unwrap_or_else(|| ".".to_string()));

    let figures = if check {
        vec![Figure::Harness]
    } else {
        match arg_value(&args, "--figures") {
            Some(list) => Figure::parse_list(&list).unwrap_or_else(|e| panic!("{e}")),
            None => Figure::ALL.to_vec(),
        }
    };

    let fuzz_seeds = arg_value(&args, "--fuzz-seeds")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|e| panic!("--fuzz-seeds {v}: {e}"))
        })
        .unwrap_or(DEFAULT_FUZZ_SEEDS);
    let manifest = Manifest {
        figures: figures.clone(),
        small,
        jobs,
        fuzz_seeds: 0..fuzz_seeds,
    };
    let outs = if check {
        OutPaths::default()
    } else {
        std::fs::create_dir_all(&out_dir)
            .unwrap_or_else(|e| panic!("create {}: {e}", out_dir.display()));
        OutPaths {
            fig7: figures
                .contains(&Figure::Fig7)
                .then(|| out_dir.join("BENCH_fig7.json")),
            table2: figures
                .contains(&Figure::Table2)
                .then(|| out_dir.join("BENCH_table2.json")),
            harness: figures
                .contains(&Figure::Harness)
                .then(|| out_dir.join("BENCH_harness.json")),
            crosscheck: figures
                .contains(&Figure::Crosscheck)
                .then(|| out_dir.join("BENCH_crosscheck.json")),
            fig8: figures
                .contains(&Figure::Fig8)
                .then(|| out_dir.join("BENCH_fig8.json")),
            trace: arg_value(&args, "--trace-out").map(PathBuf::from),
            failures_dir: Some(out_dir.join("failures")),
        }
    };

    let report = run_manifest(&manifest, &outs).expect("farm run");

    if figures.contains(&Figure::Fig7) {
        print!("{}", format_fig7(&report.fig7_rows));
        println!();
    }
    if figures.contains(&Figure::Table2) {
        print!("{}", format_table2(&report.table2_rows));
        println!();
    }
    if figures.contains(&Figure::Ablation) {
        print!("{}", format_ablation(&report.ablation_rows));
        println!();
    }
    if figures.contains(&Figure::Harness) {
        print!("{}", format_harnessperf(&report.harness_rows));
        println!();
    }
    if figures.contains(&Figure::Crosscheck) {
        print!("{}", format_crosscheck(&report.crosscheck_rows));
    }
    if figures.contains(&Figure::Fig8) {
        print!("{}", format_fig8(&report.fig8_bars));
        println!();
    }
    if figures.contains(&Figure::Fuzz) {
        let with_writes = report.fuzz_rows.iter().filter(|r| r.has_writes).count();
        println!(
            "fuzz: {} mutants replayed bit-identically on sim, native and sequential \
             execution ({} carrying dependence-inducing writes)",
            report.fuzz_rows.len(),
            with_writes
        );
    }
    println!(
        "farm: {} jobs on {} workers ({} cores): {:.3} s serial-equivalent in {:.3} s wall \
         ({:.2}x), prepare {:.3} s ({} builds, {} shared)",
        report.stats.jobs,
        report.stats.workers,
        report.host_cores,
        report.serial_equivalent_seconds(),
        report.farm_wall_seconds(),
        report.parallel_speedup(),
        report.cache.build_nanos as f64 / 1e9,
        report.cache.misses,
        report.cache.hits,
    );

    if check {
        let committed_path = out_dir.join("BENCH_farm.json");
        let committed = std::fs::read_to_string(&committed_path).unwrap_or_else(|e| {
            panic!(
                "--check needs the committed {}: {e}",
                committed_path.display()
            )
        });
        let baseline = spice_bench::json::extract_number(&committed, "ns_per_simulated_cycle")
            .expect("committed artifact has ns_per_simulated_cycle");
        let measured = report.ns_per_simulated_cycle();
        println!(
            "perf-smoke: measured {measured:.1} ns/cycle vs committed {baseline:.1} \
             (limit {CHECK_FACTOR}x)"
        );
        if !measured.is_finite() || measured > baseline * CHECK_FACTOR {
            eprintln!(
                "farm-speed regression: {measured:.1} ns/cycle exceeds \
                 {CHECK_FACTOR}x the committed {baseline:.1}"
            );
            std::process::exit(1);
        }
        return;
    }

    let doc = farm_json(&report);
    spice_bench::json::validate(&doc).expect("emitted artifact must be well-formed JSON");
    let farm_path = out_dir.join("BENCH_farm.json");
    std::fs::write(&farm_path, &doc).expect("write BENCH_farm.json");
    eprintln!("wrote {}", farm_path.display());
}
