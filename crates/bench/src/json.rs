//! Minimal JSON emission and validation for the bench artifacts.
//!
//! The build environment has no `serde_json` (the vendored `serde` is a
//! no-op stand-in — see `DESIGN.md` §3, offline dependencies), so the bench
//! artifacts are emitted by hand. This module centralizes the two places
//! hand-written JSON goes wrong:
//!
//! * **strings** — workload names travel through [`string`], which escapes
//!   quotes, backslashes and control characters instead of splicing raw
//!   text between quote characters;
//! * **floats** — metrics travel through [`float`], which maps the
//!   non-finite values JSON cannot represent (`NaN`, `±inf` — e.g. a
//!   speedup computed from an empty run) to `null` instead of emitting an
//!   unparseable token.
//!
//! [`validate`] is a strict recursive-descent checker for the full JSON
//! grammar; every emitted artifact is validated in tests (and cheaply at
//! emit time by the binaries) so a malformed `BENCH_*.json` fails the build
//! that produced it, not the consumer that reads it.

/// Renders `s` as a JSON string literal, quotes included.
#[must_use]
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders `v` as a JSON number with six decimal places, or `null` when it
/// is not finite (JSON has no NaN/Infinity).
#[must_use]
pub fn float(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Extracts the numeric value of the first top-level-ish occurrence of
/// `"key": <number>` in a JSON document emitted by this module. This is the
/// minimal reader the perf-smoke check needs to compare a fresh measurement
/// against a committed artifact without a serialization dependency; it is
/// not a general JSON parser (use [`validate`] for well-formedness).
#[must_use]
pub fn extract_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Validates that `s` is exactly one well-formed JSON value (full grammar:
/// objects, arrays, strings with escapes, numbers, `true`/`false`/`null`).
///
/// # Errors
///
/// Returns a description of the first syntax error, with its byte offset.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => jstring(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected `{}` at byte {}", *c as char, *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'{')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        jstring(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'[')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn jstring(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {}", *pos)),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!("unescaped control character at byte {}", *pos));
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| -> usize {
        let from = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        *pos - from
    };
    if digits(b, pos) == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if digits(b, pos) == 0 {
            return Err(format!("bad fraction at byte {}", *pos));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if digits(b, pos) == 0 {
            return Err(format!("bad exponent at byte {}", *pos));
        }
    }
    Ok(())
}

/// A parsed JSON value — the reading half of this module, added for the
/// trace-file format. Object member order is preserved (emitted artifacts
/// are deterministic, so parse → re-emit stays deterministic too).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fraction or exponent, in `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string, escapes decoded.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, members in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an [`Value::Int`].
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses exactly one well-formed JSON value. Same grammar as [`validate`],
/// but produces the value instead of merely checking it.
///
/// # Errors
///
/// Returns a description of the first syntax error, with its byte offset —
/// never panics, whatever the input.
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => literal(b, pos, b"true").map(|()| Value::Bool(true)),
        Some(b'f') => literal(b, pos, b"false").map(|()| Value::Bool(false)),
        Some(b'n') => literal(b, pos, b"null").map(|()| Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected `{}` at byte {}", *c as char, *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    skip_ws(b, pos);
    let mut members = Vec::new();
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let v = parse_value(b, pos)?;
        members.push((key, v));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    skip_ws(b, pos);
    let mut items = Vec::new();
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    let start = *pos;
    jstring(b, pos)?;
    // The span validated; decode escapes in a second pass.
    let raw = &b[start + 1..*pos - 1];
    let mut out = String::with_capacity(raw.len());
    let mut i = 0usize;
    while i < raw.len() {
        if raw[i] != b'\\' {
            // Multi-byte UTF-8 sequences pass through untouched; the input
            // is a &str so the bytes are valid UTF-8.
            let s = std::str::from_utf8(&raw[i..])
                .map_err(|_| format!("invalid utf-8 at byte {}", start + 1 + i))?;
            let c = s.chars().next().expect("non-empty");
            out.push(c);
            i += c.len_utf8();
            continue;
        }
        i += 1;
        match raw[i] {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hex = std::str::from_utf8(&raw[i + 1..i + 5]).expect("validated hex");
                let code = u32::from_str_radix(hex, 16).expect("validated hex");
                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                i += 4;
            }
            _ => unreachable!("escape validated by jstring"),
        }
        i += 1;
    }
    Ok(out)
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    number(b, pos)?;
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii");
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| format!("unrepresentable number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_quotes_backslashes_and_controls() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
        assert_eq!(string("a\\b"), "\"a\\\\b\"");
        assert_eq!(string("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        // Every escaped form must itself validate.
        for s in ["plain", "a\"b", "back\\slash", "new\nline", "\u{7}"] {
            validate(&string(s)).unwrap();
        }
    }

    #[test]
    fn floats_map_non_finite_to_null() {
        assert_eq!(float(1.5), "1.500000");
        assert_eq!(float(-0.25), "-0.250000");
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
        assert_eq!(float(f64::NEG_INFINITY), "null");
        validate(&float(f64::NAN)).unwrap();
        validate(&float(2.0 / 3.0)).unwrap();
    }

    #[test]
    fn extract_number_reads_committed_metrics() {
        let doc = "{\n  \"small\": false,\n  \"ns_per_simulated_cycle\": 42.125,\n  \
                   \"total\": 7\n}";
        assert_eq!(extract_number(doc, "ns_per_simulated_cycle"), Some(42.125));
        assert_eq!(extract_number(doc, "total"), Some(7.0));
        assert_eq!(extract_number(doc, "missing"), None);
        assert_eq!(extract_number("{\"k\": null}", "k"), None);
    }

    #[test]
    fn validator_accepts_well_formed_documents() {
        for ok in [
            "null",
            "true",
            "-12.5e+3",
            "\"hi \\u0041\"",
            "[]",
            "{}",
            "[1, 2, [3, {\"k\": null}]]",
            "{\"a\": 1, \"b\": [true, \"x\"]}",
            "  {\n\"a\"\t: 0.5}  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "nul",
            "NaN",
            "inf",
            "01x",
            "1.",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": }",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"raw \n newline\"",
            "{} trailing",
        ] {
            assert!(validate(bad).is_err(), "accepted malformed input: {bad}");
        }
    }

    #[test]
    fn parser_produces_values_the_validator_accepts() {
        let v = parse("{\"a\": 1, \"b\": [true, \"x\\n\", null], \"c\": -2.5}").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        let b = v.get("b").and_then(Value::as_array).unwrap();
        assert_eq!(b[0], Value::Bool(true));
        assert_eq!(b[1].as_str(), Some("x\n"));
        assert_eq!(b[2], Value::Null);
        assert_eq!(v.get("c"), Some(&Value::Float(-2.5)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_round_trips_emitted_strings() {
        for s in [
            "plain",
            "a\"b",
            "back\\slash",
            "new\nline",
            "\u{7}",
            "ünïcode",
        ] {
            let parsed = parse(&string(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s));
        }
    }

    #[test]
    fn parser_rejects_malformed_input_without_panicking() {
        for bad in [
            "",
            "{\"a\": }",
            "[1,]",
            "\"unterminated",
            "\"bad \\q\"",
            "{} trailing",
            "1e",
            "--1",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
        // Unpaired surrogate escapes decode to the replacement character
        // instead of panicking.
        assert_eq!(parse("\"\\ud800\"").unwrap().as_str(), Some("\u{fffd}"));
    }

    #[test]
    fn parser_distinguishes_ints_from_floats() {
        assert_eq!(parse("7"), Ok(Value::Int(7)));
        assert_eq!(parse("-9223372036854775808"), Ok(Value::Int(i64::MIN)));
        assert_eq!(parse("7.0"), Ok(Value::Float(7.0)));
        assert_eq!(parse("1e3"), Ok(Value::Float(1000.0)));
        // Out-of-range integers degrade to floats rather than erroring.
        assert!(matches!(parse("92233720368547758080"), Ok(Value::Float(_))));
    }
}
