//! Implementations of every table and figure of the paper's evaluation.
//!
//! Each function returns plain data structures; the binaries in `src/bin/`
//! print them. Reduced-size variants (`small = true`) run the same code on
//! smaller inputs so the whole suite stays test-friendly.

use spice_core::backend::{make_backend_with, BackendChoice, SimBackend};
use spice_core::baseline::{render_schedule, LoopTimingModel, ScheduleKind};
use spice_core::pipeline::{predictor_options_with_estimate, run_sequential};
use spice_core::predictor::PredictorOptions;
use spice_core::prepared::PreparedProgram;
use spice_core::valuepred::{
    evaluate_predictor, LastValuePredictor, SpiceMemoPredictor, StridePredictor,
};
use spice_ir::exec::ExecutionBackend;
use spice_ir::interp::LocalSys;
use spice_ir::trace::DEFAULT_TRACE_CAPACITY;
use spice_ir::{FuncId, TraceEvent};
use spice_profiler::{
    analyze_trace, measure_cycle_hotness, measure_hotness, record_workload_trace, AnalyzerConfig,
    PredictabilityBin,
};
use spice_sim::{Machine, MachineConfig};
use spice_workloads::trace::{FuzzConfig, TraceReplayWorkload, WorkloadTrace};
use spice_workloads::{
    drive_loaded_workload, fig8_corpus, run_workload_on, workload_load_options, BackendRunSummary,
    KsConfig, KsWorkload, McfConfig, McfWorkload, OtterConfig, OtterWorkload, SjengConfig,
    SjengWorkload, SpiceWorkload, Suite, SuiteBenchmark,
};

/// Factory for a fresh instance of one of the paper's four benchmark loops.
/// `Send + Sync` so a sweep engine can construct workloads from any host
/// thread.
pub type WorkloadFactory = Box<dyn Fn() -> Box<dyn SpiceWorkload> + Send + Sync>;

/// Returns `(name, factory)` pairs for the Table 2 / Figure 7 benchmarks.
///
/// The full-size configurations are chosen so the traversed data structures
/// do not fit in the private caches of the Table 1 machine — the regime the
/// paper's loops run in, where the pointer-chasing load dominates each
/// iteration — while the `small` configurations keep unit tests fast.
#[must_use]
pub fn paper_workload_factories(small: bool) -> Vec<(&'static str, WorkloadFactory)> {
    // Working-set sizes (full): ks 6000×3 words ≈ 144 KB, otter 8000×2 ≈
    // 128 KB, mcf 6000×6 ≈ 288 KB — all at or past the 256 KB L2.
    let (ks_modules, otter_len, mcf_nodes, sjeng_pieces) = if small {
        (150usize, 130usize, 160usize, 24usize)
    } else {
        (6_000, 8_000, 6_000, 64)
    };
    let invocations = if small { 10 } else { 14 };
    let sjeng_invocations = if small { 20 } else { 60 };
    vec![
        (
            "ks",
            Box::new(move || {
                Box::new(KsWorkload::new(KsConfig {
                    modules: ks_modules,
                    invocations,
                    d_updates_per_invocation: 8,
                    seed: 0x6b73,
                })) as Box<dyn SpiceWorkload>
            }) as WorkloadFactory,
        ),
        (
            "otter",
            Box::new(move || {
                Box::new(OtterWorkload::new(OtterConfig {
                    initial_len: otter_len,
                    inserts_per_invocation: 3,
                    invocations,
                    seed: 0x07734,
                })) as Box<dyn SpiceWorkload>
            }) as WorkloadFactory,
        ),
        (
            "181.mcf",
            Box::new(move || {
                Box::new(McfWorkload::new(McfConfig {
                    nodes: mcf_nodes,
                    invocations,
                    cost_updates_per_invocation: 12,
                    reparents_per_invocation: 2,
                    seed: 0x6d6366,
                })) as Box<dyn SpiceWorkload>
            }) as WorkloadFactory,
        ),
        (
            "458.sjeng",
            Box::new(move || {
                Box::new(SjengWorkload::new(SjengConfig {
                    pieces: sjeng_pieces,
                    invocations: sjeng_invocations,
                    mutate_probability: if small { 0.30 } else { 0.12 },
                    seed: 0x736a,
                })) as Box<dyn SpiceWorkload>
            }) as WorkloadFactory,
        ),
    ]
}

/// Returns `(name, factory)` pairs for the conflict-carrying workloads the
/// memory-dependence speculation subsystem unlocks: the faithful
/// `mcf_refresh_potential_true` kernel and the adversarial `list_splice`
/// loop. The instances come straight from the suite registry
/// (`spice_workloads::conflict_benchmarks{,_small}`) so the bench harness and
/// every other consumer measure one canonical configuration. They run
/// through the same tables and cross-checks as the paper loops; their value
/// is correctness under squash-and-recover, not speedup (the faithful mcf
/// chain violates nearly every chunk boundary).
#[must_use]
pub fn conflict_workload_factories(small: bool) -> Vec<(&'static str, WorkloadFactory)> {
    let registry = move || {
        if small {
            spice_workloads::conflict_benchmarks_small()
        } else {
            spice_workloads::conflict_benchmarks()
        }
    };
    registry()
        .into_iter()
        .enumerate()
        .map(|(i, wl)| {
            let factory: WorkloadFactory = Box::new(move || registry().swap_remove(i));
            (wl.name(), factory)
        })
        .collect()
}

/// Returns `(name, factory)` pairs for the miniature-application workloads
/// (`spice_workloads::app_benchmarks{,_small}`): whole programs whose serial
/// pivot phases execute as measured IR around the Spice target loop, so
/// Table 2's hotness for them is profiler-measured. Like the conflict pair,
/// their fig7 rows document recovery cost (the faithful refresh chain plus
/// the serial phases' write traffic squash most chunks), not speedup.
#[must_use]
pub fn app_workload_factories(small: bool) -> Vec<(&'static str, WorkloadFactory)> {
    let registry = move || {
        if small {
            spice_workloads::app_benchmarks_small()
        } else {
            spice_workloads::app_benchmarks()
        }
    };
    registry()
        .into_iter()
        .enumerate()
        .map(|(i, wl)| {
            let factory: WorkloadFactory = Box::new(move || registry().swap_remove(i));
            (wl.name(), factory)
        })
        .collect()
}

/// The paper's four loops, the conflict-carrying pair and the miniature
/// applications — the set every table, figure and cross-check now covers.
#[must_use]
pub fn all_workload_factories(small: bool) -> Vec<(&'static str, WorkloadFactory)> {
    let mut v = paper_workload_factories(small);
    v.extend(conflict_workload_factories(small));
    v.extend(app_workload_factories(small));
    v
}

/// Total sequential cycles over all invocations of a workload.
///
/// # Errors
///
/// Returns a description of any simulation failure.
pub fn run_workload_sequential(workload: &mut dyn SpiceWorkload) -> Result<u64, String> {
    let built = workload.build();
    let config = MachineConfig::itanium2_cmp().with_cores(1);
    let mut machine = Machine::new(config, built.program);
    drive_sequential_workload(workload, &mut machine, built.kernel)
}

/// Drives every invocation of `workload` on an already-built one-core
/// machine, checking each return value against the host-computed
/// expectation. Shared between the direct sequential path and the farm's
/// prepared-program jobs so both produce the same cycle totals.
fn drive_sequential_workload(
    workload: &mut dyn SpiceWorkload,
    machine: &mut Machine,
    kernel: FuncId,
) -> Result<u64, String> {
    let mut args = workload.init(machine.mem_mut());
    let mut total = 0u64;
    let mut inv = 0usize;
    loop {
        let expected = workload.expected_result(machine.mem());
        let (cycles, ret) = run_sequential(machine, kernel, &args).map_err(|e| e.to_string())?;
        if let Some(e) = expected {
            if ret != Some(e) {
                return Err(format!(
                    "{}: sequential run returned {ret:?}, expected {e}",
                    workload.name()
                ));
            }
        }
        total += cycles;
        match workload.next_invocation(machine.mem_mut(), inv) {
            Some(a) => {
                args = a;
                inv += 1;
            }
            None => break,
        }
    }
    Ok(total)
}

/// Result of running a workload under Spice.
#[derive(Debug, Clone)]
pub struct SpiceRunResult {
    /// Total simulated cycles over all invocations.
    pub cycles: u64,
    /// Fraction of invocations with at least one squashed worker.
    pub misspeculation_rate: f64,
    /// Mean coefficient of variation of per-core work.
    pub load_imbalance: f64,
    /// Number of invocations executed.
    pub invocations: usize,
    /// Chunks squashed by the conflict-detection subsystem (cross-chunk RAW
    /// violations), summed over invocations.
    pub dependence_violations: usize,
}

/// Runs a workload under the Spice transformation with `threads` threads on
/// the cycle-accurate simulator — the Table 1 instantiation of
/// [`run_workload_backend`].
///
/// # Errors
///
/// Returns a description of any analysis, transformation or simulation
/// failure, including result mismatches against the host-computed expectation.
pub fn run_workload_spice(
    workload: &mut dyn SpiceWorkload,
    threads: usize,
    predictor: PredictorOptions,
) -> Result<SpiceRunResult, String> {
    let mut backend = SimBackend::new(threads).with_predictor(predictor);
    let summary = run_workload_on(workload, &mut backend)?;
    Ok(SpiceRunResult {
        cycles: u64::try_from(summary.total_cost).unwrap_or(u64::MAX),
        misspeculation_rate: summary.misspeculation_rate(),
        load_imbalance: summary.load_imbalance(),
        invocations: summary.invocations,
        dependence_violations: summary.dependence_violations,
    })
}

/// Runs a workload on any execution backend, selected by value — the
/// harness-side entry into the shared execution layer.
///
/// # Errors
///
/// Returns a description of the first failure or result mismatch.
pub fn run_workload_backend(
    workload: &mut dyn SpiceWorkload,
    choice: BackendChoice,
    threads: usize,
    predictor: PredictorOptions,
) -> Result<BackendRunSummary, String> {
    let mut backend = make_backend_with(choice, threads, predictor);
    run_workload_on(workload, backend.as_mut())
}

/// One execution mode of the Figure 7 / harness-perf matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Untransformed program on one core.
    Sequential,
    /// Spice-transformed program with this many worker threads.
    Spice {
        /// Thread count the transform is generated for.
        threads: usize,
    },
}

impl SweepMode {
    /// The three modes every benchmark runs in, in artifact row order.
    pub const ALL: [SweepMode; 3] = [
        SweepMode::Sequential,
        SweepMode::Spice { threads: 2 },
        SweepMode::Spice { threads: 4 },
    ];

    /// The mode label used in artifacts: `"sequential"`, `"spice2"`, ….
    #[must_use]
    pub fn label(self) -> String {
        match self {
            SweepMode::Sequential => "sequential".to_string(),
            SweepMode::Spice { threads } => format!("spice{threads}"),
        }
    }
}

/// A shareable preparation of one benchmark in one sweep mode: the
/// [`PreparedProgram`] (decoded IR, initial image, transform), the kernel
/// id, and the wall time the whole preparation took — workload
/// construction, IR build, loop analysis, Spice transform, decode and
/// image. The farm shares one `SweepPrep` across jobs through
/// `spice_farm::PreparedCache`; a serial run builds it inline and uses it
/// once. Either way [`run_prepared_sweep`] produces the same simulated
/// numbers, which is what keeps farm artifacts byte-identical to serial
/// ones.
#[derive(Debug, Clone)]
pub struct SweepPrep {
    /// The shared immutable program state.
    pub prepared: PreparedProgram,
    /// Kernel function of the workload's built program.
    pub kernel: FuncId,
    /// Wall nanoseconds the preparation took, end to end.
    pub build_nanos: u128,
}

/// Builds the preparation for one `(benchmark, mode)` cell. `tiny` selects
/// the reduced test machine (used by the Table 2 conflict probes when
/// `--small`); the Figure 7 / harness sweep always simulates the Table 1
/// machine. `granularity_log2` coarsens the conflict sets (0 = exact
/// words) and is only meaningful for Spice modes.
///
/// # Errors
///
/// Returns a description of any analysis or transformation failure.
pub fn prepare_sweep(
    factory: &WorkloadFactory,
    mode: SweepMode,
    tiny: bool,
    granularity_log2: u8,
) -> Result<SweepPrep, String> {
    let started = std::time::Instant::now();
    let mut wl = factory();
    let built = wl.build();
    let prepared = match mode {
        SweepMode::Sequential => {
            let config = if tiny {
                MachineConfig::test_tiny(1)
            } else {
                MachineConfig::itanium2_cmp().with_cores(1)
            };
            PreparedProgram::sequential(config, built.program)
        }
        SweepMode::Spice { threads } => {
            let config = if tiny {
                MachineConfig::test_tiny(threads)
            } else {
                MachineConfig::itanium2_cmp()
            };
            let estimate = wl.expected_iterations();
            let options = workload_load_options(wl.as_ref(), &built)
                .with_conflict_granularity_log2(granularity_log2);
            PreparedProgram::spice(
                config,
                threads,
                predictor_options_with_estimate(estimate),
                built.program,
                built.kernel,
                options,
            )
            .map_err(|e| e.to_string())?
        }
    };
    Ok(SweepPrep {
        prepared,
        kernel: built.kernel,
        build_nanos: started.elapsed().as_nanos(),
    })
}

/// The cache key under which a preparation is shared: two jobs whose keys
/// are equal build identical [`SweepPrep`]s, so the first builds and the
/// rest reuse. Notably the Table 2 word-granularity conflict probe of a
/// full-size run keys the same as the Figure 7 four-thread run — same
/// machine, same transform — so the probe rides on the sweep's decode.
#[must_use]
pub fn sweep_prep_key(
    benchmark: &str,
    mode: SweepMode,
    tiny: bool,
    granularity_log2: u8,
) -> String {
    format!(
        "{benchmark}|{}|{}|g{granularity_log2}",
        mode.label(),
        if tiny { "tiny" } else { "it2" }
    )
}

/// Result of one sweep job: the simulated outcome plus the simulate-only
/// host time. Preparation time lives in [`SweepPrep::build_nanos`] — the
/// split the harness-perf report uses so ns-per-simulated-cycle measures
/// dispatch, not one-time decode/transform work.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Total simulated cycles over all invocations.
    pub cycles: u64,
    /// Host wall nanoseconds spent simulating (init + invocations).
    pub sim_nanos: u128,
    /// Fraction of invocations with at least one squashed worker (0 for
    /// sequential runs).
    pub misspeculation_rate: f64,
    /// Mean coefficient of variation of per-core work (0 for sequential).
    pub load_imbalance: f64,
    /// Invocations executed (0 reported for sequential runs).
    pub invocations: usize,
    /// Dependence-violation squashes taken and recovered.
    pub dependence_violations: usize,
    /// The full backend summary for Spice modes (per-invocation return
    /// values included), `None` for sequential runs.
    pub summary: Option<BackendRunSummary>,
}

/// Runs one sweep job over a shared preparation: a fresh workload instance
/// from `factory`, a fresh machine over `prep`'s decoded program, every
/// invocation driven with result checks.
///
/// # Errors
///
/// Returns the first simulation failure or result mismatch.
pub fn run_prepared_sweep(factory: &WorkloadFactory, prep: &SweepPrep) -> Result<SweepRun, String> {
    let mut wl = factory();
    // Workloads stash driver-side state (arenas, layouts) during `build`;
    // the program it returns is discarded — `prep` already holds the shared
    // decoded copy, which an identical factory built deterministically.
    let _ = wl.build();
    let started = std::time::Instant::now();
    if prep.prepared.is_spice() {
        let mut backend = SimBackend::from_prepared(&prep.prepared);
        let summary = drive_loaded_workload(wl.as_mut(), &mut backend)?;
        Ok(SweepRun {
            cycles: u64::try_from(summary.total_cost).unwrap_or(u64::MAX),
            sim_nanos: started.elapsed().as_nanos(),
            misspeculation_rate: summary.misspeculation_rate(),
            load_imbalance: summary.load_imbalance(),
            invocations: summary.invocations,
            dependence_violations: summary.dependence_violations,
            summary: Some(summary),
        })
    } else {
        let mut machine = prep.prepared.machine();
        let cycles = drive_sequential_workload(wl.as_mut(), &mut machine, prep.kernel)?;
        Ok(SweepRun {
            cycles,
            sim_nanos: started.elapsed().as_nanos(),
            misspeculation_rate: 0.0,
            load_imbalance: 0.0,
            invocations: 0,
            dependence_violations: 0,
            summary: None,
        })
    }
}

/// Like [`run_prepared_sweep`], but with the backend's event trace enabled;
/// returns the run plus the recorder's ring-buffer contents. Tracing is
/// observational — the `SweepRun` numbers are identical to an untraced run
/// of the same preparation — and the simulator is single-threaded, so the
/// returned events are deterministic: the farm's `--trace-out` artifact is
/// byte-identical at any worker count.
///
/// # Errors
///
/// Returns the first simulation failure or result mismatch.
pub fn run_prepared_sweep_traced(
    factory: &WorkloadFactory,
    prep: &SweepPrep,
) -> Result<(SweepRun, Vec<TraceEvent>), String> {
    let mut wl = factory();
    let _ = wl.build();
    let started = std::time::Instant::now();
    if prep.prepared.is_spice() {
        let mut backend = SimBackend::from_prepared(&prep.prepared);
        backend.enable_trace(DEFAULT_TRACE_CAPACITY);
        let summary = drive_loaded_workload(wl.as_mut(), &mut backend)?;
        let events: Vec<TraceEvent> = backend
            .trace()
            .map(|t| t.events().cloned().collect())
            .unwrap_or_default();
        Ok((
            SweepRun {
                cycles: u64::try_from(summary.total_cost).unwrap_or(u64::MAX),
                sim_nanos: started.elapsed().as_nanos(),
                misspeculation_rate: summary.misspeculation_rate(),
                load_imbalance: summary.load_imbalance(),
                invocations: summary.invocations,
                dependence_violations: summary.dependence_violations,
                summary: Some(summary),
            },
            events,
        ))
    } else {
        let mut machine = prep.prepared.machine();
        machine.enable_trace(DEFAULT_TRACE_CAPACITY);
        let cycles = drive_sequential_workload(wl.as_mut(), &mut machine, prep.kernel)?;
        let events: Vec<TraceEvent> = machine
            .trace()
            .map(|t| t.events().cloned().collect())
            .unwrap_or_default();
        Ok((
            SweepRun {
                cycles,
                sim_nanos: started.elapsed().as_nanos(),
                misspeculation_rate: 0.0,
                load_imbalance: 0.0,
                invocations: 0,
                dependence_violations: 0,
                summary: None,
            },
            events,
        ))
    }
}

/// Forensics captured from a failed or diverged farm job: what the
/// deterministic traced re-run observed, rendered to a retryable artifact
/// by [`failure_capture_json`]. The `error` plus the preparation inputs
/// (label encodes benchmark, mode, size) are enough to re-run the exact
/// cell; the trace and machine state say where it went wrong.
#[derive(Debug, Clone)]
pub struct FailureCapture {
    /// The failing job's label.
    pub label: String,
    /// The error (or divergence description) that triggered the capture.
    pub error: String,
    /// Trace ring-buffer of the re-run's primary (simulator) backend.
    pub events: Vec<TraceEvent>,
    /// Native-backend trace, for cross-check divergences (empty otherwise).
    pub native_events: Vec<TraceEvent>,
    /// Final machine state dump of the simulator re-run, when one survived.
    pub state_dump: Option<String>,
    /// Cycles at which periodic snapshots were taken during the re-run (the
    /// last one is the resume point a retry would start from).
    pub snapshot_cycles: Vec<u64>,
}

/// Interval for the failure-capture re-run's periodic snapshots: coarse
/// enough to stay cheap, fine enough that the last snapshot is near the
/// failure point.
const CAPTURE_SNAPSHOT_INTERVAL: u64 = 10_000;

/// Deterministically re-runs a failed sweep cell with tracing and periodic
/// snapshots enabled and returns the forensics. The re-run's own outcome is
/// ignored — for a deterministic simulator failure it fails at the same
/// point, which is exactly what the trace should show.
#[must_use]
pub fn capture_sweep_failure(
    factory: &WorkloadFactory,
    prep: &SweepPrep,
    label: &str,
    error: &str,
) -> FailureCapture {
    let mut wl = factory();
    let _ = wl.build();
    let events;
    let mut state_dump = None;
    let mut snapshot_cycles = Vec::new();
    if prep.prepared.is_spice() {
        let mut backend = SimBackend::from_prepared(&prep.prepared);
        backend.enable_trace(DEFAULT_TRACE_CAPACITY);
        if let Some(machine) = backend.machine_mut() {
            machine.enable_snapshots(CAPTURE_SNAPSHOT_INTERVAL);
        }
        let _ = drive_loaded_workload(wl.as_mut(), &mut backend);
        events = backend
            .trace()
            .map(|t| t.events().cloned().collect())
            .unwrap_or_default();
        if let Some(machine) = backend.machine() {
            state_dump = Some(machine.state_dump());
            snapshot_cycles = machine
                .snapshots_taken()
                .iter()
                .map(spice_sim::MachineSnapshot::cycle)
                .collect();
        }
    } else {
        let mut machine = prep.prepared.machine();
        machine.enable_trace(DEFAULT_TRACE_CAPACITY);
        machine.enable_snapshots(CAPTURE_SNAPSHOT_INTERVAL);
        let _ = drive_sequential_workload(wl.as_mut(), &mut machine, prep.kernel);
        events = machine
            .trace()
            .map(|t| t.events().cloned().collect())
            .unwrap_or_default();
        state_dump = Some(machine.state_dump());
        snapshot_cycles = machine
            .snapshots_taken()
            .iter()
            .map(spice_sim::MachineSnapshot::cycle)
            .collect();
    }
    FailureCapture {
        label: label.to_string(),
        error: error.to_string(),
        events,
        native_events: Vec::new(),
        state_dump,
        snapshot_cycles,
    }
}

/// Re-runs a diverged cross-check workload on both backends with tracing
/// enabled and captures both traces, so the artifact shows the two chunk
/// lifecycles side by side.
#[must_use]
pub fn capture_crosscheck_divergence(
    factory: &WorkloadFactory,
    threads: usize,
    label: &str,
    error: &str,
) -> FailureCapture {
    let mut capture = FailureCapture {
        label: label.to_string(),
        error: error.to_string(),
        events: Vec::new(),
        native_events: Vec::new(),
        state_dump: None,
        snapshot_cycles: Vec::new(),
    };
    {
        let mut backend = SimBackend::tiny(threads);
        backend.enable_trace(DEFAULT_TRACE_CAPACITY);
        let mut wl = factory();
        let _ = run_workload_on(wl.as_mut(), &mut backend);
        capture.events = backend
            .trace()
            .map(|t| t.events().cloned().collect())
            .unwrap_or_default();
        if let Some(machine) = backend.machine() {
            capture.state_dump = Some(machine.state_dump());
        }
    }
    {
        let mut backend =
            make_backend_with(BackendChoice::Native, threads, PredictorOptions::default());
        backend.enable_trace(DEFAULT_TRACE_CAPACITY);
        let mut wl = factory();
        let _ = run_workload_on(wl.as_mut(), backend.as_mut());
        capture.native_events = backend
            .trace()
            .map(|t| t.events().cloned().collect())
            .unwrap_or_default();
    }
    capture
}

/// Renders a [`FailureCapture`] as a validated JSON artifact.
#[must_use]
pub fn failure_capture_json(c: &FailureCapture) -> String {
    let snapshot_cycles: Vec<String> = c.snapshot_cycles.iter().map(u64::to_string).collect();
    format!(
        "{{\n  \"artifact\": \"failure\",\n  \"label\": {},\n  \"error\": {},\n  \
         \"snapshot_cycles\": [{}],\n  \"state\": {},\n  \"events\": {},\n  \
         \"native_events\": {}\n}}\n",
        crate::json::string(&c.label),
        crate::json::string(&c.error),
        snapshot_cycles.join(", "),
        c.state_dump
            .as_deref()
            .map_or_else(|| "null".to_string(), crate::json::string),
        crate::trace_json::trace_events_json(c.events.iter(), 2),
        crate::trace_json::trace_events_json(c.native_events.iter(), 2),
    )
}

/// Assembles a [`Fig7Row`] from a benchmark's sequential cycles and one of
/// its Spice sweep runs — the one row constructor both the serial `fig7`
/// path and the farm sink use.
#[must_use]
pub fn fig7_row_from_sweep(
    benchmark: &str,
    threads: usize,
    sequential_cycles: u64,
    run: &SweepRun,
) -> Fig7Row {
    Fig7Row {
        benchmark: benchmark.to_string(),
        threads,
        sequential_cycles,
        spice_cycles: run.cycles,
        speedup: sequential_cycles as f64 / run.cycles as f64,
        misspeculation_rate: run.misspeculation_rate,
        load_imbalance: run.load_imbalance,
        dependence_violations: run.dependence_violations,
    }
}

/// Assembles a [`HarnessPerfRow`] from one sweep cell — again shared
/// between the serial `harnessperf` path and the farm sink.
#[must_use]
pub fn harness_row_from_sweep(
    benchmark: &str,
    mode: SweepMode,
    build_nanos: u128,
    run: &SweepRun,
) -> HarnessPerfRow {
    HarnessPerfRow {
        benchmark: benchmark.to_string(),
        mode: mode.label(),
        simulated_cycles: run.cycles,
        build_nanos,
        host_nanos: run.sim_nanos,
    }
}

/// One row of the backend cross-check: the same workload driven over the
/// timing simulator and the native-thread runtime through the same call
/// site, with the per-invocation results compared.
#[derive(Debug, Clone)]
pub struct CrosscheckRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Thread count used on both backends.
    pub threads: usize,
    /// Simulator-side run.
    pub sim: BackendRunSummary,
    /// Native-thread run.
    pub native: BackendRunSummary,
    /// Whether every invocation returned the same value on both backends.
    pub agree: bool,
}

/// Cross-checks the paper's four benchmark loops *and* the conflict-carrying
/// pair between the simulator and the native-thread backend: every
/// invocation of every workload must compute the same result on both
/// substrates — for the conflict workloads that only holds because both
/// backends' dependence-violation squashes recover correctly.
///
/// # Errors
///
/// Returns the first execution failure on either backend.
pub fn crosscheck(threads: usize) -> Result<Vec<CrosscheckRow>, String> {
    let mut rows = Vec::new();
    for (name, factory) in all_workload_factories(true) {
        rows.push(crosscheck_workload(name, &factory, threads)?);
    }
    Ok(rows)
}

/// Cross-checks one workload between the tiny-machine simulator and the
/// native-thread backend — the per-benchmark unit the farm schedules as a
/// first-class job ([`crate::farm_driver::Figure::Crosscheck`]).
///
/// # Errors
///
/// Returns the first execution failure on either backend. A *divergence*
/// (both backends ran, results differ) is not an error here; it is reported
/// through [`CrosscheckRow::agree`] so the caller can capture forensics
/// before failing.
pub fn crosscheck_workload(
    name: &str,
    factory: &WorkloadFactory,
    threads: usize,
) -> Result<CrosscheckRow, String> {
    let mut sim_wl = factory();
    let sim = run_workload_backend(
        sim_wl.as_mut(),
        BackendChoice::SimTiny,
        threads,
        PredictorOptions::default(),
    )?;
    let mut native_wl = factory();
    let native = run_workload_backend(
        native_wl.as_mut(),
        BackendChoice::Native,
        threads,
        PredictorOptions::default(),
    )?;
    let agree = sim.return_values == native.return_values;
    Ok(CrosscheckRow {
        benchmark: name.to_string(),
        threads,
        sim,
        native,
        agree,
    })
}

/// Renders the cross-check result table (the `crosscheck` binary's stdout
/// body, shared with the farm's figure printout).
#[must_use]
pub fn format_crosscheck(rows: &[CrosscheckRow]) -> String {
    let mut s = String::new();
    let threads = rows.first().map_or(4, |r| r.threads);
    s.push_str(&format!(
        "sim ↔ native cross-check ({threads} threads, small configs)\n"
    ));
    s.push_str("benchmark    invocations  sim raw-squash  native raw-squash  agree\n");
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>11}  {:>14}  {:>17}  {}\n",
            r.benchmark,
            r.sim.invocations,
            r.sim.dependence_violations,
            r.native.dependence_violations,
            if r.agree { "yes" } else { "NO" }
        ));
    }
    s
}

/// Opening of the `BENCH_crosscheck.json` document, up to `"rows": [`.
#[must_use]
pub fn crosscheck_json_header(threads: usize) -> String {
    format!("{{\n  \"figure\": \"crosscheck\",\n  \"threads\": {threads},\n  \"rows\": [\n")
}

/// One row of the cross-check artifact (no separator, no trailing newline).
#[must_use]
pub fn crosscheck_json_row(r: &CrosscheckRow) -> String {
    format!(
        "    {{\"benchmark\": {}, \"threads\": {}, \"agree\": {}, \
         \"invocations_sim\": {}, \"invocations_native\": {}, \
         \"sim_committed\": {}, \"native_committed\": {}, \
         \"sim_squashed\": {}, \"native_squashed\": {}, \
         \"sim_violations\": {}, \"native_violations\": {}}}",
        crate::json::string(&r.benchmark),
        r.threads,
        r.agree,
        r.sim.invocations,
        r.native.invocations,
        r.sim.committed_chunks,
        r.native.committed_chunks,
        r.sim.squashed_chunks,
        r.native.squashed_chunks,
        r.sim.dependence_violations,
        r.native.dependence_violations
    )
}

/// Closing of the cross-check artifact, including the aggregate verdict.
#[must_use]
pub fn crosscheck_json_footer(rows: &[CrosscheckRow]) -> String {
    format!(
        "\n  ],\n  \"all_agree\": {}\n}}\n",
        rows.iter().all(|r| r.agree)
    )
}

/// Renders cross-check rows as the full `BENCH_crosscheck.json` document —
/// the serial composition of header, rows and footer, byte-identical to
/// what the farm streams.
#[must_use]
pub fn crosscheck_json(rows: &[CrosscheckRow]) -> String {
    let threads = rows.first().map_or(4, |r| r.threads);
    let mut s = crosscheck_json_header(threads);
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str(&crosscheck_json_row(r));
    }
    s.push_str(&crosscheck_json_footer(rows));
    s
}

/// One row of the Figure 7 reproduction.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Thread count.
    pub threads: usize,
    /// Total sequential cycles.
    pub sequential_cycles: u64,
    /// Total Spice cycles.
    pub spice_cycles: u64,
    /// Loop speedup (sequential / Spice).
    pub speedup: f64,
    /// Mis-speculation rate over invocations.
    pub misspeculation_rate: f64,
    /// Load-imbalance metric (coefficient of variation of per-core work).
    pub load_imbalance: f64,
    /// Dependence-violation squashes taken and recovered (nonzero only for
    /// the conflict-carrying workloads).
    pub dependence_violations: usize,
}

/// Reproduces Figure 7: loop speedups of the four benchmarks — plus the
/// conflict-carrying pair, whose rows document the *cost* of dependence
/// recovery rather than a speedup — with 2 and 4 threads, and the per-loop
/// diagnostics discussed in §5.
///
/// # Errors
///
/// Returns the first failure encountered.
pub fn fig7(small: bool) -> Result<Vec<Fig7Row>, String> {
    let mut rows = Vec::new();
    for (name, factory) in all_workload_factories(small) {
        let seq_prep = prepare_sweep(&factory, SweepMode::Sequential, false, 0)?;
        let sequential_cycles = run_prepared_sweep(&factory, &seq_prep)?.cycles;
        for &threads in &[2usize, 4] {
            let prep = prepare_sweep(&factory, SweepMode::Spice { threads }, false, 0)?;
            let run = run_prepared_sweep(&factory, &prep)?;
            rows.push(fig7_row_from_sweep(name, threads, sequential_cycles, &run));
        }
    }
    Ok(rows)
}

/// The four benchmarks of the paper's Figure 7 (the conflict-carrying extras
/// are excluded from the figure's headline geomean, which reproduces the
/// paper's number).
pub const FIG7_PAPER_BENCHMARKS: [&str; 4] = ["ks", "otter", "181.mcf", "458.sjeng"];

/// Geometric mean of the speedups of the *paper* Figure 7 rows with the
/// given thread count.
#[must_use]
pub fn fig7_geomean(rows: &[Fig7Row], threads: usize) -> f64 {
    let v: Vec<f64> = rows
        .iter()
        .filter(|r| r.threads == threads && FIG7_PAPER_BENCHMARKS.contains(&r.benchmark.as_str()))
        .map(|r| r.speedup)
        .collect();
    spice_sim::geomean(&v)
}

/// Opening of the `BENCH_fig7.json` document, up to and including the
/// `"rows": [` line. A streaming writer emits this before any job has
/// retired; the aggregate lines (geomeans) live in the
/// [footer](fig7_json_footer) because they are only known once every row is
/// in.
#[must_use]
pub fn fig7_json_header(small: bool) -> String {
    format!("{{\n  \"figure\": \"fig7\",\n  \"small\": {small},\n  \"rows\": [\n")
}

/// One row of the Figure 7 artifact (no separator, no trailing newline):
/// the unit a streaming writer appends as the corresponding job retires.
/// Workload names are escaped and every float finite-checked through
/// [`crate::json`], so a degenerate run yields `null` metrics instead of an
/// unparseable artifact.
#[must_use]
pub fn fig7_json_row(r: &Fig7Row) -> String {
    format!(
        "    {{\"benchmark\": {}, \"threads\": {}, \"sequential_cycles\": {}, \
         \"spice_cycles\": {}, \"speedup\": {}, \"misspeculation_rate\": {}, \
         \"load_imbalance\": {}, \"dependence_violations\": {}}}",
        crate::json::string(&r.benchmark),
        r.threads,
        r.sequential_cycles,
        r.spice_cycles,
        crate::json::float(r.speedup),
        crate::json::float(r.misspeculation_rate),
        crate::json::float(r.load_imbalance),
        r.dependence_violations
    )
}

/// Closing of the Figure 7 artifact: ends the rows array and appends the
/// geomean summary computed over all rows.
#[must_use]
pub fn fig7_json_footer(rows: &[Fig7Row]) -> String {
    format!(
        "\n  ],\n  \"geomean_speedup_2t\": {},\n  \"geomean_speedup_4t\": {}\n}}\n",
        crate::json::float(fig7_geomean(rows, 2)),
        crate::json::float(fig7_geomean(rows, 4))
    )
}

/// Renders Figure 7 rows as the `BENCH_fig7.json` document — the serial
/// composition of [`fig7_json_header`], [`fig7_json_row`] and
/// [`fig7_json_footer`], so a farm run streaming rows one at a time
/// produces byte-identical output.
#[must_use]
pub fn fig7_json(rows: &[Fig7Row], small: bool) -> String {
    let mut s = fig7_json_header(small);
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str(&fig7_json_row(r));
    }
    s.push_str(&fig7_json_footer(rows));
    s
}

/// Renders Figure 7 rows as a text table.
#[must_use]
pub fn format_fig7(rows: &[Fig7Row]) -> String {
    let mut s = String::new();
    s.push_str("Figure 7 — loop speedup over single-threaded execution\n");
    s.push_str(
        "benchmark    threads  seq cycles     spice cycles   speedup  misspec  imbalance  raw-squash\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>7}  {:>12}  {:>13}  {:>6.2}x  {:>6.1}%  {:>8.3}  {:>9}\n",
            r.benchmark,
            r.threads,
            r.sequential_cycles,
            r.spice_cycles,
            r.speedup,
            r.misspeculation_rate * 100.0,
            r.load_imbalance,
            r.dependence_violations
        ));
    }
    s.push_str(&format!(
        "GeoMean over the paper loops (2 threads): {:.2}x   (4 threads): {:.2}x\n",
        fig7_geomean(rows, 2),
        fig7_geomean(rows, 4)
    ));
    s
}

/// Reproduces Table 1: the machine model.
#[must_use]
pub fn table1() -> Vec<(String, String)> {
    MachineConfig::itanium2_cmp().table1_rows()
}

/// One timed harness run: a workload in one execution mode, with the host
/// time it took — split into one-time preparation and per-cycle simulation
/// — and the simulated cycles it covered.
#[derive(Debug, Clone)]
pub struct HarnessPerfRow {
    /// Benchmark name.
    pub benchmark: String,
    /// `"sequential"`, or `"spiceN"` for an N-thread Spice run.
    pub mode: String,
    /// Total simulated cycles of the run.
    pub simulated_cycles: u64,
    /// Host wall nanoseconds of the one-time preparation: workload
    /// construction, IR build, analysis, transform, decode, initial image.
    /// A sweep pays this once per `(benchmark, mode)` and shares the result
    /// across jobs, so it is reported separately and excluded from
    /// [`ns_per_cycle`](HarnessPerfRow::ns_per_cycle).
    pub build_nanos: u128,
    /// Host wall nanoseconds spent simulating (init plus all invocations).
    pub host_nanos: u128,
}

impl HarnessPerfRow {
    /// Host nanoseconds per simulated cycle — the harness-speed metric the
    /// perf-smoke trajectory tracks. Measures simulation dispatch only;
    /// one-time preparation cost is in
    /// [`build_nanos`](HarnessPerfRow::build_nanos).
    #[must_use]
    pub fn ns_per_cycle(&self) -> f64 {
        if self.simulated_cycles == 0 {
            f64::NAN
        } else {
            self.host_nanos as f64 / self.simulated_cycles as f64
        }
    }
}

/// Measures harness speed over the Figure 7 suite: every workload runs
/// sequentially and under Spice (2 and 4 threads) with host wall-clock and
/// simulated-cycle totals recorded per run. This is the same work `fig7`
/// performs — the *simulated* numbers are identical by construction — but
/// the deliverable is host seconds, so harness-speed regressions become
/// visible trajectory data in `BENCH_harness.json`. Preparation time
/// (decode, transform) is recorded per row in `build_nanos`, separate from
/// the simulate time `host_nanos`, so the ns-per-cycle rate tracks
/// dispatch cost alone.
///
/// # Errors
///
/// Returns the first failure encountered.
pub fn harnessperf(small: bool) -> Result<Vec<HarnessPerfRow>, String> {
    let mut rows = Vec::new();
    for (name, factory) in all_workload_factories(small) {
        for mode in SweepMode::ALL {
            let prep = prepare_sweep(&factory, mode, false, 0)?;
            let run = run_prepared_sweep(&factory, &prep)?;
            rows.push(harness_row_from_sweep(name, mode, prep.build_nanos, &run));
        }
    }
    Ok(rows)
}

/// Total simulate-time host seconds of a harness-perf run.
#[must_use]
pub fn harness_total_seconds(rows: &[HarnessPerfRow]) -> f64 {
    rows.iter().map(|r| r.host_nanos as f64 / 1e9).sum()
}

/// Total one-time preparation seconds (IR build + analysis + transform +
/// decode) of a harness-perf run — the cost a sweep amortizes across jobs.
#[must_use]
pub fn harness_build_seconds(rows: &[HarnessPerfRow]) -> f64 {
    rows.iter().map(|r| r.build_nanos as f64 / 1e9).sum()
}

/// Overall host-ns-per-simulated-cycle of a harness-perf run.
#[must_use]
pub fn harness_ns_per_cycle(rows: &[HarnessPerfRow]) -> f64 {
    let cycles: u64 = rows.iter().map(|r| r.simulated_cycles).sum();
    let nanos: u128 = rows.iter().map(|r| r.host_nanos).sum();
    if cycles == 0 {
        f64::NAN
    } else {
        nanos as f64 / cycles as f64
    }
}

/// The pre-PR harness speed, measured with this same `harnessperf` binary
/// compiled against the tree as of commit `b8fd225` (the last commit before
/// the event-driven core and pre-decoded dispatch landed), on the same host,
/// full-size suite. Kept here so the committed `BENCH_harness.json` shows
/// the before/after pair that motivated the rework; update it only when the
/// baseline is deliberately re-measured.
pub const PRE_PR_TOTAL_HOST_SECONDS: f64 = 1.727;
/// See [`PRE_PR_TOTAL_HOST_SECONDS`].
pub const PRE_PR_NS_PER_CYCLE: f64 = 85.3;

/// Opening of the `BENCH_harness.json` document: the run-independent
/// constants (pre-PR baseline) and the start of the rows array. Aggregates
/// live in the [footer](harnessperf_json_footer).
#[must_use]
pub fn harnessperf_json_header(small: bool) -> String {
    format!(
        "{{\n  \"figure\": \"harness\",\n  \"small\": {small},\n  \
         \"pre_pr_total_host_seconds\": {},\n  \
         \"pre_pr_ns_per_simulated_cycle\": {},\n  \"rows\": [\n",
        crate::json::float(PRE_PR_TOTAL_HOST_SECONDS),
        crate::json::float(PRE_PR_NS_PER_CYCLE)
    )
}

/// One row of the harness artifact (no separator, no trailing newline).
#[must_use]
pub fn harnessperf_json_row(r: &HarnessPerfRow) -> String {
    format!(
        "    {{\"benchmark\": {}, \"mode\": {}, \"simulated_cycles\": {}, \
         \"build_nanos\": {}, \"host_nanos\": {}, \"ns_per_cycle\": {}}}",
        crate::json::string(&r.benchmark),
        crate::json::string(&r.mode),
        r.simulated_cycles,
        r.build_nanos,
        r.host_nanos,
        crate::json::float(r.ns_per_cycle())
    )
}

/// Closing of the harness artifact: ends the rows array and appends the
/// totals computed over all rows. `ns_per_simulated_cycle` measures
/// simulation dispatch only; the one-time preparation cost is the separate
/// `total_build_seconds`.
#[must_use]
pub fn harnessperf_json_footer(rows: &[HarnessPerfRow]) -> String {
    format!(
        "\n  ],\n  \"speedup_vs_pre_pr\": {},\n  \"total_host_seconds\": {},\n  \
         \"total_build_seconds\": {},\n  \"total_simulated_cycles\": {},\n  \
         \"ns_per_simulated_cycle\": {}\n}}\n",
        crate::json::float(PRE_PR_NS_PER_CYCLE / harness_ns_per_cycle(rows)),
        crate::json::float(harness_total_seconds(rows)),
        crate::json::float(harness_build_seconds(rows)),
        rows.iter().map(|r| r.simulated_cycles).sum::<u64>(),
        crate::json::float(harness_ns_per_cycle(rows))
    )
}

/// Renders harness-perf rows as the `BENCH_harness.json` document through
/// [`crate::json`] (names escaped, non-finite metrics → `null`) — the
/// serial composition of the streaming header/row/footer pieces.
#[must_use]
pub fn harnessperf_json(rows: &[HarnessPerfRow], small: bool) -> String {
    let mut s = harnessperf_json_header(small);
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str(&harnessperf_json_row(r));
    }
    s.push_str(&harnessperf_json_footer(rows));
    s
}

/// Renders harness-perf rows as a text table.
#[must_use]
pub fn format_harnessperf(rows: &[HarnessPerfRow]) -> String {
    let mut s = String::new();
    s.push_str("Harness performance — host cost per simulated cycle\n");
    s.push_str("benchmark    mode        sim cycles   build ms    sim ms   ns/cycle\n");
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:<10} {:>12}  {:>9.2} {:>9.2}  {:>9.1}\n",
            r.benchmark,
            r.mode,
            r.simulated_cycles,
            r.build_nanos as f64 / 1e6,
            r.host_nanos as f64 / 1e6,
            r.ns_per_cycle()
        ));
    }
    s.push_str(&format!(
        "TOTAL: {:.3} host seconds simulating (+{:.3} s one-time preparation), \
         {:.1} ns per simulated cycle\n",
        harness_total_seconds(rows),
        harness_build_seconds(rows),
        harness_ns_per_cycle(rows)
    ));
    s.push_str(&format!(
        "vs pre-PR baseline ({PRE_PR_NS_PER_CYCLE:.1} ns/cycle, \
         {PRE_PR_TOTAL_HOST_SECONDS:.3} s full-size): {:.2}x\n",
        PRE_PR_NS_PER_CYCLE / harness_ns_per_cycle(rows)
    ));
    s
}

/// One row of the Table 2 reproduction.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Benchmark description.
    pub description: String,
    /// Parallelized loop.
    pub loop_name: String,
    /// Hotness reported by the paper — a *comparison* column: the measured
    /// value next to it is what the reproduction actually exhibits.
    pub paper_hotness: f64,
    /// Whole-program hotness measured by profiler cycle attribution: the
    /// target loop's share of all simulated cycles of the full run (serial
    /// phases and helper functions included). For kernels under synthetic
    /// drivers this is close to 1 — itself a faithful statement that those
    /// drivers are not yet applications; for `mcf_app` the program around
    /// the loop is real and the number is the application's.
    pub measured_hotness: f64,
    /// Dynamic instructions per invocation of the loop, measured here.
    pub measured_loop_instructions: u64,
    /// Loop hotness within the kernel function (loop instructions over all
    /// instructions of the kernel run).
    pub measured_kernel_fraction: f64,
    /// Dependence-violation squashes of a 4-thread Spice run at exact word
    /// granularity — the conflict-precision baseline. `None` when the
    /// workload asserts [`ConflictPolicy::AssumeIndependent`] (no tracking
    /// to coarsen).
    ///
    /// [`ConflictPolicy::AssumeIndependent`]: spice_ir::exec::ConflictPolicy
    pub word_violations: Option<usize>,
    /// The same run with conflict sets coarsened to 64-byte lines
    /// ([`LINE_GRANULARITY_LOG2`]) — extra squashes over the word-granular
    /// count are false conflicts from distinct words sharing a line.
    pub line_violations: Option<usize>,
}

impl Table2Row {
    /// Fraction of line-granular dependence violations that are false
    /// conflicts: `(line - word) / line`. `None` without tracking, 0 when
    /// the line-granular run saw no violations at all.
    #[must_use]
    pub fn false_conflict_rate(&self) -> Option<f64> {
        let (word, line) = (self.word_violations?, self.line_violations?);
        Some(line.saturating_sub(word) as f64 / line.max(1) as f64)
    }
}

/// Conflict-set coarsening modelling 64-byte-line hardware detection:
/// 8 words (2^3) per grain.
pub const LINE_GRANULARITY_LOG2: u8 = 3;

/// Dependence violations of a 4-thread Spice run of a fresh workload
/// instance at the given conflict-set granularity (the reduced test machine
/// when `small`) — the Table 2 conflict-precision probe, also dispatched as
/// a standalone farm job. At word granularity and full size the probe's
/// preparation is identical to the Figure 7 four-thread run's, so a farm
/// sweep shares one decode between them.
///
/// # Errors
///
/// Returns the first simulation failure.
pub fn table2_probe(
    factory: &WorkloadFactory,
    small: bool,
    granularity_log2: u8,
) -> Result<usize, String> {
    let prep = prepare_sweep(
        factory,
        SweepMode::Spice { threads: 4 },
        small,
        granularity_log2,
    )?;
    Ok(run_prepared_sweep(factory, &prep)?.dependence_violations)
}

/// The profiling portion of one Table 2 row: loop-instruction counts plus
/// whole-program cycle attribution, with the conflict-probe columns left
/// `None`. The farm runs this as one job per benchmark and fills the probe
/// columns from separate probe jobs; the serial [`table2`] does both
/// inline.
///
/// # Errors
///
/// Returns the first profiling failure.
pub fn table2_hotness_row(factory: &WorkloadFactory, small: bool) -> Result<Table2Row, String> {
    let mut wl = factory();
    let built = wl.build();
    let mut mem = spice_ir::interp::FlatMemory::for_program(&built.program, 1 << 22);
    let args = wl.init(&mut mem);
    let mut sys = LocalSys::new();
    let report = measure_hotness(
        &built.program,
        built.kernel,
        built.loop_header_hint,
        &args,
        &mut mem,
        &mut sys,
    )
    .map_err(|e| e.to_string())?;
    let config = if small {
        MachineConfig::test_tiny(1)
    } else {
        MachineConfig::itanium2_cmp()
    };
    let mut cycle_wl = factory();
    let cycles = measure_cycle_hotness(cycle_wl.as_mut(), config)?;
    Ok(Table2Row {
        benchmark: wl.name().to_string(),
        description: wl.description().to_string(),
        loop_name: wl.loop_name().to_string(),
        paper_hotness: wl.paper_hotness(),
        measured_hotness: cycles.fraction(),
        measured_loop_instructions: report.loop_instructions,
        measured_kernel_fraction: report.fraction(),
        word_violations: None,
        line_violations: None,
    })
}

/// Reproduces Table 2: benchmark details. The `paper_hotness` column quotes
/// the paper for comparison; `measured_hotness` comes from profiler cycle
/// attribution over the whole program
/// ([`spice_profiler::measure_cycle_hotness`] on a one-core machine — the
/// reduced test machine for `small`, the Table 1 machine otherwise).
///
/// # Errors
///
/// Returns the first failure encountered.
pub fn table2(small: bool) -> Result<Vec<Table2Row>, String> {
    let mut rows = Vec::new();
    for (_, factory) in all_workload_factories(small) {
        let mut row = table2_hotness_row(&factory, small)?;
        // Conflict-precision probe (the satellite column): the same loop
        // under 4-thread Spice at word vs 64-byte-line conflict granularity.
        if factory().conflict_policy().detects() {
            row.word_violations = Some(table2_probe(&factory, small, 0)?);
            row.line_violations = Some(table2_probe(&factory, small, LINE_GRANULARITY_LOG2)?);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Opening of the `BENCH_table2.json` document. Every value in this
/// artifact is a deterministic count or fraction (no host timings), so a
/// farm run at any `--jobs` produces the identical bytes.
#[must_use]
pub fn table2_json_header(small: bool) -> String {
    format!(
        "{{\n  \"figure\": \"table2\",\n  \"small\": {small},\n  \
         \"line_granularity_log2\": {LINE_GRANULARITY_LOG2},\n  \"rows\": [\n"
    )
}

/// One row of the Table 2 artifact (no separator, no trailing newline).
#[must_use]
pub fn table2_json_row(r: &Table2Row) -> String {
    let opt = |v: Option<usize>| v.map_or_else(|| "null".to_string(), |n| n.to_string());
    format!(
        "    {{\"benchmark\": {}, \"loop\": {}, \"paper_hotness\": {}, \
         \"measured_hotness\": {}, \"loop_instructions\": {}, \
         \"kernel_fraction\": {}, \"word_violations\": {}, \
         \"line_violations\": {}, \"false_conflict_rate\": {}}}",
        crate::json::string(&r.benchmark),
        crate::json::string(&r.loop_name),
        crate::json::float(r.paper_hotness),
        crate::json::float(r.measured_hotness),
        r.measured_loop_instructions,
        crate::json::float(r.measured_kernel_fraction),
        opt(r.word_violations),
        opt(r.line_violations),
        r.false_conflict_rate()
            .map_or_else(|| "null".to_string(), crate::json::float)
    )
}

/// Closing of the Table 2 artifact.
#[must_use]
pub fn table2_json_footer() -> String {
    "\n  ]\n}\n".to_string()
}

/// Renders Table 2 rows as the `BENCH_table2.json` document — the serial
/// composition of the streaming header/row/footer pieces.
#[must_use]
pub fn table2_json(rows: &[Table2Row], small: bool) -> String {
    let mut s = table2_json_header(small);
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str(&table2_json_row(r));
    }
    s.push_str(&table2_json_footer());
    s
}

/// Renders Table 2 as the text table the `table2` and `farm` binaries print.
#[must_use]
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut s = String::from("Table 2 — benchmark details\n");
    s.push_str(&format!(
        "{:<12} {:<38} {:<30} {:>8} {:>9} {:>14} {:>10} {:>11} {:>11} {:>10}\n",
        "benchmark",
        "description",
        "loop",
        "paper",
        "measured",
        "loop insts/inv",
        "kernel frac",
        "word viol.",
        "line viol.",
        "false conf"
    ));
    for r in rows {
        let opt = |v: Option<usize>| v.map_or("-".to_string(), |n| n.to_string());
        let rate = r
            .false_conflict_rate()
            .map_or("-".to_string(), |f| format!("{:.1}%", f * 100.0));
        s.push_str(&format!(
            "{:<12} {:<38} {:<30} {:>7.0}% {:>8.1}% {:>14} {:>9.1}% {:>11} {:>11} {:>10}\n",
            r.benchmark,
            r.description,
            r.loop_name,
            r.paper_hotness * 100.0,
            r.measured_hotness * 100.0,
            r.measured_loop_instructions,
            r.measured_kernel_fraction * 100.0,
            opt(r.word_violations),
            opt(r.line_violations),
            rate
        ));
    }
    s.push_str(
        "\n(paper column: whole-application fraction reported by the paper, for comparison;\n \
         measured column: profiler cycle attribution over the whole program — for the\n \
         kernel drivers that program is just the kernel, for mcf_app it is a miniature\n \
         network-simplex application. See DESIGN.md §3.5. The violation columns probe\n \
         conflict-detection precision: dependence squashes of a 4-thread Spice run with\n \
         word-granular vs 64-byte-line-granular conflict sets; the false-conflict rate\n \
         is the share of line-granular squashes the coarsening invented.)\n",
    );
    s
}

/// One benchmark's bar of the Figure 8 reproduction. Since the trace layer
/// landed, the bins are **measured**: each loop's behaviour is recorded as a
/// [`spice_workloads::trace::WorkloadTrace`] and the bin comes from
/// re-analyzing the recording offline ([`analyze_trace`]) — the dialed-in
/// corpus targets are reported alongside for comparison, not used.
#[derive(Debug, Clone)]
pub struct Fig8Bar {
    /// Benchmark name.
    pub benchmark: String,
    /// Which panel it belongs to.
    pub suite: Suite,
    /// Percentage of profiled loops in each bin
    /// `(low, average, good, high)`; loops with no predictable invocation are
    /// omitted, as in the paper ("missing bars").
    pub percent: (f64, f64, f64, f64),
    /// Number of loops profiled.
    pub loops: usize,
    /// Per-loop predictability targets the corpus was constructed with.
    pub targets: Vec<f64>,
    /// Per-loop predictability *measured* from the recorded traces, same
    /// order as [`Fig8Bar::targets`].
    pub measured: Vec<f64>,
}

impl Fig8Bar {
    /// Mean absolute measured-vs-target error over this benchmark's loops.
    #[must_use]
    pub fn mean_abs_error(&self) -> f64 {
        if self.targets.is_empty() {
            return 0.0;
        }
        self.targets
            .iter()
            .zip(&self.measured)
            .map(|(t, m)| (t - m).abs())
            .sum::<f64>()
            / self.targets.len() as f64
    }
}

/// Workload sizing of the Figure 8 corpus runs.
#[must_use]
pub fn fig8_workload_shape(small: bool) -> (usize, usize) {
    let invocations = if small { 8 } else { 16 };
    let list_len = if small { 24 } else { 64 };
    (invocations, list_len)
}

/// Computes one benchmark's Figure 8 bar by **recording** each loop's trace
/// and re-analyzing the recording — the per-benchmark unit the farm
/// schedules as a job ([`crate::farm_driver::Figure::Fig8`]).
///
/// # Errors
///
/// Returns the first recording failure encountered.
pub fn fig8_bar(bench: &SuiteBenchmark, small: bool) -> Result<Fig8Bar, String> {
    let (invocations, list_len) = fig8_workload_shape(small);
    let mut counts = [0usize; 4]; // low, average, good, high
    let mut loops = 0usize;
    let mut measured = Vec::new();
    for mut wl in bench.workloads(invocations, list_len) {
        let trace = record_workload_trace(&mut wl, None)
            .map_err(|e| format!("{}: recording failed: {e}", bench.name))?;
        trace
            .validate()
            .map_err(|e| format!("{}: recorded an invalid trace: {e}", bench.name))?;
        let Some(verdict) = analyze_trace(&trace, AnalyzerConfig::default()) else {
            return Err(format!("{}: recorded trace has no events", bench.name));
        };
        loops += 1;
        measured.push(verdict.predictable_fraction);
        match verdict.bin {
            PredictabilityBin::Low => counts[0] += 1,
            PredictabilityBin::Average => counts[1] += 1,
            PredictabilityBin::Good => counts[2] += 1,
            PredictabilityBin::High => counts[3] += 1,
            PredictabilityBin::None => {}
        }
    }
    let denom = loops.max(1) as f64;
    Ok(Fig8Bar {
        benchmark: bench.name.to_string(),
        suite: bench.suite,
        percent: (
            100.0 * counts[0] as f64 / denom,
            100.0 * counts[1] as f64 / denom,
            100.0 * counts[2] as f64 / denom,
            100.0 * counts[3] as f64 / denom,
        ),
        loops,
        targets: bench.loop_predictability.clone(),
        measured,
    })
}

/// Reproduces Figure 8 over the corpus, bins derived from recorded traces.
///
/// # Errors
///
/// Returns the first recording failure encountered.
pub fn fig8(small: bool) -> Result<Vec<Fig8Bar>, String> {
    fig8_corpus()
        .iter()
        .map(|bench| fig8_bar(bench, small))
        .collect()
}

/// Mean absolute measured-vs-target error over every loop of every bar —
/// the number the agreement-band test pins.
#[must_use]
pub fn fig8_mean_abs_error(bars: &[Fig8Bar]) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for b in bars {
        for (t, m) in b.targets.iter().zip(&b.measured) {
            total += (t - m).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// The artifact label of a Figure 8 panel.
#[must_use]
pub fn suite_label(suite: Suite) -> &'static str {
    match suite {
        Suite::SpecInt => "spec_int",
        Suite::MediabenchAndOthers => "mediabench_others",
    }
}

/// Opening of the `BENCH_fig8.json` document, up to `"rows": [`.
#[must_use]
pub fn fig8_json_header(small: bool) -> String {
    format!(
        "{{\n  \"figure\": \"fig8\",\n  \"small\": {small},\n  \"measured\": true,\n  \
         \"rows\": [\n"
    )
}

/// One row of the Figure 8 artifact (no separator, no trailing newline):
/// the bin percentages plus the per-loop measured fractions next to the
/// targets the corpus dialed in.
#[must_use]
pub fn fig8_json_row(b: &Fig8Bar) -> String {
    let join = |v: &[f64]| {
        v.iter()
            .map(|x| crate::json::float(*x))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "    {{\"benchmark\": {}, \"suite\": {}, \"loops\": {}, \
         \"low\": {}, \"average\": {}, \"good\": {}, \"high\": {}, \
         \"target\": [{}], \"measured\": [{}]}}",
        crate::json::string(&b.benchmark),
        crate::json::string(suite_label(b.suite)),
        b.loops,
        crate::json::float(b.percent.0),
        crate::json::float(b.percent.1),
        crate::json::float(b.percent.2),
        crate::json::float(b.percent.3),
        join(&b.targets),
        join(&b.measured)
    )
}

/// Closing of the Figure 8 artifact: total loops and the aggregate
/// measured-vs-target error.
#[must_use]
pub fn fig8_json_footer(bars: &[Fig8Bar]) -> String {
    format!(
        "\n  ],\n  \"total_loops\": {},\n  \"mean_abs_error\": {}\n}}\n",
        bars.iter().map(|b| b.loops).sum::<usize>(),
        crate::json::float(fig8_mean_abs_error(bars))
    )
}

/// Renders Figure 8 bars as the `BENCH_fig8.json` document — the serial
/// composition of header, rows and footer, byte-identical to what the farm
/// streams.
#[must_use]
pub fn fig8_json(bars: &[Fig8Bar], small: bool) -> String {
    let mut s = fig8_json_header(small);
    for (i, b) in bars.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str(&fig8_json_row(b));
    }
    s.push_str(&fig8_json_footer(bars));
    s
}

/// Renders the Figure 8 bars as two text panels.
#[must_use]
pub fn format_fig8(bars: &[Fig8Bar]) -> String {
    let mut s = String::new();
    for (suite, title) in [
        (Suite::SpecInt, "Figure 8(a) — SPEC integer benchmarks"),
        (
            Suite::MediabenchAndOthers,
            "Figure 8(b) — Mediabench and others",
        ),
    ] {
        s.push_str(title);
        s.push('\n');
        s.push_str("benchmark        loops   low%  avg%  good%  high%   |m-t|\n");
        for b in bars.iter().filter(|b| b.suite == suite) {
            s.push_str(&format!(
                "{:<16} {:>5}  {:>5.0} {:>5.0} {:>6.0} {:>6.0}  {:>6.3}\n",
                b.benchmark,
                b.loops,
                b.percent.0,
                b.percent.1,
                b.percent.2,
                b.percent.3,
                b.mean_abs_error()
            ));
        }
        s.push('\n');
    }
    s.push_str(&format!(
        "(bins measured from recorded traces; mean |measured - target| = {:.3} \
         over {} loops)\n",
        fig8_mean_abs_error(bars),
        bars.iter().map(|b| b.loops).sum::<usize>()
    ));
    s
}

/// The schedules comparison (Figures 2, 3 and 5) plus the §2 analytic
/// speedups instantiated with parameters measured on the simulated machine.
#[derive(Debug, Clone)]
pub struct ScheduleComparison {
    /// Measured t1/t2/t3 model for the otter loop.
    pub model: LoopTimingModel,
    /// Analytic TLS speedup (2 threads).
    pub tls_speedup: f64,
    /// Analytic TLS+VP speedup at the measured stride-predictor accuracy.
    pub tls_vp_speedup: f64,
    /// Stride-predictor accuracy on the loop's live-in trace.
    pub stride_accuracy: f64,
    /// Spice boundary-survival probability measured on the same trace.
    pub spice_survival: f64,
    /// Analytic Spice speedup at that survival probability.
    pub spice_expected_speedup: f64,
    /// Measured Spice speedup (2 threads) from the simulator.
    pub spice_measured_speedup: f64,
    /// ASCII schedules, one per scheme.
    pub schedules: Vec<(ScheduleKind, Vec<String>)>,
}

/// Builds the per-iteration live-in traces of the otter loop across its
/// invocations (node addresses visited), used to feed the §2 value
/// predictors.
fn otter_livein_traces(small: bool) -> Vec<Vec<Vec<i64>>> {
    let mut wl = OtterWorkload::new(OtterConfig {
        initial_len: if small { 60 } else { 8_000 },
        inserts_per_invocation: 3,
        invocations: if small { 8 } else { 12 },
        seed: 0x07734,
    });
    let built = wl.build();
    let mut program = built.program;
    let _sites = spice_profiler::instrument_program(&mut program);
    let mut mem = spice_ir::interp::FlatMemory::for_program(&program, 1 << 20);
    let mut args = wl.init(&mut mem);
    let mut traces = Vec::new();
    let mut inv = 0usize;
    loop {
        let mut analyzer = spice_profiler::Analyzer::new(AnalyzerConfig::default());
        analyzer.new_invocation();
        let mut trace: Vec<Vec<i64>> = Vec::new();
        {
            let mut sys = CollectingSys {
                inner: spice_profiler::ProfilingSys::new(&mut analyzer),
                trace: &mut trace,
            };
            spice_ir::interp::run_function_with(
                &program,
                built.kernel,
                &args,
                &mut mem,
                &mut sys,
                100_000_000,
                |_, _, _| {},
            )
            .expect("otter trace run");
        }
        traces.push(trace);
        match wl.next_invocation(&mut mem, inv) {
            Some(a) => {
                args = a;
                inv += 1;
            }
            None => break,
        }
    }
    traces
}

struct CollectingSys<'a, 'b> {
    inner: spice_profiler::ProfilingSys<'a>,
    trace: &'b mut Vec<Vec<i64>>,
}

impl spice_ir::interp::SysPort for CollectingSys<'_, '_> {
    fn send(&mut self, chan: i64, value: i64) {
        self.inner.send(chan, value);
    }
    fn try_recv(&mut self, chan: i64) -> Option<i64> {
        self.inner.try_recv(chan)
    }
    fn resteer(&mut self, core: i64, target: spice_ir::BlockId) {
        self.inner.resteer(core, target);
    }
    fn profile(&mut self, site: u32, values: &[i64]) {
        if values.iter().any(|&v| v != 0) {
            self.trace.push(values.to_vec());
        }
        self.inner.profile(site, values);
    }
}

/// Reproduces the §2 comparison (Figures 2, 3 and 5).
///
/// # Errors
///
/// Returns the first failure encountered.
pub fn schedules(small: bool) -> Result<ScheduleComparison, String> {
    // Measure per-iteration timing of the otter loop on one core.
    let mut wl = OtterWorkload::new(OtterConfig {
        initial_len: if small { 60 } else { 8_000 },
        inserts_per_invocation: 3,
        invocations: 2,
        seed: 0x07734,
    });
    let built = wl.build();
    let config = MachineConfig::itanium2_cmp().with_cores(1);
    let inter_core = config.inter_core_latency as f64;
    let mut machine = Machine::new(config, built.program);
    let args = wl.init(machine.mem_mut());
    machine
        .spawn(0, built.kernel, &args)
        .map_err(|e| e.to_string())?;
    let summary = machine.run().map_err(|e| e.to_string())?;
    let iterations = wl.expected_iterations().max(1) as f64;
    let per_iter = summary.cycles as f64 / iterations;
    let mem_share = summary.cores[0].mem_stall_cycles as f64 / iterations;
    let t1 = mem_share.min(per_iter * 0.9);
    let t2 = (per_iter - t1).max(1.0);
    let model = LoopTimingModel::new(t1, t2, inter_core);

    // Predictor accuracies on the live-in traces.
    let traces = otter_livein_traces(small);
    let mut stride = StridePredictor::new();
    let stride_stats = evaluate_predictor(&mut stride, &traces);
    let mut last = LastValuePredictor::new();
    let _ = evaluate_predictor(&mut last, &traces);
    let spice_stats = SpiceMemoPredictor::new(1).evaluate(&traces);

    // Measured Spice speedup with 2 threads.
    let rows = {
        let mut seq = OtterWorkload::new(OtterConfig {
            initial_len: if small { 60 } else { 8_000 },
            inserts_per_invocation: 3,
            invocations: if small { 8 } else { 12 },
            seed: 0x07734,
        });
        let seq_cycles = run_workload_sequential(&mut seq)?;
        let mut par = OtterWorkload::new(OtterConfig {
            initial_len: if small { 60 } else { 8_000 },
            inserts_per_invocation: 3,
            invocations: if small { 8 } else { 12 },
            seed: 0x07734,
        });
        let estimate = par.expected_iterations();
        let result = run_workload_spice(&mut par, 2, predictor_options_with_estimate(estimate))?;
        seq_cycles as f64 / result.cycles as f64
    };

    Ok(ScheduleComparison {
        model,
        tls_speedup: model.tls_speedup(2),
        tls_vp_speedup: model.tls_value_prediction_speedup(2, stride_stats.accuracy()),
        stride_accuracy: stride_stats.accuracy(),
        spice_survival: spice_stats.accuracy(),
        spice_expected_speedup: model.spice_speedup(2, spice_stats.accuracy()),
        spice_measured_speedup: rows,
        schedules: vec![
            (ScheduleKind::Tls, render_schedule(ScheduleKind::Tls, 8)),
            (
                ScheduleKind::TlsValuePrediction,
                render_schedule(ScheduleKind::TlsValuePrediction, 8),
            ),
            (ScheduleKind::Spice, render_schedule(ScheduleKind::Spice, 8)),
        ],
    })
}

/// One ablation row: a predictor-configuration variant of the otter loop.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant name.
    pub variant: String,
    /// Total cycles with 4 threads.
    pub cycles: u64,
    /// Mis-speculation rate.
    pub misspeculation_rate: f64,
    /// Load imbalance.
    pub load_imbalance: f64,
}

/// Ablation of the predictor design choices the paper discusses in §4:
/// re-memoization every invocation vs. memoize-once, and dynamic load
/// balancing on/off.
///
/// # Errors
///
/// Returns the first failure encountered.
pub fn ablation(small: bool) -> Result<Vec<AblationRow>, String> {
    (0..ablation_variants().len())
        .map(|i| ablation_variant_row(small, i))
        .collect()
}

/// The predictor-configuration variants the ablation compares, in row
/// order.
#[must_use]
pub fn ablation_variants() -> Vec<(&'static str, PredictorOptions)> {
    vec![
        (
            "re-memoize + load balance (paper)",
            PredictorOptions::default(),
        ),
        (
            "memoize once",
            PredictorOptions {
                rememoize: false,
                ..PredictorOptions::default()
            },
        ),
        (
            "no load balancing",
            PredictorOptions {
                load_balance: false,
                ..PredictorOptions::default()
            },
        ),
    ]
}

/// One ablation variant as a standalone unit of work — the granularity the
/// farm dispatches.
///
/// # Errors
///
/// Returns the first simulation failure.
pub fn ablation_variant_row(small: bool, variant: usize) -> Result<AblationRow, String> {
    let (name, mut opts) = ablation_variants()
        .into_iter()
        .nth(variant)
        .ok_or_else(|| format!("no ablation variant {variant}"))?;
    let mut wl = OtterWorkload::new(OtterConfig {
        initial_len: if small { 80 } else { 500 },
        inserts_per_invocation: 5,
        invocations: if small { 10 } else { 200 },
        seed: 0xab1a,
    });
    opts.initial_work_estimate = Some(wl.expected_iterations());
    let result = run_workload_spice(&mut wl, 4, opts)?;
    Ok(AblationRow {
        variant: name.to_string(),
        cycles: result.cycles,
        misspeculation_rate: result.misspeculation_rate,
        load_imbalance: result.load_imbalance,
    })
}

/// Renders the ablation as the text table the `ablation` and `farm`
/// binaries print.
#[must_use]
pub fn format_ablation(rows: &[AblationRow]) -> String {
    let mut s = String::from("Predictor ablation — otter, 4 threads\n");
    s.push_str(&format!(
        "{:<36} {:>14} {:>9} {:>10}\n",
        "variant", "cycles", "misspec", "imbalance"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<36} {:>14} {:>8.1}% {:>10.3}\n",
            r.variant,
            r.cycles,
            r.misspeculation_rate * 100.0,
            r.load_imbalance
        ));
    }
    s
}

// --- Trace-driven scenario engine: differential replay -------------------

/// Threads used by the replay differential on both parallel backends.
pub const REPLAY_THREADS: usize = 4;

/// One backend's replay of a trace: the per-invocation returns, the final
/// live-out memory, and their combined checksum.
#[derive(Debug, Clone)]
pub struct ReplayRun {
    /// Per-invocation return values.
    pub returns: Vec<Option<i64>>,
    /// Every replay node's final value word, in slot order.
    pub live_out: Vec<i64>,
    /// FNV checksum over `returns` and `live_out` — the bit-identity probe.
    pub checksum: u64,
    /// Backend summary (absent for the plain sequential interpreter).
    pub summary: Option<BackendRunSummary>,
}

fn replay_checksum(returns: &[Option<i64>], live_out: &[i64]) -> u64 {
    let mut h = spice_workloads::trace::Fnv::new();
    h.word(returns.len() as i64);
    for r in returns {
        match r {
            Some(v) => {
                h.word(1);
                h.word(*v);
            }
            None => h.word(0),
        }
    }
    h.word(live_out.len() as i64);
    for &w in live_out {
        h.word(w);
    }
    h.finish()
}

/// Replays a trace on one parallel backend and captures returns, live-out
/// memory and checksum.
///
/// # Errors
///
/// Returns the first backend failure or host-mirror mismatch.
pub fn replay_on_backend(
    trace: &WorkloadTrace,
    choice: BackendChoice,
    threads: usize,
) -> Result<ReplayRun, String> {
    let mut wl = TraceReplayWorkload::new(trace.clone())
        .map_err(|e| format!("{}: invalid trace: {e}", trace.name))?;
    let mut backend = make_backend_with(choice, threads, PredictorOptions::default());
    let summary = run_workload_on(&mut wl, backend.as_mut())?;
    let live_out = wl.live_out(backend.mem());
    let checksum = replay_checksum(&summary.return_values, &live_out);
    Ok(ReplayRun {
        returns: summary.return_values.clone(),
        live_out,
        checksum,
        summary: Some(summary),
    })
}

/// Replays a trace on the plain sequential interpreter — the ground truth
/// the speculative backends must match bit-for-bit.
///
/// # Errors
///
/// Returns the first trap or host-mirror mismatch.
pub fn replay_sequential(trace: &WorkloadTrace) -> Result<ReplayRun, String> {
    let mut wl = TraceReplayWorkload::new(trace.clone())
        .map_err(|e| format!("{}: invalid trace: {e}", trace.name))?;
    let built = wl.build();
    let mut mem = spice_ir::interp::FlatMemory::for_program(&built.program, 1 << 20);
    let mut args = wl.init(&mut mem);
    let mut returns = Vec::new();
    for inv in 0.. {
        let expected = wl.expected_result(&mem);
        let out = spice_ir::interp::run_function(&built.program, built.kernel, &args, &mut mem)
            .map_err(|e| format!("{}: sequential trap: {e:?}", trace.name))?;
        if out.return_value != expected {
            return Err(format!(
                "{}: sequential invocation {inv} returned {:?}, host mirror expected {:?}",
                trace.name, out.return_value, expected
            ));
        }
        returns.push(out.return_value);
        match wl.next_invocation(&mut mem, inv) {
            Some(a) => args = a,
            None => break,
        }
    }
    let live_out = wl.live_out(&mem);
    let checksum = replay_checksum(&returns, &live_out);
    Ok(ReplayRun {
        returns,
        live_out,
        checksum,
        summary: None,
    })
}

/// One row of the fuzz-differential sweep: a mutant trace replayed on
/// sim, native and sequential execution, with the three checksums compared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzRow {
    /// Job label (`fuzz/<base>/<seed>`).
    pub label: String,
    /// Mutation seed.
    pub seed: u64,
    /// Name of the base (recorded) trace.
    pub base: String,
    /// Mutant content checksum (identifies the scenario).
    pub trace_checksum: u64,
    /// Total iterations the mutant replays.
    pub iterations: u64,
    /// Whether the mutant carries dependence-inducing splice writes.
    pub has_writes: bool,
    /// The sequential (ground-truth) replay checksum.
    pub checksum: u64,
    /// The simulator replay's checksum (equals `checksum` when `agree`).
    pub sim_checksum: u64,
    /// The native replay's checksum (equals `checksum` when `agree`).
    pub native_checksum: u64,
    /// Dependence-violation squashes the simulator took and recovered.
    pub sim_violations: usize,
    /// Dependence-violation squashes the native backend took and recovered.
    pub native_violations: usize,
    /// Whether sim, native and sequential replays were bit-identical
    /// (returns **and** live-out memory).
    pub agree: bool,
}

/// Replays one (typically fuzzed) trace across the timing simulator, the
/// native-thread runtime and the sequential interpreter, and compares the
/// three bit-for-bit — the headline deliverable of the trace layer: *every*
/// mutant must agree, dependence-violating ones included.
///
/// # Errors
///
/// Returns the first execution failure on any substrate. A *divergence*
/// (all three ran, results differ) is reported through [`FuzzRow::agree`]
/// so the caller can persist the offending trace before failing.
pub fn fuzz_differential(
    label: &str,
    seed: u64,
    base_name: &str,
    trace: &WorkloadTrace,
    threads: usize,
) -> Result<FuzzRow, String> {
    let sequential = replay_sequential(trace)?;
    let sim = replay_on_backend(trace, BackendChoice::SimTiny, threads)?;
    let native = replay_on_backend(trace, BackendChoice::Native, threads)?;
    let agree = sim.checksum == sequential.checksum
        && native.checksum == sequential.checksum
        && sim.returns == sequential.returns
        && native.returns == sequential.returns
        && sim.live_out == sequential.live_out
        && native.live_out == sequential.live_out;
    Ok(FuzzRow {
        label: label.to_string(),
        seed,
        base: base_name.to_string(),
        trace_checksum: trace.checksum(),
        iterations: trace.total_iterations(),
        has_writes: trace.has_writes(),
        checksum: sequential.checksum,
        sim_checksum: sim.checksum,
        native_checksum: native.checksum,
        sim_violations: sim.summary.as_ref().map_or(0, |s| s.dependence_violations),
        native_violations: native
            .summary
            .as_ref()
            .map_or(0, |s| s.dependence_violations),
        agree,
    })
}

/// Describes a three-way divergence for forensics (which substrates
/// disagreed, and on what).
#[must_use]
pub fn describe_divergence(sequential: &ReplayRun, sim: &ReplayRun, native: &ReplayRun) -> String {
    let mut parts = Vec::new();
    if sim.returns != sequential.returns {
        parts.push("sim returns != sequential returns".to_string());
    }
    if native.returns != sequential.returns {
        parts.push("native returns != sequential returns".to_string());
    }
    if sim.live_out != sequential.live_out {
        parts.push("sim live-out != sequential live-out".to_string());
    }
    if native.live_out != sequential.live_out {
        parts.push("native live-out != sequential live-out".to_string());
    }
    if parts.is_empty() {
        parts.push("checksums differ".to_string());
    }
    format!(
        "replay divergence (seq {:#x}, sim {:#x}, native {:#x}): {}",
        sequential.checksum,
        sim.checksum,
        native.checksum,
        parts.join("; ")
    )
}

/// The base traces the fuzz sweep mutates: recordings of the real drivers
/// (the paper's four kernels plus the `mcf_app` miniature application) on
/// their small configurations — small because a fuzz sweep replays hundreds
/// of mutants and the scenarios, not the scale, are the point.
///
/// # Errors
///
/// Returns the first recording failure.
pub fn fuzz_base_traces() -> Result<Vec<WorkloadTrace>, String> {
    all_workload_factories(true)
        .into_iter()
        .map(|(name, factory)| record_driver_trace(&factory).map_err(|e| format!("{name}: {e}")))
        .collect()
}

/// Records and validates one driver's hot-loop trace — the farm's fuzz jobs
/// build their shared base traces through this.
///
/// # Errors
///
/// Returns the recording trap or validation failure as a message.
pub fn record_driver_trace(factory: &WorkloadFactory) -> Result<WorkloadTrace, String> {
    let mut wl = factory();
    let trace =
        record_workload_trace(wl.as_mut(), None).map_err(|e| format!("recording failed: {e:?}"))?;
    trace
        .validate()
        .map_err(|e| format!("recorded an invalid trace: {e}"))?;
    Ok(trace)
}

/// The mutation knobs of one fuzz-sweep job: seeded defaults, every axis
/// exercised.
#[must_use]
pub fn fuzz_config_for_seed(seed: u64) -> FuzzConfig {
    FuzzConfig {
        seed,
        splice_rate: 0.15,
        relink_depth: 4,
        churn_rate: 0.25,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_the_machine() {
        let rows = table1();
        assert!(rows.iter().any(|(k, _)| k.contains("L1D")));
        assert!(rows.iter().any(|(_, v)| v.contains("141")));
    }

    #[test]
    fn fig7_small_produces_rows_for_all_benchmarks() {
        let rows = fig7(true).expect("fig7 small run");
        // Four paper loops + two conflict loops + the mcf_app miniature
        // application, at 2 and 4 threads each.
        assert_eq!(rows.len(), 14);
        // Since the centralized predictor step runs on core 0 (with its
        // cache/coherence traffic and the new_invocation token exchange
        // measured), the ~100-iteration small loops sit below the
        // amortization crossover — speedups above 1.0 are only expected at
        // full size. The small run must still be in a sane band, and the
        // text rendering mentions the geomean.
        let g4 = fig7_geomean(&rows, 4);
        assert!(
            g4 > 0.6 && g4 < 2.0,
            "4-thread small geomean out of band: {g4}"
        );
        for r in &rows {
            assert!(r.spice_cycles > 0 && r.speedup.is_finite());
        }
        let txt = format_fig7(&rows);
        assert!(txt.contains("GeoMean"));
        assert!(txt.contains("otter"));
        assert!(txt.contains("mcf_true"));
        assert!(txt.contains("mcf_app"));
        // The conflict-carrying rows actually exercised the subsystem: their
        // dependence-violation squashes were taken and recovered (results
        // are checked inside run_workload_on), while the dependence-free
        // paper loops must never trip it.
        for r in &rows {
            if FIG7_PAPER_BENCHMARKS.contains(&r.benchmark.as_str()) {
                assert_eq!(
                    r.dependence_violations, 0,
                    "{}: false conflict at {} threads",
                    r.benchmark, r.threads
                );
            }
        }
        assert!(
            rows.iter()
                .filter(|r| !FIG7_PAPER_BENCHMARKS.contains(&r.benchmark.as_str()))
                .any(|r| r.dependence_violations > 0),
            "conflict workloads never triggered a dependence violation"
        );
    }

    /// The emitted Figure 7 artifact parses back: adversarial workload
    /// names are escaped and non-finite metrics (NaN speedup from an empty
    /// run, infinite imbalance) become `null`, never bare tokens.
    #[test]
    fn fig7_json_round_trips_through_the_validator() {
        let rows = vec![
            Fig7Row {
                benchmark: "ks".to_string(),
                threads: 2,
                sequential_cycles: 100,
                spice_cycles: 80,
                speedup: 1.25,
                misspeculation_rate: 0.1,
                load_imbalance: 0.3,
                dependence_violations: 0,
            },
            Fig7Row {
                // A hostile name: quotes, backslash, newline.
                benchmark: "weird\"bench\\name\n".to_string(),
                threads: 4,
                sequential_cycles: 0,
                spice_cycles: 0,
                speedup: f64::NAN,
                misspeculation_rate: f64::INFINITY,
                load_imbalance: f64::NEG_INFINITY,
                dependence_violations: 3,
            },
        ];
        let doc = fig7_json(&rows, true);
        crate::json::validate(&doc).unwrap_or_else(|e| panic!("emitted invalid JSON: {e}\n{doc}"));
        assert!(doc.contains("\\\"bench\\\\name\\n"), "name not escaped");
        assert!(doc.contains("\"speedup\": null"), "NaN not mapped to null");
        assert!(!doc.contains("NaN") && !doc.contains("inf"));
        // The real (small) artifact validates too.
        let real = fig7_json(&[], false);
        crate::json::validate(&real).unwrap();
    }

    #[test]
    fn harnessperf_small_runs_and_emits_valid_json() {
        let rows = harnessperf(true).expect("harnessperf small");
        // Seven workloads, three modes each.
        assert_eq!(rows.len(), 21);
        for r in &rows {
            assert!(r.simulated_cycles > 0, "{}/{}", r.benchmark, r.mode);
            assert!(r.host_nanos > 0, "{}/{}", r.benchmark, r.mode);
            assert!(r.ns_per_cycle().is_finite());
        }
        let doc = harnessperf_json(&rows, true);
        crate::json::validate(&doc).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{doc}"));
        let total = crate::json::extract_number(&doc, "ns_per_simulated_cycle");
        assert_eq!(
            total,
            Some((harness_ns_per_cycle(&rows) * 1e6).round() / 1e6)
        );
        let txt = format_harnessperf(&rows);
        assert!(txt.contains("TOTAL") && txt.contains("pre-PR"));
    }

    /// Measured-hotness regression (small suite, one-core test machine):
    /// the pure-kernel drivers attribute nearly every cycle to their loop —
    /// a faithful statement that they are kernels, not applications — while
    /// `mcf_app`'s refresh loop owns a *fraction* of a real program, and
    /// that fraction is pinned to a band so a serial-phase or attribution
    /// regression fails loudly. (The full-size Table 1-machine value is
    /// recorded in DESIGN.md §3.5 next to the paper's 30%.)
    #[test]
    fn mcf_app_measured_hotness_is_in_band() {
        let rows = table2(true).expect("table2 small");
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(
                r.measured_hotness > 0.0 && r.measured_hotness <= 1.0,
                "{}: hotness out of range: {}",
                r.benchmark,
                r.measured_hotness
            );
            if r.benchmark != "mcf_app" {
                assert!(
                    r.measured_hotness > 0.85,
                    "{}: kernel driver should be nearly all loop, got {}",
                    r.benchmark,
                    r.measured_hotness
                );
            }
        }
        // Stated band: the small instance measures ≈0.27 on the reduced
        // test machine (the full-size Table 1-machine value, 0.235, is
        // recorded in DESIGN.md §3.5 next to the paper's 0.30). The band is
        // wide enough for deliberate machine-model retunes but far from the
        // degenerate poles (≈1 would mean the serial phases vanished, ≈0
        // that the loop did).
        let app = rows.iter().find(|r| r.benchmark == "mcf_app").expect("row");
        assert!(
            (0.18..=0.40).contains(&app.measured_hotness),
            "mcf_app measured hotness left its band: {}",
            app.measured_hotness
        );
        // And it is genuinely *measured*: not the quoted constant.
        assert!((app.measured_hotness - app.paper_hotness).abs() > 1e-6);
    }

    #[test]
    fn schedules_small_matches_section2_ordering() {
        let cmp = schedules(true).expect("schedules");
        // TLS without value prediction is limited by the traversal chain;
        // Spice's expected speedup exceeds it, and the Spice boundary
        // survival probability beats the stride predictor's accuracy.
        assert!(cmp.tls_speedup < cmp.spice_expected_speedup);
        assert!(cmp.spice_survival > cmp.stride_accuracy);
        assert_eq!(cmp.schedules.len(), 3);
    }

    #[test]
    fn ablation_small_runs_all_variants() {
        let rows = ablation(true).expect("ablation");
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.cycles > 0));
    }

    #[test]
    fn crosscheck_backends_agree_on_all_benchmarks() {
        let rows = crosscheck(4).expect("crosscheck");
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(
                r.agree,
                "{}: sim returned {:?}, native returned {:?}",
                r.benchmark, r.sim.return_values, r.native.return_values
            );
            assert_eq!(r.sim.invocations, r.native.invocations);
        }
        // The conflict-carrying workloads (and the mcf_app application,
        // whose refresh chain has the same faithful dependence) pass the
        // cross-check *because* both backends squash and recover dependence
        // violations; each must report having actually done so.
        for name in ["mcf_true", "list_splice", "mcf_app"] {
            let row = rows.iter().find(|r| r.benchmark == name).expect(name);
            assert!(
                row.sim.dependence_violations > 0,
                "{name}: sim backend reported no dependence violations"
            );
            assert!(
                row.native.dependence_violations > 0,
                "{name}: native backend reported no dependence violations"
            );
        }
    }
}
